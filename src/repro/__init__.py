"""Cliffhanger reproduction: scaling performance cliffs in web memory caches.

A from-scratch Python implementation of Cliffhanger (Cidon, Eisenman,
Alizadeh, Katti -- NSDI 2016) together with every substrate the paper
depends on: a Memcached-style multi-tenant slab cache simulator, eviction
policies, stack-distance profilers, hit-rate curves, the Dynacache solver,
Talus and LookAhead baselines, synthetic Memcachier-like workloads and a
benchmark harness regenerating the paper's tables and figures.

Quickstart::

    from repro import (
        CacheServer, CliffhangerEngine, SlabGeometry, Request
    )

    geometry = SlabGeometry.default()
    server = CacheServer(geometry)
    server.add_app(CliffhangerEngine("app", 64 << 20, geometry))
    server.process(Request(0.0, "app", "user:42", "get", value_size=512))
    print(server.stats.total.hit_rate())

See README.md for the architecture overview and ``repro.experiments`` for
the paper's evaluation.
"""

from repro.cache.engines import FirstComeFirstServeEngine, PlannedEngine
from repro.cache.item import CacheItem
from repro.cache.log_structured import GlobalLRUEngine
from repro.cache.server import CacheServer
from repro.cache.slabs import SlabGeometry
from repro.core.cliff_scaling import CliffConfig, CliffhangerQueue
from repro.core.crossapp import CrossAppHillClimber
from repro.core.engine import CliffhangerEngine, HillClimbEngine
from repro.core.hill_climbing import HillClimber
from repro.core.managed import ShadowedQueue
from repro.profiling.hrc import HitRateCurve
from repro.profiling.mimir import MimirProfiler
from repro.profiling.stack_distance import StackDistanceProfiler
from repro.workloads.trace import Request

__version__ = "1.0.0"

__all__ = [
    "CacheItem",
    "CacheServer",
    "SlabGeometry",
    "FirstComeFirstServeEngine",
    "PlannedEngine",
    "GlobalLRUEngine",
    "CliffConfig",
    "CliffhangerQueue",
    "CliffhangerEngine",
    "HillClimbEngine",
    "HillClimber",
    "ShadowedQueue",
    "CrossAppHillClimber",
    "HitRateCurve",
    "MimirProfiler",
    "StackDistanceProfiler",
    "Request",
    "__version__",
]
