"""Memcached-style cache substrate.

This package implements the systems the paper's algorithms run on top of:

* :mod:`repro.cache.item` -- the cache item model (key, sizes, overhead).
* :mod:`repro.cache.keyqueue` -- weighted ordered key queues and chained
  queues (physical queue + probe + shadow extensions), the single data
  structure from which eviction queues and shadow queues are built.
* :mod:`repro.cache.slabs` -- slab-class geometry (Memcached's size ladder).
* :mod:`repro.cache.policies` -- eviction policies (LRU, LFU, ARC,
  Facebook mid-insertion, LRU-K, 2Q, SLRU).
* :mod:`repro.cache.engines` -- memory-management engines: the default
  first-come-first-serve Memcached behaviour, statically planned
  allocations, and the log-structured (global LRU) mode.
* :mod:`repro.cache.server` -- the multi-tenant cache server tying it all
  together.
* :mod:`repro.cache.stats` -- hit/miss accounting and time series.
"""

from repro.cache.item import CacheItem
from repro.cache.keyqueue import KeyQueue, QueueChain
from repro.cache.slabs import SlabGeometry
from repro.cache.stats import AccessOutcome, HitMissCounter, TimelineRecorder

__all__ = [
    "CacheItem",
    "KeyQueue",
    "QueueChain",
    "SlabGeometry",
    "AccessOutcome",
    "HitMissCounter",
    "TimelineRecorder",
]
