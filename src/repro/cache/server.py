"""The multi-tenant cache server.

A :class:`CacheServer` hosts one engine per application (Memcachier model:
"each application reserves a certain amount of memory in advance", paper
section 3) and replays traces through them, aggregating statistics. The
server itself is deliberately thin -- all policy lives in the engines --
mirroring how Cliffhanger "runs on each memory cache server and does not
require any coordination between different servers" (section 4.3).
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Optional

from repro.common.errors import ConfigurationError
from repro.cache.engines import Engine
from repro.cache.slabs import SlabGeometry
from repro.cache.stats import AccessOutcome, OpCounter, StatsRegistry
from repro.workloads.trace import Request

#: Observer invoked after every request: (request, outcome) -> None.
Observer = Callable[[Request, AccessOutcome], None]


class CacheServer:
    """One cache server hosting multiple tenant engines."""

    def __init__(self, geometry: Optional[SlabGeometry] = None) -> None:
        self.geometry = geometry or SlabGeometry.default()
        self.engines: Dict[str, Engine] = {}
        self.stats = StatsRegistry()
        self._observers: list[Observer] = []

    # ------------------------------------------------------------------

    def add_app(self, engine: Engine) -> None:
        """Register a tenant. The engine's ``app`` name must be unique."""
        if engine.app in self.engines:
            raise ConfigurationError(f"app {engine.app!r} already registered")
        self.engines[engine.app] = engine

    def replace_app(self, engine: Engine) -> Engine:
        """Swap a registered tenant's engine for a fresh one.

        The cluster fault layer's cold-restart path: a restarted shard
        keeps its cumulative stats (downtime misses stay on the record)
        but loses every cached item, which a factory-fresh engine
        models exactly. Returns the replaced engine.
        """
        if engine.app not in self.engines:
            raise ConfigurationError(
                f"app {engine.app!r} not registered; use add_app"
            )
        old = self.engines[engine.app]
        self.engines[engine.app] = engine
        return old

    def add_observer(self, observer: Observer) -> None:
        """Attach a per-request observer (timelines, profilers, ...)."""
        self._observers.append(observer)

    # ------------------------------------------------------------------

    def process(self, request: Request) -> AccessOutcome:
        """Route one request to its tenant's engine and record stats."""
        try:
            engine = self.engines[request.app]
        except KeyError:
            raise ConfigurationError(
                f"request for unknown app {request.app!r}"
            ) from None
        outcome = engine.process(request)
        self.stats.record(outcome)
        for observer in self._observers:
            observer(request, outcome)
        return outcome

    def replay(self, trace: Iterable[Request]) -> StatsRegistry:
        """Process an entire trace; returns the stats registry."""
        process = self.process
        for request in trace:
            process(request)
        return self.stats

    def replay_compiled(self, trace) -> StatsRegistry:
        """Replay a :class:`~repro.workloads.compiled.CompiledTrace`.

        The allocation-free hot path: per request, one engine dispatch on
        a precomputed app id, one :meth:`Engine.process_fast` call with
        integer arguments, and one packed-code stats update. Per-request
        observers need :class:`Request`/:class:`AccessOutcome` objects, so
        their presence falls back to the object path (same results).
        """
        # The geometry check must precede the observer fallback: the
        # object path would silently re-classify a trace compiled for a
        # different slab ladder instead of reporting the mismatch.
        if trace.geometry.chunk_sizes != self.geometry.chunk_sizes:
            raise ConfigurationError(
                "compiled trace was built for a different slab geometry "
                f"({trace.geometry.chunk_sizes} vs "
                f"{self.geometry.chunk_sizes}); recompile it"
            )
        if self._observers:
            return self.replay(trace.iter_requests())
        # Unregistered apps only raise when a request for them appears,
        # matching :meth:`process`.
        engine_of_app = [self.engines.get(name) for name in trace.app_table]
        record = self.stats.record_code
        for app_id, key, op, class_index, chunk, item_bytes in zip(
            trace.app_ids,
            trace.keys,
            trace.op_codes,
            trace.slab_classes,
            trace.chunk_bytes,
            trace.item_bytes,
        ):
            engine = engine_of_app[app_id]
            if engine is None:
                raise ConfigurationError(
                    f"request for unknown app {trace.app_table[app_id]!r}"
                )
            record(
                engine.app,
                op,
                engine.process_fast(key, op, class_index, chunk, item_bytes),
            )
        return self.stats

    # ------------------------------------------------------------------

    def total_ops(self) -> OpCounter:
        """Merged operation counts across all engines (for the cost
        model)."""
        merged = OpCounter()
        for engine in self.engines.values():
            merged.merge(engine.ops)
        return merged

    def memory_in_use(self) -> float:
        return sum(engine.used_bytes() for engine in self.engines.values())

    def memory_reserved(self) -> float:
        return sum(engine.budget_bytes for engine in self.engines.values())
