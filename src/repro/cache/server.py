"""The multi-tenant cache server.

A :class:`CacheServer` hosts one engine per application (Memcachier model:
"each application reserves a certain amount of memory in advance", paper
section 3) and replays traces through them, aggregating statistics. The
server itself is deliberately thin -- all policy lives in the engines --
mirroring how Cliffhanger "runs on each memory cache server and does not
require any coordination between different servers" (section 4.3).
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Optional

from repro.common.errors import ConfigurationError
from repro.cache.engines import Engine
from repro.cache.slabs import SlabGeometry
from repro.cache.stats import AccessOutcome, OpCounter, StatsRegistry
from repro.workloads.trace import Request

#: Observer invoked after every request: (request, outcome) -> None.
Observer = Callable[[Request, AccessOutcome], None]


class CacheServer:
    """One cache server hosting multiple tenant engines."""

    def __init__(self, geometry: Optional[SlabGeometry] = None) -> None:
        self.geometry = geometry or SlabGeometry.default()
        self.engines: Dict[str, Engine] = {}
        self.stats = StatsRegistry()
        self._observers: list[Observer] = []

    # ------------------------------------------------------------------

    def add_app(self, engine: Engine) -> None:
        """Register a tenant. The engine's ``app`` name must be unique."""
        if engine.app in self.engines:
            raise ConfigurationError(f"app {engine.app!r} already registered")
        self.engines[engine.app] = engine

    def add_observer(self, observer: Observer) -> None:
        """Attach a per-request observer (timelines, profilers, ...)."""
        self._observers.append(observer)

    # ------------------------------------------------------------------

    def process(self, request: Request) -> AccessOutcome:
        """Route one request to its tenant's engine and record stats."""
        try:
            engine = self.engines[request.app]
        except KeyError:
            raise ConfigurationError(
                f"request for unknown app {request.app!r}"
            ) from None
        outcome = engine.process(request)
        self.stats.record(outcome)
        for observer in self._observers:
            observer(request, outcome)
        return outcome

    def replay(self, trace: Iterable[Request]) -> StatsRegistry:
        """Process an entire trace; returns the stats registry."""
        process = self.process
        for request in trace:
            process(request)
        return self.stats

    # ------------------------------------------------------------------

    def total_ops(self) -> OpCounter:
        """Merged operation counts across all engines (for the cost
        model)."""
        merged = OpCounter()
        for engine in self.engines.values():
            merged.merge(engine.ops)
        return merged

    def memory_in_use(self) -> float:
        return sum(engine.used_bytes() for engine in self.engines.values())

    def memory_reserved(self) -> float:
        return sum(engine.budget_bytes for engine in self.engines.values())
