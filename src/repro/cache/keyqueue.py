"""Weighted ordered key queues and chained queues.

These two classes are the data-structure heart of the reproduction:

* :class:`KeyQueue` is an ordered set of keys with per-key weights and a
  capacity measured in weight units (bytes). MRU is at the *front*, LRU at
  the *back*. It stores keys only -- the simulator never materializes
  values -- so the same class implements both physical eviction queues
  (where the weight accounts for the full item) and shadow queues (where
  the weight still represents the item the key stands for, per the paper's
  "shadow queues that represent 1 MB of requests", section 5.7).

* :class:`QueueChain` chains several :class:`KeyQueue` segments so that a
  key evicted from segment *i* falls onto the front of segment *i+1*. A
  chain whose hits always promote to the front of segment 0 behaves
  *exactly* like a single LRU queue whose size is the sum of the segment
  sizes, while telling the caller which segment every hit landed in. That
  property is what lets Cliffhanger observe "hits in the last 128 items of
  the queue" and "hits in the shadow queue appended after the physical
  queue" (section 5.1) without ever computing item ranks.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterator, List, Optional, Tuple

from repro.common.errors import CacheError, ConfigurationError


class KeyQueue:
    """An ordered, capacity-bounded set of weighted keys (MRU at front).

    The queue never evicts by itself; callers drain :meth:`overflow` after
    mutating it. This makes cascade semantics in :class:`QueueChain`
    explicit and testable.
    """

    __slots__ = ("name", "_capacity", "_used", "_entries")

    def __init__(self, capacity: float, name: str = "") -> None:
        if capacity < 0:
            raise ConfigurationError(
                f"queue capacity must be >= 0, got {capacity}"
            )
        self.name = name
        self._capacity = float(capacity)
        self._used = 0.0
        self._entries: "OrderedDict[object, float]" = OrderedDict()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def capacity(self) -> float:
        return self._capacity

    @property
    def used(self) -> float:
        return self._used

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: object) -> bool:
        return key in self._entries

    def weight_of(self, key: object) -> float:
        return self._entries[key]

    def keys_mru_to_lru(self) -> Iterator[object]:
        """Iterate keys from most- to least-recently used."""
        return iter(self._entries)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------

    def push_front(self, key: object, weight: float) -> None:
        """Insert (or move) ``key`` at the MRU end."""
        if weight < 0:
            raise CacheError(f"negative weight {weight} for key {key!r}")
        if key in self._entries:
            self._used -= self._entries[key]
        self._entries[key] = weight
        self._entries.move_to_end(key, last=False)
        self._used += weight

    def push_back(self, key: object, weight: float) -> None:
        """Insert (or move) ``key`` at the LRU end (used by cascades)."""
        if weight < 0:
            raise CacheError(f"negative weight {weight} for key {key!r}")
        if key in self._entries:
            self._used -= self._entries[key]
        self._entries[key] = weight
        self._entries.move_to_end(key, last=True)
        self._used += weight

    def remove(self, key: object) -> float:
        """Remove ``key`` and return its weight. KeyError if absent."""
        weight = self._entries.pop(key)
        self._used -= weight
        return weight

    def pop_back(self) -> Tuple[object, float]:
        """Remove and return the LRU entry as ``(key, weight)``."""
        if not self._entries:
            raise CacheError(f"pop from empty queue {self.name!r}")
        key, weight = self._entries.popitem(last=True)
        self._used -= weight
        return key, weight

    def peek_back(self) -> Tuple[object, float]:
        """Return the LRU entry without removing it."""
        if not self._entries:
            raise CacheError(f"peek into empty queue {self.name!r}")
        key = next(reversed(self._entries))
        return key, self._entries[key]

    def resize(self, capacity: float) -> None:
        """Change capacity; overflow must be drained by the caller."""
        if capacity < 0:
            raise ConfigurationError(
                f"queue capacity must be >= 0, got {capacity}"
            )
        self._capacity = float(capacity)

    def overflow(self) -> Iterator[Tuple[object, float]]:
        """Pop LRU entries while the queue exceeds its capacity.

        An entry heavier than the whole capacity is itself popped, so the
        queue always converges to ``used <= capacity``.
        """
        while self._entries and self._used > self._capacity:
            yield self.pop_back()

    def clear(self) -> None:
        self._entries.clear()
        self._used = 0.0


class QueueChain:
    """A cascade of :class:`KeyQueue` segments behaving as one LRU queue.

    Segment 0 is the hottest (front of the combined queue). On a hit
    anywhere in the chain the key is promoted to the front of segment 0;
    overflow then cascades: the LRU entry of segment *i* is pushed onto the
    front of segment *i+1*, and entries overflowing the final segment are
    dropped (returned to the caller).

    Typical Cliffhanger layout for one slab-class queue::

        [ physical main | tail probe | cliff shadow | hill shadow ]
          values "stored"  last 128     128 items      ~1 MB of
                           items                       requests

    Only the *first* ``physical_segments`` segments count as holding real
    memory; the rest are shadow (key-only) extensions. The chain itself is
    agnostic -- callers interpret segment indices.
    """

    def __init__(
        self, segments: List[KeyQueue], physical_segments: int = 1
    ) -> None:
        if not segments:
            raise ConfigurationError("chain needs at least one segment")
        if not 0 <= physical_segments <= len(segments):
            raise ConfigurationError(
                f"physical_segments {physical_segments} out of range for "
                f"{len(segments)} segments"
            )
        names = [segment.name for segment in segments]
        if len(set(names)) != len(names):
            raise ConfigurationError(f"duplicate segment names: {names}")
        self.segments = segments
        self.physical_segments = physical_segments
        self._locator: dict = {}
        for idx, segment in enumerate(segments):
            for key in segment.keys_mru_to_lru():
                if key in self._locator:
                    raise ConfigurationError(
                        f"key {key!r} present in two segments"
                    )
                self._locator[key] = idx

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._locator)

    def __contains__(self, key: object) -> bool:
        return key in self._locator

    def segment_of(self, key: object) -> Optional[int]:
        """Index of the segment holding ``key``, or None."""
        return self._locator.get(key)

    def is_physical(self, key: object) -> bool:
        """True iff the key currently resides in a physical segment."""
        idx = self._locator.get(key)
        return idx is not None and idx < self.physical_segments

    @property
    def physical_used(self) -> float:
        return sum(
            segment.used
            for segment in self.segments[: self.physical_segments]
        )

    @property
    def physical_capacity(self) -> float:
        return sum(
            segment.capacity
            for segment in self.segments[: self.physical_segments]
        )

    def physical_len(self) -> int:
        return sum(
            len(segment)
            for segment in self.segments[: self.physical_segments]
        )

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------

    def access(self, key: object) -> Optional[int]:
        """Touch ``key``: return the segment index it was found in (then
        promote it to the front of segment 0), or None on a complete miss.

        The returned index is the *pre-promotion* location, which is what
        the shadow-queue algorithms condition on.
        """
        idx = self._locator.get(key)
        if idx is None:
            return None
        weight = self.segments[idx].remove(key)
        self.segments[0].push_front(key, weight)
        self._locator[key] = 0
        self._cascade()
        return idx

    def insert(self, key: object, weight: float) -> List[Tuple[object, float]]:
        """Insert a new key at the front; return entries dropped off the
        chain's tail. Re-inserting an existing key refreshes its weight."""
        old_idx = self._locator.get(key)
        if old_idx is not None:
            self.segments[old_idx].remove(key)
        self.segments[0].push_front(key, weight)
        self._locator[key] = 0
        return self._cascade()

    def remove(self, key: object) -> bool:
        """Remove ``key`` from wherever it lives. Returns True if present."""
        idx = self._locator.pop(key, None)
        if idx is None:
            return False
        self.segments[idx].remove(key)
        return True

    def resize_segment(
        self, index: int, capacity: float
    ) -> List[Tuple[object, float]]:
        """Resize one segment and cascade; return dropped entries."""
        self.segments[index].resize(capacity)
        return self._cascade()

    def _cascade(self) -> List[Tuple[object, float]]:
        dropped: List[Tuple[object, float]] = []
        last = len(self.segments) - 1
        for idx, segment in enumerate(self.segments):
            for key, weight in segment.overflow():
                if idx == last:
                    del self._locator[key]
                    dropped.append((key, weight))
                else:
                    self.segments[idx + 1].push_front(key, weight)
                    self._locator[key] = idx + 1
        return dropped

    def check_invariants(self) -> None:
        """Raise :class:`CacheError` if internal bookkeeping diverged.

        Used by the test suite after randomized operation sequences.
        """
        seen = {}
        for idx, segment in enumerate(self.segments):
            recomputed = 0.0
            for key in segment.keys_mru_to_lru():
                if key in seen:
                    raise CacheError(f"key {key!r} in segments {seen[key]} and {idx}")
                seen[key] = idx
                recomputed += segment.weight_of(key)
            if abs(recomputed - segment.used) > 1e-6:
                raise CacheError(
                    f"segment {segment.name!r} used={segment.used} but "
                    f"entries sum to {recomputed}"
                )
            if segment.used - segment.capacity > 1e-6:
                raise CacheError(
                    f"segment {segment.name!r} over capacity after cascade"
                )
        if seen != self._locator:
            raise CacheError("locator map diverged from segment contents")
