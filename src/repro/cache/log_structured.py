"""Log-structured memory mode: one global LRU queue at 100% utilization.

Table 2 of the paper compares slab allocation against "a global LRU queue
that simulates LSM ... with 100% memory utilization (such a scheme does not
exist in practice)". This engine implements that idealization: items of all
sizes share one byte-weighted LRU queue; an item occupies exactly its own
size (no chunk rounding, no fragmentation, no cleaner overhead).
"""

from __future__ import annotations

from typing import Dict

from repro.cache.engines import Engine
from repro.cache.policies import EvictionPolicy, make_policy
from repro.cache.slabs import SlabGeometry
from repro.cache.stats import (
    CLASS_SHIFT,
    EVICTED_SHIFT,
    OP_GET,
    OP_SET,
    OUTCOME_HIT,
)


class GlobalLRUEngine(Engine):
    """An idealized log-structured store: global LRU, perfect compaction.

    The ``policy`` argument exists because a log-structured cache could run
    any replacement scheme over its log; the paper's Table 2 uses LRU.
    Slab classes are still computed for every request so statistics remain
    comparable with the slab engines, but they play no allocation role.
    """

    def __init__(
        self,
        app: str,
        budget_bytes: float,
        geometry: SlabGeometry,
        policy: str = "lru",
    ) -> None:
        super().__init__(app, budget_bytes, geometry)
        self.queue: EvictionPolicy = make_policy(
            policy, budget_bytes, name=f"{app}/log"
        )

    # ------------------------------------------------------------------

    def capacities(self) -> Dict[int, float]:
        # The whole budget backs a single logical queue; report it under a
        # pseudo-class -1 so timeline code has something to plot.
        return {-1: self.queue.capacity}

    def used_bytes(self) -> float:
        return self.queue.used

    def _enforce_budget(self) -> int:
        evicted = self.queue.resize(self.budget_bytes)
        self.ops.evictions += len(evicted)
        return len(evicted)

    def grow_budget(self, delta_bytes: float) -> None:
        super().grow_budget(delta_bytes)
        self.queue.resize(self.budget_bytes)

    # ------------------------------------------------------------------

    def process_fast(
        self, key: object, op: int, class_index: int, chunk: int,
        item_bytes: int,
    ) -> int:
        class_code = (class_index + 1) << CLASS_SHIFT
        if op == OP_GET:
            self.ops.hash_lookups += 1
            if self.queue.access(key):
                self.ops.promotes += 1
                return class_code | OUTCOME_HIT
            evicted = len(self.queue.insert(key, item_bytes))
            self.ops.inserts += 1
            self.ops.evictions += evicted
            return (evicted << EVICTED_SHIFT) | class_code
        if op == OP_SET:
            evicted = len(self.queue.insert(key, item_bytes))
            self.ops.inserts += 1
            self.ops.evictions += evicted
            return (evicted << EVICTED_SHIFT) | class_code
        # DELETE path.
        self.ops.hash_lookups += 1
        present = self.queue.remove(key)
        return class_code | OUTCOME_HIT if present else class_code
