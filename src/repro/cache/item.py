"""The cache item model.

The simulator never materializes item values -- only their sizes. A
:class:`CacheItem` therefore carries the key, the key's size in bytes, the
value's size in bytes, and the fixed metadata overhead Memcached charges per
item. The *total* size determines which slab class the item lands in.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.constants import ITEM_OVERHEAD_BYTES
from repro.common.errors import ConfigurationError


@dataclass(frozen=True)
class CacheItem:
    """An immutable description of one cached object.

    Attributes:
        key: The cache key. Any hashable; traces use strings like
            ``"app3:k00042"``.
        key_size: Bytes the key occupies. Defaults to the length of the
            key's string form, matching how Memcached charges for keys.
        value_size: Bytes the value occupies.
        overhead: Fixed per-item metadata bytes (item header, CAS, flags).
    """

    key: object
    value_size: int
    key_size: int = -1
    overhead: int = ITEM_OVERHEAD_BYTES

    def __post_init__(self) -> None:
        if self.value_size < 0:
            raise ConfigurationError(
                f"value_size must be non-negative, got {self.value_size}"
            )
        if self.key_size < 0:
            object.__setattr__(self, "key_size", len(str(self.key)))
        if self.overhead < 0:
            raise ConfigurationError(
                f"overhead must be non-negative, got {self.overhead}"
            )

    @property
    def total_size(self) -> int:
        """Bytes this item needs in a slab chunk (key + value + header)."""
        return self.key_size + self.value_size + self.overhead
