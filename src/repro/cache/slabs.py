"""Slab-class geometry.

Memcached avoids fragmentation by carving memory into *slab classes*; each
class stores items whose total size falls into a fixed range and allocates
fixed-size chunks (paper section 2: "< 128B, 128-256B, etc."). The
reproduction models each slab class as an eviction queue whose capacity is
measured in bytes and whose items each weigh exactly one chunk.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Iterator, Tuple

from repro.common.constants import (
    MAX_CHUNK_BYTES,
    MIN_CHUNK_BYTES,
    NUM_SLAB_CLASSES,
)
from repro.common.errors import CacheError, ConfigurationError


@dataclass(frozen=True)
class SlabGeometry:
    """An immutable ladder of chunk sizes, smallest first.

    An item of total size ``s`` is stored in the smallest class whose chunk
    size is >= ``s`` and it occupies the whole chunk (internal
    fragmentation is real memory, and the simulator charges for it just
    like Memcached does).
    """

    chunk_sizes: Tuple[int, ...]

    def __post_init__(self) -> None:
        if not self.chunk_sizes:
            raise ConfigurationError("slab geometry needs at least one class")
        sizes = list(self.chunk_sizes)
        if sizes != sorted(sizes):
            raise ConfigurationError("chunk sizes must be sorted ascending")
        if len(set(sizes)) != len(sizes):
            raise ConfigurationError("chunk sizes must be distinct")
        if sizes[0] <= 0:
            raise ConfigurationError("chunk sizes must be positive")

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @classmethod
    def power_of_two(
        cls,
        min_chunk: int = MIN_CHUNK_BYTES,
        max_chunk: int = MAX_CHUNK_BYTES,
    ) -> "SlabGeometry":
        """The paper's ladder: 64 B, 128 B, 256 B, ... up to 1 MB."""
        if min_chunk <= 0 or max_chunk < min_chunk:
            raise ConfigurationError(
                f"invalid chunk range [{min_chunk}, {max_chunk}]"
            )
        sizes = []
        size = min_chunk
        while size <= max_chunk:
            sizes.append(size)
            size *= 2
        return cls(tuple(sizes))

    @classmethod
    def memcached(
        cls,
        base: int = 96,
        growth: float = 1.25,
        max_chunk: int = MAX_CHUNK_BYTES,
        max_classes: int = 42,
    ) -> "SlabGeometry":
        """Memcached's default geometry (growth factor 1.25)."""
        if base <= 0 or growth <= 1.0:
            raise ConfigurationError(
                f"invalid memcached geometry base={base} growth={growth}"
            )
        sizes = []
        size = float(base)
        while len(sizes) < max_classes and size <= max_chunk:
            aligned = int(size)
            if not sizes or aligned > sizes[-1]:
                sizes.append(aligned)
            size *= growth
        return cls(tuple(sizes))

    @classmethod
    def default(cls) -> "SlabGeometry":
        """The geometry used throughout the reproduction (15 classes)."""
        geometry = cls.power_of_two()
        if len(geometry.chunk_sizes) != NUM_SLAB_CLASSES:
            raise ConfigurationError(
                "default geometry drifted from NUM_SLAB_CLASSES"
            )
        return geometry

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    @property
    def num_classes(self) -> int:
        return len(self.chunk_sizes)

    def chunk_size(self, class_index: int) -> int:
        """Chunk size in bytes of slab class ``class_index``."""
        return self.chunk_sizes[class_index]

    def class_for_size(self, total_size: int) -> int:
        """Return the slab class index that stores items of ``total_size``.

        Raises :class:`CacheError` for items larger than the largest chunk
        (Memcached rejects those with ``SERVER_ERROR object too large``).
        """
        if total_size <= 0:
            raise CacheError(f"item size must be positive, got {total_size}")
        idx = bisect.bisect_left(self.chunk_sizes, total_size)
        if idx >= len(self.chunk_sizes):
            raise CacheError(
                f"item of {total_size}B exceeds largest chunk "
                f"{self.chunk_sizes[-1]}B"
            )
        return idx

    def class_ranges(self) -> Iterator[Tuple[int, int, int]]:
        """Yield ``(class_index, min_size, max_size)`` for documentation
        and pretty-printing (min is exclusive of the previous chunk)."""
        prev = 0
        for idx, chunk in enumerate(self.chunk_sizes):
            yield idx, prev + 1, chunk
            prev = chunk

    def describe(self) -> str:
        """Human-readable table of the ladder."""
        lines = ["class  chunk(B)   stores(B)"]
        for idx, lo, hi in self.class_ranges():
            lines.append(f"{idx:>5}  {hi:>8}   {lo}-{hi}")
        return "\n".join(lines)


def chunks_for_bytes(capacity_bytes: float, chunk_size: int) -> int:
    """How many whole chunks fit into ``capacity_bytes``."""
    if chunk_size <= 0:
        raise ConfigurationError(f"chunk_size must be positive: {chunk_size}")
    return max(0, int(capacity_bytes // chunk_size))
