"""Adaptive Replacement Cache (Megiddo & Modha, FAST 2003).

ARC is the LRU/LFU hybrid the paper compares against in section 5.5 ("We
found that ARC did not provide any hit rate improvement in any of the
applications of the Memcachier trace"). It keeps four lists:

* ``T1`` -- resident keys seen exactly once recently (recency list);
* ``T2`` -- resident keys seen at least twice recently (frequency list);
* ``B1``/``B2`` -- ghost (key-only) extensions of T1/T2.

The adaptation target ``p`` is the desired byte size of T1; ghost hits in
B1 grow ``p`` (favoring recency) and ghost hits in B2 shrink it (favoring
frequency). The original algorithm is defined for unit-size pages; this
implementation generalizes it to weighted items by adapting ``p`` in byte
units, which is the standard generalization used by weighted-ARC variants.
"""

from __future__ import annotations

from typing import Iterator

from repro.cache.keyqueue import KeyQueue
from repro.cache.policies.base import Evicted, EvictionPolicy


class ARCPolicy(EvictionPolicy):
    """Weighted ARC. Ghost lists store keys with the bytes they stood for."""

    kind = "arc"

    def __init__(self, capacity: float, name: str = "") -> None:
        super().__init__(capacity, name)
        self._t1 = KeyQueue(float("inf"), name=f"{name}/T1")
        self._t2 = KeyQueue(float("inf"), name=f"{name}/T2")
        self._b1 = KeyQueue(float("inf"), name=f"{name}/B1")
        self._b2 = KeyQueue(float("inf"), name=f"{name}/B2")
        self._p = 0.0  # target byte size of T1

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def used(self) -> float:
        return self._t1.used + self._t2.used

    @property
    def p(self) -> float:
        """Current recency target in bytes (exposed for tests/plots)."""
        return self._p

    def __len__(self) -> int:
        return len(self._t1) + len(self._t2)

    def __contains__(self, key: object) -> bool:
        return key in self._t1 or key in self._t2

    def keys(self) -> Iterator[object]:
        yield from self._t1.keys_mru_to_lru()
        yield from self._t2.keys_mru_to_lru()

    def ghost_contains(self, key: object) -> bool:
        return key in self._b1 or key in self._b2

    # ------------------------------------------------------------------
    # Core ARC machinery
    # ------------------------------------------------------------------

    def _replace(self, key_in_b2: bool, evicted: Evicted) -> None:
        """Demote one resident item into the matching ghost list."""
        t1_used = self._t1.used
        if len(self._t1) > 0 and (
            t1_used > self._p or (key_in_b2 and t1_used >= self._p)
        ):
            victim, weight = self._t1.pop_back()
            self._b1.push_front(victim, weight)
            evicted.append((victim, weight))
        elif len(self._t2) > 0:
            victim, weight = self._t2.pop_back()
            self._b2.push_front(victim, weight)
            evicted.append((victim, weight))
        elif len(self._t1) > 0:
            victim, weight = self._t1.pop_back()
            self._b1.push_front(victim, weight)
            evicted.append((victim, weight))

    def _trim_ghosts(self) -> None:
        """Bound |L1| <= c and |L1|+|L2| <= 2c (in bytes)."""
        c = self.capacity
        while len(self._b1) > 0 and self._t1.used + self._b1.used > c:
            self._b1.pop_back()
        total = (
            self._t1.used + self._t2.used + self._b1.used + self._b2.used
        )
        while len(self._b2) > 0 and total > 2 * c:
            _, w = self._b2.pop_back()
            total -= w

    # ------------------------------------------------------------------
    # EvictionPolicy interface
    # ------------------------------------------------------------------

    def access(self, key: object) -> bool:
        if key in self._t1:
            weight = self._t1.remove(key)
            self._t2.push_front(key, weight)
            return True
        if key in self._t2:
            weight = self._t2.weight_of(key)
            self._t2.push_front(key, weight)
            return True
        return False

    def insert(self, key: object, weight: float) -> Evicted:
        evicted: Evicted = []
        c = self.capacity
        if key in self._t1 or key in self._t2:
            # Value refresh of a resident key: update weight in place.
            if key in self._t1:
                self._t1.push_front(key, weight)
            else:
                self._t2.push_front(key, weight)
        elif key in self._b1:
            # Ghost hit favoring recency: grow p.
            b1, b2 = max(self._b1.used, 1.0), self._b2.used
            delta = weight * max(1.0, b2 / b1)
            self._p = min(c, self._p + delta)
            self._b1.remove(key)
            self._t2.push_front(key, weight)
        elif key in self._b2:
            # Ghost hit favoring frequency: shrink p.
            b1, b2 = self._b1.used, max(self._b2.used, 1.0)
            delta = weight * max(1.0, b1 / b2)
            self._p = max(0.0, self._p - delta)
            self._b2.remove(key)
            self._t2.push_front(key, weight)
        else:
            self._t1.push_front(key, weight)
        key_in_b2_path = False  # p-biased replace applies pre-insert in
        # the textbook formulation; we demote after insertion, which is
        # equivalent for capacity purposes.
        while self.used > c and (len(self._t1) or len(self._t2)):
            self._replace(key_in_b2_path, evicted)
        # The just-inserted key must stay resident; if _replace demoted it
        # (single-item corner case where weight > capacity), accept that.
        self._trim_ghosts()
        return evicted

    def remove(self, key: object) -> bool:
        for queue in (self._t1, self._t2):
            if key in queue:
                queue.remove(key)
                return True
        for ghost in (self._b1, self._b2):
            if key in ghost:
                ghost.remove(key)
                return True
        return False

    def resize(self, capacity: float) -> Evicted:
        self._set_capacity(capacity)
        self._p = min(self._p, capacity)
        evicted: Evicted = []
        while self.used > capacity and (len(self._t1) or len(self._t2)):
            self._replace(False, evicted)
        self._trim_ghosts()
        return evicted
