"""Least-frequently-used eviction with O(1) frequency buckets.

Implements the constant-time LFU scheme (frequency-indexed LRU lists): each
resident key belongs to the bucket of its access count; eviction takes the
least-recently-used key of the lowest non-empty frequency bucket, so ties
within a frequency break by recency.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Iterator, Tuple

from repro.cache.policies.base import Evicted, EvictionPolicy


class LFUPolicy(EvictionPolicy):
    """LFU with recency tie-breaking inside each frequency bucket."""

    kind = "lfu"

    def __init__(self, capacity: float, name: str = "") -> None:
        super().__init__(capacity, name)
        # key -> (frequency, weight)
        self._meta: Dict[object, Tuple[int, float]] = {}
        # frequency -> OrderedDict of keys (front = most recently used)
        self._buckets: Dict[int, "OrderedDict[object, None]"] = {}
        self._min_freq = 0
        self._used = 0.0

    # ------------------------------------------------------------------

    @property
    def used(self) -> float:
        return self._used

    def __len__(self) -> int:
        return len(self._meta)

    def __contains__(self, key: object) -> bool:
        return key in self._meta

    def keys(self) -> Iterator[object]:
        return iter(self._meta)

    def frequency_of(self, key: object) -> int:
        """Access count of a resident key (exposed for tests)."""
        return self._meta[key][0]

    # ------------------------------------------------------------------

    def _bucket_add(self, freq: int, key: object) -> None:
        bucket = self._buckets.setdefault(freq, OrderedDict())
        bucket[key] = None
        bucket.move_to_end(key, last=False)

    def _bucket_discard(self, freq: int, key: object) -> None:
        bucket = self._buckets[freq]
        del bucket[key]
        if not bucket:
            del self._buckets[freq]

    def _evict_one(self) -> Tuple[object, float]:
        while self._min_freq not in self._buckets:
            self._min_freq += 1
        bucket = self._buckets[self._min_freq]
        key, _ = bucket.popitem(last=True)
        if not bucket:
            del self._buckets[self._min_freq]
        _, weight = self._meta.pop(key)
        self._used -= weight
        return key, weight

    def _evict_overflow(self) -> Evicted:
        evicted: Evicted = []
        while self._meta and self._used > self.capacity:
            evicted.append(self._evict_one())
        return evicted

    # ------------------------------------------------------------------

    def access(self, key: object) -> bool:
        meta = self._meta.get(key)
        if meta is None:
            return False
        freq, weight = meta
        self._bucket_discard(freq, key)
        self._meta[key] = (freq + 1, weight)
        self._bucket_add(freq + 1, key)
        if freq == self._min_freq and self._min_freq not in self._buckets:
            self._min_freq += 1
        return True

    def insert(self, key: object, weight: float) -> Evicted:
        if key in self._meta:
            freq, old_weight = self._meta[key]
            self._used -= old_weight
            self._bucket_discard(freq, key)
        freq = 1
        self._meta[key] = (freq, weight)
        self._bucket_add(freq, key)
        self._used += weight
        self._min_freq = 1
        return self._evict_overflow()

    def remove(self, key: object) -> bool:
        meta = self._meta.pop(key, None)
        if meta is None:
            return False
        freq, weight = meta
        self._bucket_discard(freq, key)
        self._used -= weight
        return True

    def resize(self, capacity: float) -> Evicted:
        self._set_capacity(capacity)
        return self._evict_overflow()
