"""2Q eviction (Johnson & Shasha, VLDB 1994).

2Q filters one-hit wonders through a small FIFO (``A1in``); keys evicted
from it are remembered in a ghost list (``A1out``). Only a key that misses
while remembered in ``A1out`` is admitted to the main LRU (``Am``) -- i.e.
a key must be re-referenced after leaving the FIFO to prove it is worth
keeping. We use the standard tuning: ``Kin`` = 25% of capacity,
``Kout`` remembers 50% of capacity worth of ghosts.
"""

from __future__ import annotations

from typing import Iterator

from repro.cache.keyqueue import KeyQueue
from repro.cache.policies.base import Evicted, EvictionPolicy


class TwoQPolicy(EvictionPolicy):
    """The full (non-simplified) 2Q algorithm, weighted by bytes."""

    kind = "twoq"

    def __init__(
        self,
        capacity: float,
        name: str = "",
        in_fraction: float = 0.25,
        out_fraction: float = 0.5,
    ) -> None:
        super().__init__(capacity, name)
        self.in_fraction = in_fraction
        self.out_fraction = out_fraction
        self._a1in = KeyQueue(capacity * in_fraction, name=f"{name}/A1in")
        self._am = KeyQueue(
            capacity * (1.0 - in_fraction), name=f"{name}/Am"
        )
        self._a1out = KeyQueue(
            capacity * out_fraction, name=f"{name}/A1out"
        )  # ghost: keys only

    # ------------------------------------------------------------------

    @property
    def used(self) -> float:
        return self._a1in.used + self._am.used

    def __len__(self) -> int:
        return len(self._a1in) + len(self._am)

    def __contains__(self, key: object) -> bool:
        return key in self._a1in or key in self._am

    def keys(self) -> Iterator[object]:
        yield from self._am.keys_mru_to_lru()
        yield from self._a1in.keys_mru_to_lru()

    def ghost_contains(self, key: object) -> bool:
        return key in self._a1out

    # ------------------------------------------------------------------

    def _reclaim(self) -> Evicted:
        """Evict to restore capacity: A1in overflow moves to the ghost
        list (that *is* an eviction); Am overflow is evicted outright."""
        evicted: Evicted = []
        for key, weight in self._a1in.overflow():
            self._a1out.push_front(key, weight)
            evicted.append((key, weight))
        for key, weight in self._am.overflow():
            evicted.append((key, weight))
        # Ghost list is bounded separately; dropping ghosts frees nothing.
        for _ in self._a1out.overflow():
            pass
        return evicted

    def access(self, key: object) -> bool:
        if key in self._am:
            self._am.push_front(key, self._am.weight_of(key))
            return True
        if key in self._a1in:
            # 2Q leaves A1in order untouched on hit (it is a FIFO).
            return True
        return False

    def insert(self, key: object, weight: float) -> Evicted:
        if key in self._am:
            self._am.push_front(key, weight)
        elif key in self._a1in:
            self._a1in.push_front(key, weight)
        elif key in self._a1out:
            # Proven reuse: promote into the main queue.
            self._a1out.remove(key)
            self._am.push_front(key, weight)
        else:
            # FIFO admit: enter at the front, leave from the back.
            self._a1in.push_front(key, weight)
        return self._reclaim()

    def remove(self, key: object) -> bool:
        for queue in (self._a1in, self._am, self._a1out):
            if key in queue:
                queue.remove(key)
                return True
        return False

    def resize(self, capacity: float) -> Evicted:
        self._set_capacity(capacity)
        self._a1in.resize(capacity * self.in_fraction)
        self._am.resize(capacity * (1.0 - self.in_fraction))
        self._a1out.resize(capacity * self.out_fraction)
        return self._reclaim()
