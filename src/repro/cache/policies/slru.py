"""Segmented LRU and Facebook's mid-insertion scheme.

SLRU keeps two LRU segments: *protected* (top of the logical queue) and
*probationary* (bottom). New items enter the probationary segment; a hit
promotes to the protected segment; protected overflow demotes back to the
front of the probationary segment; probationary overflow is evicted.

The Facebook scheme the paper evaluates (section 5.5: "the first time a
request hits it is inserted at the middle of the queue. When it hits a
second time, it is inserted to the top of the queue") is exactly SLRU with
a 50/50 split: inserting at the front of the bottom half *is* inserting at
the middle of the queue.
"""

from __future__ import annotations

from typing import Iterator

from repro.common.errors import ConfigurationError
from repro.cache.keyqueue import KeyQueue
from repro.cache.policies.base import Evicted, EvictionPolicy


class SLRUPolicy(EvictionPolicy):
    """Segmented LRU with a configurable protected fraction."""

    kind = "slru"

    def __init__(
        self,
        capacity: float,
        name: str = "",
        protected_fraction: float = 0.5,
    ) -> None:
        super().__init__(capacity, name)
        if not 0.0 <= protected_fraction < 1.0:
            raise ConfigurationError(
                f"protected_fraction must be in [0, 1), got "
                f"{protected_fraction}"
            )
        self.protected_fraction = protected_fraction
        self._protected = KeyQueue(
            capacity * protected_fraction, name=f"{name}/protected"
        )
        self._probation = KeyQueue(
            capacity * (1.0 - protected_fraction), name=f"{name}/probation"
        )

    # ------------------------------------------------------------------

    @property
    def used(self) -> float:
        return self._protected.used + self._probation.used

    def __len__(self) -> int:
        return len(self._protected) + len(self._probation)

    def __contains__(self, key: object) -> bool:
        return key in self._protected or key in self._probation

    def keys(self) -> Iterator[object]:
        yield from self._protected.keys_mru_to_lru()
        yield from self._probation.keys_mru_to_lru()

    def in_protected(self, key: object) -> bool:
        """True iff the key sits in the protected segment (for tests)."""
        return key in self._protected

    # ------------------------------------------------------------------

    def _cascade(self) -> Evicted:
        """Demote protected overflow to probation, evict probation
        overflow."""
        for key, weight in self._protected.overflow():
            self._probation.push_front(key, weight)
        return list(self._probation.overflow())

    def access(self, key: object) -> bool:
        if key in self._protected:
            weight = self._protected.weight_of(key)
            self._protected.push_front(key, weight)
            return True
        if key in self._probation:
            weight = self._probation.remove(key)
            self._protected.push_front(key, weight)
            # Promotion may overflow protected; demotions cannot overflow
            # probation beyond what eviction resolves.
            self._cascade()
            return True
        return False

    def insert(self, key: object, weight: float) -> Evicted:
        # A re-SET of a resident key keeps its segment; treat it as a
        # fresh value in the same place with the new weight.
        if key in self._protected:
            self._protected.push_front(key, weight)
        else:
            if key in self._probation:
                self._probation.remove(key)
            self._probation.push_front(key, weight)
        return self._cascade()

    def remove(self, key: object) -> bool:
        if key in self._protected:
            self._protected.remove(key)
            return True
        if key in self._probation:
            self._probation.remove(key)
            return True
        return False

    def resize(self, capacity: float) -> Evicted:
        self._set_capacity(capacity)
        self._protected.resize(capacity * self.protected_fraction)
        self._probation.resize(capacity * (1.0 - self.protected_fraction))
        return self._cascade()


class FacebookPolicy(SLRUPolicy):
    """Facebook's mid-insertion LRU (paper section 5.5).

    First SET lands at the middle of the logical queue; the first
    subsequent hit promotes to the top. Items that are never re-referenced
    only ever travel the bottom half before eviction, which protects the
    hot top half from one-hit-wonder churn.
    """

    kind = "facebook"

    def __init__(self, capacity: float, name: str = "") -> None:
        super().__init__(capacity, name=name, protected_fraction=0.5)
