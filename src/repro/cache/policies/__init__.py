"""Eviction policies.

Cliffhanger "supports any eviction policy, including LRU, LFU or hybrid
policies such as ARC" (paper section 1). This package provides the policies
the paper discusses plus the classic variants from its related work:

================  ==========================================================
``lru``           Least-recently-used (Memcached's default; paper baseline).
``lfu``           Least-frequently-used with O(1) frequency buckets.
``slru``          Segmented LRU (probationary + protected segments).
``facebook``      Facebook's mid-insertion scheme (section 5.5): first hit
                  inserts mid-queue, second hit promotes to the top.
``arc``           Adaptive Replacement Cache (Megiddo & Modha, FAST'03).
``lruk``          LRU-K (O'Neil et al., SIGMOD'93), K = 2 by default.
``twoq``          2Q (Johnson & Shasha, VLDB'94).
================  ==========================================================

All policies share the :class:`EvictionPolicy` interface: capacities and
item weights are measured in bytes, and evictions are *returned* to the
caller so that engines can forward evicted keys into shadow queues.
"""

from typing import Callable, Dict

from repro.common.errors import ConfigurationError
from repro.cache.policies.base import EvictionPolicy
from repro.cache.policies.lru import LRUPolicy
from repro.cache.policies.lfu import LFUPolicy
from repro.cache.policies.slru import FacebookPolicy, SLRUPolicy
from repro.cache.policies.arc import ARCPolicy
from repro.cache.policies.lruk import LRUKPolicy
from repro.cache.policies.twoq import TwoQPolicy

PolicyFactory = Callable[[float, str], EvictionPolicy]

#: Registry mapping policy names to factories ``(capacity, name) -> policy``.
POLICIES: Dict[str, PolicyFactory] = {
    "lru": lambda capacity, name="": LRUPolicy(capacity, name=name),
    "lfu": lambda capacity, name="": LFUPolicy(capacity, name=name),
    "slru": lambda capacity, name="": SLRUPolicy(capacity, name=name),
    "facebook": lambda capacity, name="": FacebookPolicy(capacity, name=name),
    "arc": lambda capacity, name="": ARCPolicy(capacity, name=name),
    "lruk": lambda capacity, name="": LRUKPolicy(capacity, name=name),
    "twoq": lambda capacity, name="": TwoQPolicy(capacity, name=name),
}


def make_policy(kind: str, capacity: float, name: str = "") -> EvictionPolicy:
    """Instantiate a registered policy by name."""
    try:
        factory = POLICIES[kind]
    except KeyError:
        raise ConfigurationError(
            f"unknown policy {kind!r}; known: {sorted(POLICIES)}"
        ) from None
    return factory(capacity, name)


__all__ = [
    "EvictionPolicy",
    "LRUPolicy",
    "LFUPolicy",
    "SLRUPolicy",
    "FacebookPolicy",
    "ARCPolicy",
    "LRUKPolicy",
    "TwoQPolicy",
    "POLICIES",
    "PolicyFactory",
    "make_policy",
]
