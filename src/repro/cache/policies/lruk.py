"""LRU-K eviction (O'Neil, O'Neil & Weikum, SIGMOD 1993).

LRU-K evicts the key whose K-th most recent access is oldest; keys with
fewer than K recorded accesses have backward K-distance infinity and are
evicted first (tie-broken by least recent access), which makes LRU-K scan
resistant for K >= 2.

The implementation uses a logical clock and a lazy min-heap keyed by the
K-th-last access time; stale heap entries are skipped at pop time via a
per-key version counter. All heap operations are O(log n) amortized.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Deque, Dict, Iterator, List, Tuple

from repro.common.errors import ConfigurationError
from repro.cache.policies.base import Evicted, EvictionPolicy


class _Entry:
    __slots__ = ("weight", "history", "version")

    def __init__(self, weight: float, k: int) -> None:
        self.weight = weight
        self.history: Deque[int] = deque(maxlen=k)
        self.version = 0


class LRUKPolicy(EvictionPolicy):
    """LRU-K with lazy heap maintenance. Default K = 2."""

    kind = "lruk"

    def __init__(self, capacity: float, name: str = "", k: int = 2) -> None:
        super().__init__(capacity, name)
        if k < 1:
            raise ConfigurationError(f"K must be >= 1, got {k}")
        self.k = k
        self._entries: Dict[object, _Entry] = {}
        # Heap of (kth_last_access, last_access, version, key). Keys with
        # fewer than K accesses use kth_last_access = -1 so they sort
        # before every fully-observed key (infinite backward K-distance).
        self._heap: List[Tuple[int, int, int, object]] = []
        self._clock = 0
        self._used = 0.0

    # ------------------------------------------------------------------

    @property
    def used(self) -> float:
        return self._used

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: object) -> bool:
        return key in self._entries

    def keys(self) -> Iterator[object]:
        return iter(self._entries)

    # ------------------------------------------------------------------

    def _record_access(self, key: object, entry: _Entry) -> None:
        self._clock += 1
        entry.history.append(self._clock)
        entry.version += 1
        kth = (
            entry.history[0] if len(entry.history) == self.k else -1
        )
        heapq.heappush(
            self._heap, (kth, entry.history[-1], entry.version, key)
        )

    def _pop_victim(self) -> Tuple[object, float]:
        while True:
            kth, last, version, key = heapq.heappop(self._heap)
            entry = self._entries.get(key)
            if entry is None or entry.version != version:
                continue  # stale heap record
            del self._entries[key]
            self._used -= entry.weight
            return key, entry.weight

    def _evict_overflow(self) -> Evicted:
        evicted: Evicted = []
        while self._entries and self._used > self.capacity:
            evicted.append(self._pop_victim())
        return evicted

    # ------------------------------------------------------------------

    def access(self, key: object) -> bool:
        entry = self._entries.get(key)
        if entry is None:
            return False
        self._record_access(key, entry)
        return True

    def insert(self, key: object, weight: float) -> Evicted:
        entry = self._entries.get(key)
        if entry is None:
            entry = _Entry(weight, self.k)
            self._entries[key] = entry
            self._used += weight
        else:
            self._used += weight - entry.weight
            entry.weight = weight
        self._record_access(key, entry)
        return self._evict_overflow()

    def remove(self, key: object) -> bool:
        entry = self._entries.pop(key, None)
        if entry is None:
            return False
        self._used -= entry.weight
        return True

    def resize(self, capacity: float) -> Evicted:
        self._set_capacity(capacity)
        return self._evict_overflow()
