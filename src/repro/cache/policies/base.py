"""The eviction-policy interface.

A policy manages the *physical* part of one queue: which keys are resident
and which key to evict when space is needed. Weights and capacities are in
bytes. Policies never interact with shadow queues directly; engines forward
the eviction lists returned by :meth:`insert` and :meth:`resize` into
whatever shadow structure they maintain.
"""

from __future__ import annotations

import abc
from typing import Iterator, List, Tuple

from repro.common.errors import ConfigurationError

Evicted = List[Tuple[object, float]]


class EvictionPolicy(abc.ABC):
    """Abstract base class for all eviction policies."""

    kind: str = "abstract"

    def __init__(self, capacity: float, name: str = "") -> None:
        if capacity < 0:
            raise ConfigurationError(
                f"policy capacity must be >= 0, got {capacity}"
            )
        self._capacity = float(capacity)
        self.name = name

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def capacity(self) -> float:
        return self._capacity

    @property
    @abc.abstractmethod
    def used(self) -> float:
        """Bytes currently occupied by resident keys."""

    @abc.abstractmethod
    def __len__(self) -> int:
        """Number of resident keys."""

    @abc.abstractmethod
    def __contains__(self, key: object) -> bool:
        """True iff ``key`` is physically resident."""

    @abc.abstractmethod
    def keys(self) -> Iterator[object]:
        """Iterate resident keys (order is policy-specific)."""

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------

    @abc.abstractmethod
    def access(self, key: object) -> bool:
        """A GET for ``key``: returns True on hit (and applies whatever
        promotion the policy performs), False on miss."""

    @abc.abstractmethod
    def insert(self, key: object, weight: float) -> Evicted:
        """Store ``key`` with ``weight`` bytes, evicting as needed.

        Returns the evicted ``(key, weight)`` pairs, oldest-victim first.
        Inserting a key that is already resident updates its weight and
        counts as a fresh insertion (the SET path), not as a hit.
        """

    @abc.abstractmethod
    def remove(self, key: object) -> bool:
        """Delete ``key``; True if it was resident."""

    @abc.abstractmethod
    def resize(self, capacity: float) -> Evicted:
        """Change the byte capacity, evicting overflow if shrinking."""

    # ------------------------------------------------------------------
    # Shared helpers
    # ------------------------------------------------------------------

    def _set_capacity(self, capacity: float) -> None:
        if capacity < 0:
            raise ConfigurationError(
                f"policy capacity must be >= 0, got {capacity}"
            )
        self._capacity = float(capacity)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"{type(self).__name__}(name={self.name!r}, "
            f"capacity={self.capacity:.0f}, used={self.used:.0f}, "
            f"items={len(self)})"
        )
