"""Least-recently-used eviction, Memcached's default policy."""

from __future__ import annotations

from typing import Iterator

from repro.cache.keyqueue import KeyQueue
from repro.cache.policies.base import Evicted, EvictionPolicy


class LRUPolicy(EvictionPolicy):
    """Classic LRU over a single :class:`KeyQueue`.

    Hits promote to the front; insertion is at the front; eviction is from
    the back. This is the policy the paper's analysis, hill climbing and
    cliff scaling assume by default.
    """

    kind = "lru"

    def __init__(self, capacity: float, name: str = "") -> None:
        super().__init__(capacity, name)
        self._queue = KeyQueue(capacity, name=f"{name}/lru")

    @property
    def used(self) -> float:
        return self._queue.used

    def __len__(self) -> int:
        return len(self._queue)

    def __contains__(self, key: object) -> bool:
        return key in self._queue

    def keys(self) -> Iterator[object]:
        return self._queue.keys_mru_to_lru()

    def access(self, key: object) -> bool:
        if key not in self._queue:
            return False
        weight = self._queue.weight_of(key)
        self._queue.push_front(key, weight)
        return True

    def insert(self, key: object, weight: float) -> Evicted:
        self._queue.push_front(key, weight)
        return list(self._queue.overflow())

    def remove(self, key: object) -> bool:
        if key not in self._queue:
            return False
        self._queue.remove(key)
        return True

    def resize(self, capacity: float) -> Evicted:
        self._set_capacity(capacity)
        self._queue.resize(capacity)
        return list(self._queue.overflow())
