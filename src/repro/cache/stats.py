"""Hit/miss accounting and time-series recording.

The *fast* replay path reports each request's outcome as a packed integer
code (see :func:`pack_outcome`) so the hot loop never allocates;
:class:`AccessOutcome` remains as the object API for observers, tests and
one-off calls. Experiment harnesses aggregate outcomes in
:class:`HitMissCounter` objects keyed by (application, slab class).
:class:`TimelineRecorder` samples arbitrary scalar series over (simulated)
time -- it produces Figure 8 (memory per slab over time) and Figure 9 (hit
rate over time).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

# ---------------------------------------------------------------------------
# Integer op and outcome codes (the allocation-free replay protocol)
# ---------------------------------------------------------------------------

#: Operation codes, aligned with ``repro.workloads.trace.OPS`` order.
OP_GET = 0
OP_SET = 1
OP_DELETE = 2
OP_CODES: Dict[str, int] = {"get": OP_GET, "set": OP_SET, "delete": OP_DELETE}
OP_NAMES: Tuple[str, ...] = ("get", "set", "delete")

#: Outcome codes pack (hit, shadow_hit, slab_class, dead, evicted) into
#: one int: bit 0 = hit, bit 1 = shadow hit, bits 2-8 = slab class + 1
#: (0 means "no slab class"), bit 9 = dead shard (the request targeted a
#: crashed shard and was never served -- the cluster fault layer's
#: ``miss-through`` policy), bits 10+ = eviction count.
OUTCOME_HIT = 1
OUTCOME_SHADOW_HIT = 2
CLASS_SHIFT = 2
CLASS_MASK = 0x7F
OUTCOME_DEAD = 1 << 9
EVICTED_SHIFT = 10


def pack_outcome(
    hit: bool,
    slab_class: Optional[int] = None,
    shadow_hit: bool = False,
    evicted: int = 0,
    dead: bool = False,
) -> int:
    """Pack an outcome into the integer code the fast path uses."""
    code = (evicted << EVICTED_SHIFT) | (
        ((slab_class + 1) if slab_class is not None else 0) << CLASS_SHIFT
    )
    if hit:
        code |= OUTCOME_HIT
    if shadow_hit:
        code |= OUTCOME_SHADOW_HIT
    if dead:
        code |= OUTCOME_DEAD
    return code


def unpack_slab_class(code: int) -> Optional[int]:
    """Slab class encoded in ``code`` (None when absent)."""
    packed = (code >> CLASS_SHIFT) & CLASS_MASK
    return packed - 1 if packed else None


@dataclass(frozen=True)
class AccessOutcome:
    """The result of processing one request.

    Attributes:
        hit: True if the request was served from physical cache memory.
        shadow_hit: True if the request missed physically but its key was
            found in a shadow extension (used by the allocators; always
            False when shadow queues are disabled).
        slab_class: Slab class the request mapped to (None for engines
            without slab classes, e.g. the global-LRU mode).
        app: Application identifier.
        op: The operation that produced this outcome ("get" or "set").
        evicted: Number of items evicted from physical memory as a direct
            consequence of this request.
        dead: True when the request was addressed to a crashed shard and
            never reached an engine (cluster fault injection under the
            ``miss-through`` policy); GETs still count as misses.
    """

    hit: bool
    app: str
    op: str
    slab_class: Optional[int] = None
    shadow_hit: bool = False
    evicted: int = 0
    dead: bool = False


class HitMissCounter:
    """Counts GET hits/misses and SETs; computes hit rates.

    The paper reports hit rate over GET requests only; SETs are tracked
    separately for the throughput experiments (Table 7).
    """

    __slots__ = (
        "get_hits", "get_misses", "sets", "shadow_hits", "evictions",
        "dead_requests",
    )

    def __init__(self) -> None:
        self.get_hits = 0
        self.get_misses = 0
        self.sets = 0
        self.shadow_hits = 0
        self.evictions = 0
        self.dead_requests = 0

    # ------------------------------------------------------------------

    def record(self, outcome: AccessOutcome) -> None:
        if outcome.op == "get":
            if outcome.hit:
                self.get_hits += 1
            else:
                self.get_misses += 1
        elif outcome.op == "set":
            self.sets += 1
        if outcome.shadow_hit:
            self.shadow_hits += 1
        if outcome.dead:
            self.dead_requests += 1
        self.evictions += outcome.evicted

    def record_code(self, op: int, code: int) -> None:
        """Record a packed outcome code (allocation-free replay path)."""
        if op == OP_GET:
            if code & OUTCOME_HIT:
                self.get_hits += 1
            else:
                self.get_misses += 1
        elif op == OP_SET:
            self.sets += 1
        if code & OUTCOME_SHADOW_HIT:
            self.shadow_hits += 1
        if code & OUTCOME_DEAD:
            self.dead_requests += 1
        self.evictions += code >> EVICTED_SHIFT

    def merge(self, other: "HitMissCounter") -> None:
        self.get_hits += other.get_hits
        self.get_misses += other.get_misses
        self.sets += other.sets
        self.shadow_hits += other.shadow_hits
        self.evictions += other.evictions
        self.dead_requests += other.dead_requests

    # ------------------------------------------------------------------

    @property
    def gets(self) -> int:
        return self.get_hits + self.get_misses

    @property
    def misses(self) -> int:
        return self.get_misses

    def hit_rate(self) -> float:
        """GET hit rate in [0, 1]; 0.0 when no GETs were observed."""
        total = self.gets
        return self.get_hits / total if total else 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"HitMissCounter(gets={self.gets}, hits={self.get_hits}, "
            f"hit_rate={self.hit_rate():.4f})"
        )


class StatsRegistry:
    """Aggregates outcomes by application and by (application, slab class)."""

    def __init__(self) -> None:
        self.total = HitMissCounter()
        self.by_app: Dict[str, HitMissCounter] = {}
        self.by_app_class: Dict[Tuple[str, Optional[int]], HitMissCounter] = {}
        # (app, slab_class) -> (total, app, class) counter triple; resolved
        # once so the per-request fast path is a dict hit plus int adds.
        self._triples: Dict[
            Tuple[str, Optional[int]], Tuple[HitMissCounter, ...]
        ] = {}

    def record(self, outcome: AccessOutcome) -> None:
        self.total.record(outcome)
        app_counter = self.by_app.get(outcome.app)
        if app_counter is None:
            app_counter = self.by_app.setdefault(outcome.app, HitMissCounter())
        app_counter.record(outcome)
        key = (outcome.app, outcome.slab_class)
        class_counter = self.by_app_class.get(key)
        if class_counter is None:
            class_counter = self.by_app_class.setdefault(key, HitMissCounter())
        class_counter.record(outcome)

    def record_code(self, app: str, op: int, code: int) -> None:
        """Record a packed outcome code for ``app`` (fast replay path)."""
        slab = (code >> CLASS_SHIFT) & CLASS_MASK
        key = (app, slab - 1 if slab else None)
        triple = self._triples.get(key)
        if triple is None:
            triple = self._make_triple(key)
        evicted = code >> EVICTED_SHIFT
        if op == OP_GET:
            if code & OUTCOME_HIT:
                for counter in triple:
                    counter.get_hits += 1
            else:
                for counter in triple:
                    counter.get_misses += 1
        elif op == OP_SET:
            for counter in triple:
                counter.sets += 1
        if code & OUTCOME_SHADOW_HIT:
            for counter in triple:
                counter.shadow_hits += 1
        if code & OUTCOME_DEAD:
            for counter in triple:
                counter.dead_requests += 1
        if evicted:
            for counter in triple:
                counter.evictions += evicted

    def record_code_bulk(self, app: str, op: int, code: int, count: int) -> None:
        """:meth:`record_code` applied ``count`` times in one call.

        The partitioned cluster replay tallies identical ``(op, code)``
        outcomes per run and flushes them here; every counter update is
        an integer addition, so the batched result is bit-identical to
        ``count`` sequential calls. The bit decode below deliberately
        mirrors :meth:`record_code` rather than delegating (that method
        is the single-server per-request hot path); when outcome bits
        change, change both -- ``tests/cache/test_stats.py`` pins their
        equivalence across every flag combination.
        """
        slab = (code >> CLASS_SHIFT) & CLASS_MASK
        key = (app, slab - 1 if slab else None)
        triple = self._triples.get(key)
        if triple is None:
            triple = self._make_triple(key)
        evicted = (code >> EVICTED_SHIFT) * count
        if op == OP_GET:
            if code & OUTCOME_HIT:
                for counter in triple:
                    counter.get_hits += count
            else:
                for counter in triple:
                    counter.get_misses += count
        elif op == OP_SET:
            for counter in triple:
                counter.sets += count
        if code & OUTCOME_SHADOW_HIT:
            for counter in triple:
                counter.shadow_hits += count
        if code & OUTCOME_DEAD:
            for counter in triple:
                counter.dead_requests += count
        if evicted:
            for counter in triple:
                counter.evictions += evicted

    def _make_triple(
        self, key: Tuple[str, Optional[int]]
    ) -> Tuple["HitMissCounter", "HitMissCounter", "HitMissCounter"]:
        app = key[0]
        app_counter = self.by_app.get(app)
        if app_counter is None:
            app_counter = self.by_app.setdefault(app, HitMissCounter())
        class_counter = self.by_app_class.get(key)
        if class_counter is None:
            class_counter = self.by_app_class.setdefault(key, HitMissCounter())
        triple = (self.total, app_counter, class_counter)
        self._triples[key] = triple
        return triple

    def app_hit_rate(self, app: str) -> float:
        counter = self.by_app.get(app)
        return counter.hit_rate() if counter else 0.0

    def class_counters_for(self, app: str) -> Dict[Optional[int], HitMissCounter]:
        return {
            slab: counter
            for (owner, slab), counter in self.by_app_class.items()
            if owner == app
        }


@dataclass
class OpCounter:
    """Counts the primitive data-structure operations an engine performs.

    The micro-benchmark cost model (Tables 6-7) converts these counts into
    latency and throughput overheads. Counting is unconditional and cheap
    (integer adds); engines without shadow queues simply leave the shadow
    counters at zero.
    """

    hash_lookups: int = 0
    promotes: int = 0
    inserts: int = 0
    evictions: int = 0
    shadow_lookups: int = 0
    shadow_inserts: int = 0
    shadow_evictions: int = 0
    routes: int = 0

    def merge(self, other: "OpCounter") -> None:
        self.hash_lookups += other.hash_lookups
        self.promotes += other.promotes
        self.inserts += other.inserts
        self.evictions += other.evictions
        self.shadow_lookups += other.shadow_lookups
        self.shadow_inserts += other.shadow_inserts
        self.shadow_evictions += other.shadow_evictions
        self.routes += other.routes

    def total(self) -> int:
        return (
            self.hash_lookups
            + self.promotes
            + self.inserts
            + self.evictions
            + self.shadow_lookups
            + self.shadow_inserts
            + self.shadow_evictions
            + self.routes
        )


@dataclass
class TimelineRecorder:
    """Samples named scalar series at a fixed (simulated-time) interval.

    ``interval`` is in the same unit as request timestamps (seconds in the
    synthetic traces). Calling :meth:`maybe_sample` on every request is
    cheap: it only materializes a sample when the interval has elapsed.
    """

    interval: float
    times: List[float] = field(default_factory=list)
    series: Dict[str, List[float]] = field(default_factory=dict)
    _next_sample: Optional[float] = None

    def maybe_sample(self, now: float, values: Dict[str, float]) -> bool:
        """Record ``values`` if ``now`` crossed the next sampling point.

        Returns True when a sample was taken. Series seen for the first
        time are back-filled with zeros to stay aligned with ``times``.
        """
        if self._next_sample is None:
            self._next_sample = now
        if now < self._next_sample:
            return False
        self.times.append(now)
        for name in self.series:
            if name not in values:
                self.series[name].append(
                    self.series[name][-1] if self.series[name] else 0.0
                )
        for name, value in values.items():
            column = self.series.setdefault(
                name, [0.0] * (len(self.times) - 1)
            )
            column.append(float(value))
        while self._next_sample <= now:
            self._next_sample += self.interval
        return True

    def as_rows(self) -> List[Tuple[float, Dict[str, float]]]:
        """Return ``(time, {series: value})`` rows for rendering."""
        rows = []
        for i, t in enumerate(self.times):
            rows.append(
                (t, {name: column[i] for name, column in self.series.items()})
            )
        return rows

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe payload (what reports embed and results serialize)."""
        return {
            "interval": self.interval,
            "times": list(self.times),
            "series": {
                name: list(column) for name, column in self.series.items()
            },
        }
