"""Memory-management engines.

An engine owns one application's reservation on one cache server and
decides how those bytes are divided among eviction queues. The paper's
baselines live here:

* :class:`FirstComeFirstServeEngine` -- stock Memcached behaviour: slab
  classes grab memory greedily as requests arrive; once the reservation is
  full each class evicts from its own LRU queue (paper section 2).
* :class:`PlannedEngine` -- a static per-class plan, used to apply the
  Dynacache solver's allocation (paper section 2.1 / Figure 2) or any
  other allocator's output.

The Cliffhanger engines (hill climbing, cliff scaling, combined) extend
the same interface from :mod:`repro.core.engine`; the log-structured
global-LRU engine is in :mod:`repro.cache.log_structured`.
"""

from __future__ import annotations

import abc
from typing import Dict, List, Optional, Tuple

from repro.common.errors import CacheError, ConfigurationError
from repro.cache.policies import EvictionPolicy, make_policy
from repro.cache.slabs import SlabGeometry
from repro.cache.stats import AccessOutcome, OpCounter
from repro.workloads.trace import Request


class Engine(abc.ABC):
    """Base class: one tenant's memory manager.

    Subclasses must implement :meth:`process`, returning an
    :class:`AccessOutcome` per request, and expose per-class capacities for
    the timeline experiments. Budgets are bytes.
    """

    def __init__(
        self,
        app: str,
        budget_bytes: float,
        geometry: SlabGeometry,
        fill_on_miss: bool = True,
    ) -> None:
        if budget_bytes <= 0:
            raise ConfigurationError(
                f"budget must be positive, got {budget_bytes}"
            )
        self.app = app
        self.budget_bytes = float(budget_bytes)
        self.geometry = geometry
        #: Whether a GET miss inserts the object (trace-replay
        #: convention). The micro-benchmarks disable it so GET and SET
        #: costs are attributable separately, like the paper's protocol.
        self.fill_on_miss = fill_on_miss
        self.ops = OpCounter()

    # ------------------------------------------------------------------

    @abc.abstractmethod
    def process(self, request: Request) -> AccessOutcome:
        """Apply one request and report its outcome."""

    @abc.abstractmethod
    def capacities(self) -> Dict[int, float]:
        """Current byte capacity per slab class (diagnostic/timelines)."""

    @abc.abstractmethod
    def used_bytes(self) -> float:
        """Bytes of the reservation currently holding items."""

    # ------------------------------------------------------------------
    # Cross-application rebalancing hooks (used by cross-app allocators).
    # ------------------------------------------------------------------

    def grow_budget(self, delta_bytes: float) -> None:
        """Give the engine more memory."""
        if delta_bytes < 0:
            raise ConfigurationError("grow_budget needs a positive delta")
        self.budget_bytes += delta_bytes

    def shrink_budget(self, delta_bytes: float) -> int:
        """Take memory away; returns the number of items evicted."""
        if delta_bytes < 0:
            raise ConfigurationError("shrink_budget needs a positive delta")
        self.budget_bytes = max(0.0, self.budget_bytes - delta_bytes)
        return self._enforce_budget()

    def _enforce_budget(self) -> int:
        """Subclasses shrink internal queues until within budget; returns
        evicted item count. Default: nothing to do."""
        return 0

    # ------------------------------------------------------------------

    def _chunk_and_class(self, request: Request) -> Tuple[int, int]:
        """Map a request to (slab class, chunk size)."""
        from repro.cache.item import CacheItem

        item = CacheItem(
            key=request.key,
            value_size=request.value_size,
            key_size=request.key_size,
        )
        class_index = self.geometry.class_for_size(item.total_size)
        return class_index, self.geometry.chunk_size(class_index)


class SlabEngineBase(Engine):
    """Shared plumbing for engines that keep one policy queue per slab
    class: lazily-created queues, key→class tracking (items can change
    class when re-SET with a different size), and GET/SET/DELETE routing.
    """

    def __init__(
        self,
        app: str,
        budget_bytes: float,
        geometry: SlabGeometry,
        policy: str = "lru",
        fill_on_miss: bool = True,
    ) -> None:
        super().__init__(app, budget_bytes, geometry, fill_on_miss)
        self.policy_kind = policy
        self.queues: Dict[int, EvictionPolicy] = {}
        self._class_of_key: Dict[str, int] = {}

    # -- queue management ------------------------------------------------

    def _queue(self, class_index: int) -> EvictionPolicy:
        queue = self.queues.get(class_index)
        if queue is None:
            queue = make_policy(
                self.policy_kind, 0.0, name=f"{self.app}/slab{class_index}"
            )
            self.queues[class_index] = queue
        return queue

    def capacities(self) -> Dict[int, float]:
        return {
            idx: queue.capacity for idx, queue in sorted(self.queues.items())
        }

    def used_bytes(self) -> float:
        return sum(queue.used for queue in self.queues.values())

    def _forget_evicted(self, evicted: List[Tuple[object, float]]) -> int:
        for key, _ in evicted:
            self._class_of_key.pop(key, None)
        self.ops.evictions += len(evicted)
        return len(evicted)

    # -- request handling --------------------------------------------------

    def process(self, request: Request) -> AccessOutcome:
        class_index, chunk = self._chunk_and_class(request)
        if request.op == "delete":
            return self._delete(request, class_index)
        if request.op == "set":
            evicted = self._store(request, class_index, chunk)
            return AccessOutcome(
                hit=False,
                app=self.app,
                op="set",
                slab_class=class_index,
                evicted=evicted,
            )
        # GET path.
        self.ops.hash_lookups += 1
        resident_class = self._class_of_key.get(request.key)
        if resident_class is not None and self._queue(resident_class).access(
            request.key
        ):
            self.ops.promotes += 1
            return AccessOutcome(
                hit=True, app=self.app, op="get", slab_class=resident_class
            )
        evicted = (
            self._store(request, class_index, chunk)
            if self.fill_on_miss
            else 0
        )
        return AccessOutcome(
            hit=False,
            app=self.app,
            op="get",
            slab_class=class_index,
            evicted=evicted,
        )

    def _delete(self, request: Request, class_index: int) -> AccessOutcome:
        self.ops.hash_lookups += 1
        resident_class = self._class_of_key.pop(request.key, None)
        if resident_class is not None:
            self._queue(resident_class).remove(request.key)
        return AccessOutcome(
            hit=resident_class is not None,
            app=self.app,
            op="delete",
            slab_class=class_index,
        )

    def _store(self, request: Request, class_index: int, chunk: int) -> int:
        """Insert the item, handling class migration. Returns evictions."""
        old_class = self._class_of_key.get(request.key)
        if old_class is not None and old_class != class_index:
            self._queue(old_class).remove(request.key)
            del self._class_of_key[request.key]
        evicted = self._insert(request, class_index, chunk)
        self._class_of_key[request.key] = class_index
        self.ops.inserts += 1
        return evicted

    @abc.abstractmethod
    def _insert(self, request: Request, class_index: int, chunk: int) -> int:
        """Engine-specific insertion; returns number of evictions."""


class FirstComeFirstServeEngine(SlabEngineBase):
    """Stock Memcached: greedy slab growth, per-class LRU eviction.

    Until the reservation fills up, a class needing room is simply granted
    another chunk. Once memory is exhausted, insertions evict from the
    *item's own class*. A class that owns no memory at that point steals
    one chunk from the class with the most capacity -- stock Memcached
    would fail the store instead; the steal (mirroring the slab-rebalance
    patches Twitter/Facebook deploy, paper section 2) keeps week-long
    replays from wedging while preserving the first-come-first-serve
    pathology the paper analyzes: memory goes to whoever filled it first,
    not to whoever benefits.
    """

    def _insert(self, request: Request, class_index: int, chunk: int) -> int:
        queue = self._queue(class_index)
        total_capacity = sum(q.capacity for q in self.queues.values())
        if queue.used + chunk > queue.capacity:
            if total_capacity + chunk <= self.budget_bytes:
                queue.resize(queue.capacity + chunk)
            elif queue.capacity < chunk:
                self._steal_chunk_for(class_index, chunk)
        evicted = queue.insert(request.key, chunk)
        return self._forget_evicted(evicted)

    def _steal_chunk_for(self, class_index: int, chunk: int) -> None:
        donors = [
            (queue.capacity, idx)
            for idx, queue in self.queues.items()
            if idx != class_index and queue.capacity >= chunk
        ]
        if not donors:
            return
        _, donor_idx = max(donors)
        donor = self.queues[donor_idx]
        self._forget_evicted(donor.resize(donor.capacity - chunk))
        grown = self.queues[class_index]
        grown.resize(grown.capacity + chunk)

    def _enforce_budget(self) -> int:
        evicted_total = 0
        while (
            sum(q.capacity for q in self.queues.values()) > self.budget_bytes
        ):
            donors = [
                (queue.capacity, idx)
                for idx, queue in self.queues.items()
                if queue.capacity > 0
            ]
            if not donors:
                break
            capacity, idx = max(donors)
            queue = self.queues[idx]
            chunk = self.geometry.chunk_size(idx)
            shrink = min(chunk, capacity)
            evicted_total += self._forget_evicted(
                queue.resize(capacity - shrink)
            )
        return evicted_total


class PlannedEngine(SlabEngineBase):
    """A fixed per-class allocation, e.g. the Dynacache solver's plan.

    ``plan`` maps slab class index to byte capacity; classes absent from
    the plan get zero bytes and act as pass-through (every GET misses,
    nothing is stored), matching how a solver starves queues it considers
    worthless.
    """

    def __init__(
        self,
        app: str,
        budget_bytes: float,
        geometry: SlabGeometry,
        plan: Dict[int, float],
        policy: str = "lru",
        fill_on_miss: bool = True,
    ) -> None:
        super().__init__(
            app, budget_bytes, geometry, policy=policy,
            fill_on_miss=fill_on_miss,
        )
        total = sum(plan.values())
        if total - budget_bytes > 1e-6:
            raise ConfigurationError(
                f"plan allocates {total}B > budget {budget_bytes}B"
            )
        self.plan = dict(plan)
        for class_index, capacity in plan.items():
            if capacity < 0:
                raise ConfigurationError(
                    f"negative capacity for class {class_index}"
                )
            self._queue(class_index).resize(capacity)

    def _insert(self, request: Request, class_index: int, chunk: int) -> int:
        queue = self._queue(class_index)
        if queue.capacity < chunk:
            return 0  # class starved by the plan: bypass the cache
        evicted = queue.insert(request.key, chunk)
        return self._forget_evicted(evicted)

    def _enforce_budget(self) -> int:
        # Static plans shrink proportionally when the budget shrinks.
        total = sum(q.capacity for q in self.queues.values())
        if total <= self.budget_bytes or total == 0:
            return 0
        scale = self.budget_bytes / total
        evicted = 0
        for queue in self.queues.values():
            evicted += self._forget_evicted(
                queue.resize(queue.capacity * scale)
            )
        return evicted
