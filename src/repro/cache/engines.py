"""Memory-management engines.

An engine owns one application's reservation on one cache server and
decides how those bytes are divided among eviction queues. The paper's
baselines live here:

* :class:`FirstComeFirstServeEngine` -- stock Memcached behaviour: slab
  classes grab memory greedily as requests arrive; once the reservation is
  full each class evicts from its own LRU queue (paper section 2).
* :class:`PlannedEngine` -- a static per-class plan, used to apply the
  Dynacache solver's allocation (paper section 2.1 / Figure 2) or any
  other allocator's output.

The Cliffhanger engines (hill climbing, cliff scaling, combined) extend
the same interface from :mod:`repro.core.engine`; the log-structured
global-LRU engine is in :mod:`repro.cache.log_structured`.
"""

from __future__ import annotations

import abc
from typing import Dict, List, Optional, Tuple

from repro.common.errors import ConfigurationError
from repro.cache.policies import EvictionPolicy, make_policy
from repro.cache.slabs import SlabGeometry
from repro.cache.stats import (
    CLASS_SHIFT,
    EVICTED_SHIFT,
    OP_CODES,
    OP_GET,
    OP_SET,
    OUTCOME_HIT,
    OUTCOME_SHADOW_HIT,
    AccessOutcome,
    OpCounter,
    unpack_slab_class,
)
from repro.workloads.trace import Request


class Engine(abc.ABC):
    """Base class: one tenant's memory manager.

    Subclasses implement :meth:`process_fast` -- the allocation-free hot
    path taking pre-classified integer arguments and returning a packed
    outcome code -- and expose per-class capacities for the timeline
    experiments. :meth:`process` wraps the fast path in the
    :class:`Request`/:class:`AccessOutcome` object API. Budgets are bytes.
    """

    def __init__(
        self,
        app: str,
        budget_bytes: float,
        geometry: SlabGeometry,
        fill_on_miss: bool = True,
    ) -> None:
        if budget_bytes <= 0:
            raise ConfigurationError(
                f"budget must be positive, got {budget_bytes}"
            )
        self.app = app
        self.budget_bytes = float(budget_bytes)
        self.geometry = geometry
        #: Whether a GET miss inserts the object (trace-replay
        #: convention). The micro-benchmarks disable it so GET and SET
        #: costs are attributable separately, like the paper's protocol.
        self.fill_on_miss = fill_on_miss
        self.ops = OpCounter()

    # ------------------------------------------------------------------

    def process(self, request: Request) -> AccessOutcome:
        """Apply one request and report its outcome (object API)."""
        class_index, chunk = self._chunk_and_class(request)
        code = self.process_fast(
            request.key,
            OP_CODES[request.op],
            class_index,
            chunk,
            request.key_size + request.value_size,
        )
        return AccessOutcome(
            hit=bool(code & OUTCOME_HIT),
            app=self.app,
            op=request.op,
            slab_class=unpack_slab_class(code),
            shadow_hit=bool(code & OUTCOME_SHADOW_HIT),
            evicted=code >> EVICTED_SHIFT,
        )

    @abc.abstractmethod
    def process_fast(
        self, key: object, op: int, class_index: int, chunk: int,
        item_bytes: int,
    ) -> int:
        """Apply one pre-classified request; return a packed outcome code.

        ``op`` is an integer op code (:data:`repro.cache.stats.OP_GET`
        etc.), ``class_index``/``chunk`` the precomputed slab class and
        chunk size, ``item_bytes`` the key+value byte size (used by
        engines without chunk rounding). The return value packs hit /
        shadow-hit flags, the slab class charged for statistics and the
        eviction count (see :func:`repro.cache.stats.pack_outcome`).
        """

    @abc.abstractmethod
    def capacities(self) -> Dict[int, float]:
        """Current byte capacity per slab class (diagnostic/timelines)."""

    @abc.abstractmethod
    def used_bytes(self) -> float:
        """Bytes of the reservation currently holding items."""

    # ------------------------------------------------------------------
    # Cross-application rebalancing hooks (used by cross-app allocators).
    # ------------------------------------------------------------------

    def grow_budget(self, delta_bytes: float) -> None:
        """Give the engine more memory."""
        if delta_bytes < 0:
            raise ConfigurationError("grow_budget needs a positive delta")
        self.budget_bytes += delta_bytes

    def shrink_budget(self, delta_bytes: float) -> int:
        """Take memory away; returns the number of items evicted."""
        if delta_bytes < 0:
            raise ConfigurationError("shrink_budget needs a positive delta")
        self.budget_bytes = max(0.0, self.budget_bytes - delta_bytes)
        return self._enforce_budget()

    def _enforce_budget(self) -> int:
        """Subclasses shrink internal queues until within budget; returns
        evicted item count. Default: nothing to do."""
        return 0

    # ------------------------------------------------------------------

    def _chunk_and_class(self, request: Request) -> Tuple[int, int]:
        """Map a request to (slab class, chunk size)."""
        from repro.cache.item import CacheItem

        item = CacheItem(
            key=request.key,
            value_size=request.value_size,
            key_size=request.key_size,
        )
        class_index = self.geometry.class_for_size(item.total_size)
        return class_index, self.geometry.chunk_size(class_index)


class SlabEngineBase(Engine):
    """Shared plumbing for engines that keep one policy queue per slab
    class: lazily-created queues, key→class tracking (items can change
    class when re-SET with a different size), and GET/SET/DELETE routing.
    """

    def __init__(
        self,
        app: str,
        budget_bytes: float,
        geometry: SlabGeometry,
        policy: str = "lru",
        fill_on_miss: bool = True,
    ) -> None:
        super().__init__(app, budget_bytes, geometry, fill_on_miss)
        self.policy_kind = policy
        self.queues: Dict[int, EvictionPolicy] = {}
        self._class_of_key: Dict[str, int] = {}
        #: Incrementally tracked sum of queue capacities -- every queue
        #: resize must go through :meth:`_resize_queue` so the insert hot
        #: path never re-scans the queues.
        self._capacity_total = 0.0

    # -- queue management ------------------------------------------------

    def _queue(self, class_index: int) -> EvictionPolicy:
        queue = self.queues.get(class_index)
        if queue is None:
            queue = make_policy(
                self.policy_kind, 0.0, name=f"{self.app}/slab{class_index}"
            )
            self.queues[class_index] = queue
        return queue

    def _resize_queue(
        self, queue: EvictionPolicy, capacity: float
    ) -> List[Tuple[object, float]]:
        """Resize ``queue`` keeping the tracked capacity total in sync."""
        self._capacity_total += float(capacity) - queue.capacity
        return queue.resize(capacity)

    def capacities(self) -> Dict[int, float]:
        return {
            idx: queue.capacity for idx, queue in sorted(self.queues.items())
        }

    def used_bytes(self) -> float:
        return sum(queue.used for queue in self.queues.values())

    def _forget_evicted(self, evicted: List[Tuple[object, float]]) -> int:
        for key, _ in evicted:
            self._class_of_key.pop(key, None)
        self.ops.evictions += len(evicted)
        return len(evicted)

    # -- request handling --------------------------------------------------

    def process_fast(
        self, key: object, op: int, class_index: int, chunk: int,
        item_bytes: int,
    ) -> int:
        if op == OP_GET:
            self.ops.hash_lookups += 1
            resident_class = self._class_of_key.get(key)
            if resident_class is not None and self._queue(
                resident_class
            ).access(key):
                self.ops.promotes += 1
                return ((resident_class + 1) << CLASS_SHIFT) | OUTCOME_HIT
            evicted = (
                self._store(key, class_index, chunk)
                if self.fill_on_miss
                else 0
            )
            return (evicted << EVICTED_SHIFT) | (
                (class_index + 1) << CLASS_SHIFT
            )
        if op == OP_SET:
            evicted = self._store(key, class_index, chunk)
            return (evicted << EVICTED_SHIFT) | (
                (class_index + 1) << CLASS_SHIFT
            )
        # DELETE path.
        self.ops.hash_lookups += 1
        resident_class = self._class_of_key.pop(key, None)
        if resident_class is not None:
            self._queue(resident_class).remove(key)
        code = (class_index + 1) << CLASS_SHIFT
        return code | OUTCOME_HIT if resident_class is not None else code

    def _store(self, key: object, class_index: int, chunk: int) -> int:
        """Insert the item, handling class migration. Returns evictions."""
        old_class = self._class_of_key.get(key)
        if old_class is not None and old_class != class_index:
            self._queue(old_class).remove(key)
            del self._class_of_key[key]
        evicted = self._insert(key, class_index, chunk)
        if evicted is None:
            # The engine bypassed the store (no queue can ever hold this
            # item): the key is not resident and must not be recorded as
            # such, or later GETs/DELETEs would see a ghost entry.
            return 0
        self._class_of_key[key] = class_index
        self.ops.inserts += 1
        return evicted

    @abc.abstractmethod
    def _insert(self, key: object, class_index: int, chunk: int) -> Optional[int]:
        """Engine-specific insertion; returns the number of evictions, or
        ``None`` when the store was bypassed (the item is *not* resident)."""


class FirstComeFirstServeEngine(SlabEngineBase):
    """Stock Memcached: greedy slab growth, per-class LRU eviction.

    Until the reservation fills up, a class needing room is simply granted
    another chunk. Once memory is exhausted, insertions evict from the
    *item's own class*. A class that owns no memory at that point steals
    one chunk from the class with the most capacity -- stock Memcached
    would fail the store instead; the steal (mirroring the slab-rebalance
    patches Twitter/Facebook deploy, paper section 2) keeps week-long
    replays from wedging while preserving the first-come-first-serve
    pathology the paper analyzes: memory goes to whoever filled it first,
    not to whoever benefits.
    """

    def _insert(self, key: object, class_index: int, chunk: int) -> Optional[int]:
        queue = self._queue(class_index)
        if queue.used + chunk > queue.capacity:
            if self._capacity_total + chunk <= self.budget_bytes:
                self._resize_queue(queue, queue.capacity + chunk)
            elif queue.capacity < chunk:
                self._steal_chunk_for(class_index, chunk)
                if queue.capacity < chunk:
                    # No donor owns a whole chunk of this size: the queue
                    # can never fit the item, so bypass the store (like a
                    # starved PlannedEngine class) instead of inserting an
                    # entry the overflow drain would immediately evict.
                    return None
        evicted = queue.insert(key, chunk)
        return self._forget_evicted(evicted)

    def _steal_chunk_for(self, class_index: int, chunk: int) -> None:
        donors = [
            (queue.capacity, idx)
            for idx, queue in self.queues.items()
            if idx != class_index and queue.capacity >= chunk
        ]
        if not donors:
            return
        _, donor_idx = max(donors)
        donor = self.queues[donor_idx]
        self._forget_evicted(self._resize_queue(donor, donor.capacity - chunk))
        grown = self.queues[class_index]
        self._resize_queue(grown, grown.capacity + chunk)

    def _enforce_budget(self) -> int:
        # Cold path (budget shrinks): re-sync the tracked total so float
        # drift can never accumulate into the hot-path comparisons.
        self._capacity_total = sum(q.capacity for q in self.queues.values())
        evicted_total = 0
        while self._capacity_total > self.budget_bytes:
            donors = [
                (queue.capacity, idx)
                for idx, queue in self.queues.items()
                if queue.capacity > 0
            ]
            if not donors:
                break
            capacity, idx = max(donors)
            queue = self.queues[idx]
            chunk = self.geometry.chunk_size(idx)
            shrink = min(chunk, capacity)
            evicted_total += self._forget_evicted(
                self._resize_queue(queue, capacity - shrink)
            )
        return evicted_total


class PlannedEngine(SlabEngineBase):
    """A fixed per-class allocation, e.g. the Dynacache solver's plan.

    ``plan`` maps slab class index to byte capacity; classes absent from
    the plan get zero bytes and act as pass-through (every GET misses,
    nothing is stored), matching how a solver starves queues it considers
    worthless.
    """

    def __init__(
        self,
        app: str,
        budget_bytes: float,
        geometry: SlabGeometry,
        plan: Dict[int, float],
        policy: str = "lru",
        fill_on_miss: bool = True,
    ) -> None:
        super().__init__(
            app, budget_bytes, geometry, policy=policy,
            fill_on_miss=fill_on_miss,
        )
        total = sum(plan.values())
        if total - budget_bytes > 1e-6:
            raise ConfigurationError(
                f"plan allocates {total}B > budget {budget_bytes}B"
            )
        self.plan = dict(plan)
        for class_index, capacity in plan.items():
            if capacity < 0:
                raise ConfigurationError(
                    f"negative capacity for class {class_index}"
                )
            self._resize_queue(self._queue(class_index), capacity)

    def _insert(self, key: object, class_index: int, chunk: int) -> Optional[int]:
        queue = self._queue(class_index)
        if queue.capacity < chunk:
            return None  # class starved by the plan: bypass the cache
        evicted = queue.insert(key, chunk)
        return self._forget_evicted(evicted)

    def _enforce_budget(self) -> int:
        # Static plans shrink proportionally when the budget shrinks.
        total = sum(q.capacity for q in self.queues.values())
        self._capacity_total = total
        if total <= self.budget_bytes or total == 0:
            return 0
        scale = self.budget_bytes / total
        evicted = 0
        for queue in self.queues.values():
            evicted += self._forget_evicted(
                self._resize_queue(queue, queue.capacity * scale)
            )
        return evicted
