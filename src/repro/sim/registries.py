"""Decorator-based registries for engine schemes and workloads.

The original harness dispatched on scheme names through an ``if/elif``
chain and hard-coded the Memcachier loader; these registries make both
axes pluggable::

    from repro.sim import register_scheme

    @register_scheme("my-scheme")
    def build(app, budget_bytes, *, geometry, scale, seed, policy, plan,
              **overrides):
        return MyEngine(app, budget_bytes, geometry)

Scheme builders receive ``(app, budget_bytes)`` positionally plus the
keyword context the runner supplies (``geometry``, ``scale``, ``seed``,
``policy``, ``plan`` and any per-scenario overrides) and return an
:class:`~repro.cache.engines.Engine`.

Workload builders receive ``(scale, seed)`` plus the scenario's
``workload_params`` and return a trace-like object exposing
``app_names``, ``reservations``, ``scale``, ``seed`` and a ``compiled``
:class:`~repro.workloads.compiled.CompiledTrace` (see
:mod:`repro.sim.workloads`).
"""

from __future__ import annotations

from typing import Callable, Dict, List, TypeVar

from repro.common.errors import ConfigurationError

Builder = TypeVar("Builder", bound=Callable)


class Registry:
    """A name -> factory mapping with decorator registration."""

    def __init__(self, kind: str) -> None:
        self.kind = kind
        self._entries: Dict[str, Callable] = {}

    def register(self, name: str) -> Callable[[Builder], Builder]:
        """Decorator: ``@registry.register("name")``."""
        if not name or not isinstance(name, str):
            raise ConfigurationError(
                f"{self.kind} name must be a non-empty string, got {name!r}"
            )

        def _register(builder: Builder) -> Builder:
            if name in self._entries:
                raise ConfigurationError(
                    f"{self.kind} {name!r} is already registered"
                )
            self._entries[name] = builder
            return builder

        return _register

    def get(self, name: str) -> Callable:
        try:
            return self._entries[name]
        except KeyError:
            raise ConfigurationError(
                f"unknown {self.kind} {name!r}; known: "
                f"{', '.join(sorted(self._entries))}"
            ) from None

    def names(self) -> List[str]:
        return sorted(self._entries)

    def __contains__(self, name: str) -> bool:
        return name in self._entries

    def __len__(self) -> int:
        return len(self._entries)


#: Engine scheme registry (``default``, ``cliffhanger``, ...).
SCHEMES = Registry("scheme")

#: Workload registry (``memcachier``, ``zipf``, ``facebook``).
WORKLOADS = Registry("workload")

register_scheme = SCHEMES.register
register_workload = WORKLOADS.register


def list_schemes() -> List[str]:
    return SCHEMES.names()


def list_workloads() -> List[str]:
    return WORKLOADS.names()
