"""Time-dynamic workloads, registered on :data:`repro.sim.WORKLOADS`.

Static traces keep per-app skew constant for the whole replay; these two
generators do not, which is what cluster scenarios need to exercise
load imbalance that consistent hashing cannot smooth away:

* ``zipf-phases`` -- N tenants whose Zipf alpha and working set change
  at configurable request offsets (``params`` per app: ``phases`` -- a
  list of ``{"at": fraction, "alpha": ..., "keys": ..., "offset": ...}``
  dicts -- plus the usual ``num_keys``, ``alpha``, ``value_size``,
  ``set_fraction``, ``requests_per_app``, ``budget_fraction``). The
  default phase list shifts the working set to a disjoint key universe
  halfway through the stream.
* ``flash-crowd`` -- a Zipf base stream overlaid with a flash crowd: a
  tiny hot key set absorbs ``crowd_fraction`` of the requests inside
  ``[crowd_start, crowd_start + crowd_duration)``. Extra per-app params:
  ``crowd_keys``, ``crowd_fraction``, ``crowd_start``,
  ``crowd_duration``, ``crowd_alpha``.

Both go through :data:`~repro.workloads.compiled.GLOBAL_TRACE_CACHE`
with parameter-digest keys, like the static workloads.
"""

from __future__ import annotations

from typing import Dict, List

from repro.common.errors import ConfigurationError
from repro.sim.registries import register_workload
from repro.sim.workloads import (
    SyntheticTrace,
    _normalize_apps,
    _params_tag,
    _zipf_reservation,
)
from repro.workloads.compiled import GLOBAL_TRACE_CACHE
from repro.workloads.generators import (
    FlashCrowdStream,
    PhasedZipfStream,
    RequestStream,
    ZipfPhase,
    ZipfStream,
)
from repro.workloads.sizes import FixedSize
from repro.workloads.trace import merge_by_time

from repro.sim.defaults import GEOMETRY

_PHASED_APP_DEFAULTS = {
    "num_keys": 40_000,
    "alpha": 1.0,
    "value_size": 256,
    "set_fraction": 0.0,
    "requests_per_app": 150_000,
    "budget_fraction": 0.25,
    "phases": None,
}

_PHASE_KEYS = {"at", "alpha", "keys", "offset"}


def _resolve_phases(
    phases, scale: float, default_alpha: float, default_keys: int
) -> List[ZipfPhase]:
    """Turn spec-level phase dicts into scaled :class:`ZipfPhase` objects.

    ``keys`` and ``offset`` are in unscaled key units and shrink under
    one common factor (floored so the smallest phase universe keeps >= 50
    keys), so a phase list that is disjoint at full scale stays disjoint
    at every scale: flooring both ends of each scaled range preserves
    ordering, and no per-phase clamp can push a universe past its
    neighbour's offset.
    """
    if phases is None:
        # Default: shift the working set to a disjoint universe halfway.
        phases = [
            {"at": 0.0},
            {"at": 0.5, "offset": default_keys},
        ]
    if not isinstance(phases, (list, tuple)) or not phases:
        raise ConfigurationError(
            f"phases must be a non-empty list of phase objects, "
            f"got {phases!r}"
        )
    parsed = []
    for spec in phases:
        if not isinstance(spec, dict):
            raise ConfigurationError(f"phase must be an object, got {spec!r}")
        unknown = set(spec) - _PHASE_KEYS
        if unknown:
            raise ConfigurationError(
                f"unknown phase fields: {', '.join(sorted(unknown))}"
            )
        if "at" not in spec:
            raise ConfigurationError(f"phase {spec!r} is missing 'at'")
        try:
            parsed.append(
                (
                    float(spec["at"]),
                    float(spec.get("alpha", default_alpha)),
                    int(spec.get("keys", default_keys)),
                    int(spec.get("offset", 0)),
                )
            )
        except (TypeError, ValueError) as exc:
            raise ConfigurationError(f"bad phase {spec!r}: {exc}") from None
    smallest = min(keys for _, _, keys, _ in parsed)
    if smallest < 1:
        raise ConfigurationError(
            f"phase key universes must be >= 1, got {smallest}"
        )
    effective_scale = max(scale, 50.0 / smallest)
    return [
        ZipfPhase(
            start_fraction=at,
            alpha=alpha,
            num_keys=max(1, int(keys * effective_scale)),
            key_offset=max(0, int(offset * effective_scale)),
        )
        for at, alpha, keys, offset in parsed
    ]


@register_workload("zipf-phases")
def _load_zipf_phases(
    scale: float, seed: int, apps=None, **defaults
) -> SyntheticTrace:
    """N tenants with phase-shifting Zipf popularity (see module docs)."""
    unknown = set(defaults) - set(_PHASED_APP_DEFAULTS)
    if unknown:
        raise ConfigurationError(
            f"unknown zipf-phases workload params: "
            f"{', '.join(sorted(unknown))}"
        )
    app_map = _normalize_apps(apps, "phased", default_count=2)
    streams: List[RequestStream] = []
    reservations: Dict[str, float] = {}
    counts: Dict[str, int] = {}
    for position, (name, overrides) in enumerate(app_map.items()):
        unknown = set(overrides) - set(_PHASED_APP_DEFAULTS)
        if unknown:
            raise ConfigurationError(
                f"unknown zipf-phases app params for {name!r}: "
                f"{', '.join(sorted(unknown))}"
            )
        params = dict(_PHASED_APP_DEFAULTS)
        params.update(defaults)
        params.update(overrides)
        phases = _resolve_phases(
            params["phases"], scale, params["alpha"], params["num_keys"]
        )
        requests = max(500, int(params["requests_per_app"] * scale))
        streams.append(
            PhasedZipfStream(
                app=name,
                phases=phases,
                size_model=FixedSize(params["value_size"]),
                set_fraction=params["set_fraction"],
                seed=seed + position * 1000,
            )
        )
        # Reserve against the largest phase universe so later phases are
        # not implicitly starved.
        reservations[name] = _zipf_reservation(
            max(phase.num_keys for phase in phases),
            params["value_size"],
            params["budget_fraction"],
        )
        counts[name] = requests
    key = (
        f"zipfphases-scale{scale!r}-seed{seed}-"
        f"{_params_tag({'apps': app_map, 'defaults': defaults})}"
    )
    compiled = GLOBAL_TRACE_CACHE.get_or_compile(
        key,
        lambda: merge_by_time(
            [
                stream.generate(counts[stream.app], 3600.0)
                for stream in streams
            ]
        ),
        GEOMETRY,
    )
    return SyntheticTrace(
        scale=scale,
        seed=seed,
        reservations=reservations,
        requests_per_app=counts,
        compiled=compiled,
    )


_FLASH_APP_DEFAULTS = {
    "num_keys": 40_000,
    "alpha": 1.0,
    "value_size": 256,
    "set_fraction": 0.0,
    "requests_per_app": 150_000,
    "budget_fraction": 0.25,
    "crowd_keys": 8,
    "crowd_fraction": 0.8,
    "crowd_start": 0.4,
    "crowd_duration": 0.2,
    "crowd_alpha": 1.2,
}


@register_workload("flash-crowd")
def _load_flash_crowd(
    scale: float, seed: int, apps=None, **defaults
) -> SyntheticTrace:
    """Zipf tenants with a time-local flash crowd (see module docs)."""
    unknown = set(defaults) - set(_FLASH_APP_DEFAULTS)
    if unknown:
        raise ConfigurationError(
            f"unknown flash-crowd workload params: "
            f"{', '.join(sorted(unknown))}"
        )
    app_map = _normalize_apps(apps, "flash", default_count=1)
    streams: List[RequestStream] = []
    reservations: Dict[str, float] = {}
    counts: Dict[str, int] = {}
    for position, (name, overrides) in enumerate(app_map.items()):
        unknown = set(overrides) - set(_FLASH_APP_DEFAULTS)
        if unknown:
            raise ConfigurationError(
                f"unknown flash-crowd app params for {name!r}: "
                f"{', '.join(sorted(unknown))}"
            )
        params = dict(_FLASH_APP_DEFAULTS)
        params.update(defaults)
        params.update(overrides)
        num_keys = max(50, int(params["num_keys"] * scale))
        requests = max(500, int(params["requests_per_app"] * scale))
        app_seed = seed + position * 1000
        size_model = FixedSize(params["value_size"])
        base = ZipfStream(
            app=name,
            num_keys=num_keys,
            alpha=params["alpha"],
            size_model=size_model,
            set_fraction=params["set_fraction"],
            seed=app_seed,
        )
        streams.append(
            FlashCrowdStream(
                app=name,
                base=base,
                size_model=size_model,
                crowd_keys=int(params["crowd_keys"]),
                crowd_fraction=float(params["crowd_fraction"]),
                crowd_start=float(params["crowd_start"]),
                crowd_duration=float(params["crowd_duration"]),
                crowd_alpha=float(params["crowd_alpha"]),
                seed=app_seed + 17,
            )
        )
        reservations[name] = _zipf_reservation(
            num_keys, params["value_size"], params["budget_fraction"]
        )
        counts[name] = requests
    key = (
        f"flashcrowd-scale{scale!r}-seed{seed}-"
        f"{_params_tag({'apps': app_map, 'defaults': defaults})}"
    )
    compiled = GLOBAL_TRACE_CACHE.get_or_compile(
        key,
        lambda: merge_by_time(
            [
                stream.generate(counts[stream.app], 3600.0)
                for stream in streams
            ]
        ),
        GEOMETRY,
    )
    return SyntheticTrace(
        scale=scale,
        seed=seed,
        reservations=reservations,
        requests_per_app=counts,
        compiled=compiled,
    )
