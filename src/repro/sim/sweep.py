"""Parameter sweeps: scenario grids executed across worker processes.

A :class:`Sweep` expands a base :class:`Scenario` against ``axes`` -- an
ordered mapping of field paths to value lists -- into the full cross
product and runs every grid point, either serially or on a process pool.
Axis keys name scenario fields (``"scheme"``, ``"seed"``) or dotted
paths into the nested dicts (``"workload_params.total_requests"``,
``"engine_overrides.credit_bytes"``, ``"budgets.app19"``,
``"cluster.shards"``, ``"rebalance.epoch_requests"``).

Worker processes receive plain scenario dicts (everything is JSON-safe)
and share the on-disk compiled-trace cache, so a grid over schemes or
budgets compiles each workload once no matter how many workers replay
it. Results always come back in grid order regardless of which worker
finished first.
"""

from __future__ import annotations

import itertools
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence

from repro.common.errors import ConfigurationError
from repro.common.mp import get_mp_context
from repro.sim.runner import run_scenario
from repro.sim.scenario import Scenario, ScenarioResult


def _apply_axis(payload: Dict[str, Any], path: str, value: Any) -> None:
    """Set ``path`` (possibly dotted) inside a scenario dict."""
    parts = path.split(".")
    target = payload
    for part in parts[:-1]:
        node = target.get(part)
        if node is None:
            node = target[part] = {}
        elif not isinstance(node, dict):
            raise ConfigurationError(
                f"axis {path!r} descends into non-dict field {part!r}"
            )
        target = node
    target[parts[-1]] = value


def _run_scenario_payload(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Worker entry point: dicts in, dicts out (picklable both ways)."""
    return run_scenario(Scenario.from_dict(payload)).to_dict()


def _pool_initializer(cache_directory: Optional[str]) -> None:
    """Point the worker's global trace cache at the parent's directory.

    Under fork the worker inherits the parent's resolved cache anyway;
    under spawn the module re-imports and re-reads ``REPRO_TRACE_CACHE``
    from the environment, which loses any directory the parent resolved
    or was configured with programmatically. Pinning it here makes the
    on-disk store identical across start methods -- including "no disk
    store at all" when the parent disabled it.
    """
    from repro.workloads import compiled

    compiled.GLOBAL_TRACE_CACHE.directory = (
        Path(cache_directory) if cache_directory else None
    )


@dataclass
class Sweep:
    """A scenario grid: ``base`` x the cross product of ``axes``.

    ``axes`` preserves insertion order; the first axis varies slowest,
    like nested loops. Expansion is deterministic, and so is result
    order.
    """

    base: Scenario = field(default_factory=Scenario)
    axes: Mapping[str, Sequence[Any]] = field(default_factory=dict)
    name: Optional[str] = None
    #: Default worker count for :meth:`run` when the caller passes none;
    #: this is what a spec's ``workers`` key sets.
    workers: Optional[int] = None

    def __post_init__(self) -> None:
        if self.workers is not None:
            if not isinstance(self.workers, int) or self.workers < 1:
                raise ConfigurationError(
                    f"workers must be a positive integer, got {self.workers!r}"
                )
        for path, values in self.axes.items():
            if isinstance(values, (str, bytes)) or not isinstance(
                values, (list, tuple)
            ):
                raise ConfigurationError(
                    f"axis {path!r} must map to a list of values, "
                    f"got {values!r}"
                )
            if len(values) == 0:
                raise ConfigurationError(f"axis {path!r} has no values")

    def __len__(self) -> int:
        total = 1
        for values in self.axes.values():
            total *= len(values)
        return total

    def scenarios(self) -> List[Scenario]:
        """The expanded grid, in deterministic order."""
        paths = list(self.axes)
        grid = []
        for combo in itertools.product(*(self.axes[p] for p in paths)):
            payload = self.base.to_dict()
            for path, value in zip(paths, combo):
                _apply_axis(payload, path, value)
            if payload.get("name") is None and paths:
                payload["name"] = ",".join(
                    f"{path.rsplit('.', 1)[-1]}={value}"
                    for path, value in zip(paths, combo)
                )
            grid.append(Scenario.from_dict(payload))
        return grid

    def run(
        self,
        workers: Optional[int] = None,
        start_method: Optional[str] = None,
    ) -> "SweepResult":
        """Execute every grid point; results come back in grid order.

        ``workers``: ``None`` falls back to the sweep's own ``workers``
        default (what a spec's ``workers`` key sets); ``None``-after-
        fallback or ``<= 1`` runs serially in-process; larger values fan
        scenarios out over a process pool sharing the on-disk
        compiled-trace cache.

        ``start_method`` pins the pool's multiprocessing start method;
        ``None`` uses :data:`repro.common.mp.DEFAULT_START_METHOD`. The
        context is always explicit -- worker behavior must not depend on
        the platform default.
        """
        if workers is None:
            workers = self.workers
        grid = self.scenarios()
        started = time.perf_counter()
        if workers is not None and workers > 1:
            from repro.workloads.compiled import GLOBAL_TRACE_CACHE

            payloads = [scenario.to_dict() for scenario in grid]
            cache_dir = GLOBAL_TRACE_CACHE.directory
            with ProcessPoolExecutor(
                max_workers=workers,
                mp_context=get_mp_context(start_method),
                initializer=_pool_initializer,
                initargs=(str(cache_dir) if cache_dir else None,),
            ) as pool:
                result_dicts = list(pool.map(_run_scenario_payload, payloads))
            results = [ScenarioResult.from_dict(d) for d in result_dicts]
        else:
            workers = 1
            results = [run_scenario(scenario) for scenario in grid]
        elapsed = time.perf_counter() - started
        return SweepResult(
            results=results, elapsed_seconds=elapsed, workers=workers
        )

    # ------------------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {
            "base": self.base.to_dict(),
            "axes": {path: list(values) for path, values in self.axes.items()},
            "name": self.name,
            "workers": self.workers,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "Sweep":
        if not isinstance(payload, dict):
            raise ConfigurationError(
                f"sweep spec must be an object, got {type(payload).__name__}"
            )
        unknown = set(payload) - {"base", "axes", "name", "workers"}
        if unknown:
            raise ConfigurationError(
                f"unknown sweep fields: {', '.join(sorted(unknown))}"
            )
        return cls(
            base=Scenario.from_dict(payload.get("base", {})),
            axes=dict(payload.get("axes", {})),
            name=payload.get("name"),
            workers=payload.get("workers"),
        )


@dataclass
class SweepResult:
    """All grid points' results, in grid order, plus wall-clock totals."""

    results: List[ScenarioResult]
    elapsed_seconds: float
    workers: int

    def __iter__(self):
        return iter(self.results)

    def __len__(self) -> int:
        return len(self.results)

    @property
    def total_requests(self) -> int:
        return sum(result.requests for result in self.results)

    @property
    def requests_per_sec(self) -> float:
        if self.elapsed_seconds <= 0:
            return 0.0
        return self.total_requests / self.elapsed_seconds

    def to_dict(self) -> Dict[str, Any]:
        return {
            "elapsed_seconds": self.elapsed_seconds,
            "workers": self.workers,
            "total_requests": self.total_requests,
            "requests_per_sec": self.requests_per_sec,
            "results": [result.to_dict() for result in self.results],
        }

    def render(self) -> str:
        """Plain-text summary: one line per grid point."""
        lines = [
            f"{'scenario':<44} {'hit_rate':>9} {'req/s':>12}",
            "-" * 67,
        ]
        for result in self.results:
            lines.append(
                f"{result.scenario.label():<44} "
                f"{result.overall_hit_rate:>9.4f} "
                f"{result.requests_per_sec:>12,.0f}"
            )
        lines.append(
            f"{len(self.results)} scenarios, {self.total_requests:,} requests "
            f"in {self.elapsed_seconds:.2f}s on {self.workers} worker(s) "
            f"= {self.requests_per_sec:,.0f} req/s aggregate"
        )
        return "\n".join(lines)


def run_sweep(
    spec: Dict[str, Any], workers: Optional[int] = None
) -> SweepResult:
    """Run a sweep from a JSON-style spec: ``{"base": {...}, "axes":
    {...}, "workers": N}``. ``workers`` overrides the spec's value."""
    return Sweep.from_dict(spec).run(workers=workers)
