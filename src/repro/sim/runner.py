"""Executing scenarios: the :func:`run_scenario` facade.

The replay core shared by the legacy ``replay_apps`` helper, the
experiment runners and the sweep executor. One code path builds the
server (scheme registry + per-app budgets with reservation fallback),
resolves solver plans, and replays the compiled trace through the
allocation-free fast path.
"""

from __future__ import annotations

import time
from typing import Dict, Iterable, List, Optional, Tuple

from repro.cache.server import CacheServer, Observer
from repro.cache.stats import StatsRegistry
from repro.common.errors import ConfigurationError
from repro.sim.defaults import GEOMETRY
from repro.sim.planning import solver_plan_for_app
from repro.sim.registries import SCHEMES
from repro.sim.scenario import SOLVER_PLANS, Scenario, ScenarioResult
from repro.sim.workloads import load_workload
from repro.workloads.trace import Request


def _resolve_budget(scenario: Scenario, trace, app: str) -> float:
    """Budget override if given for this app, else the reservation.

    ``budgets`` may be partial: apps it does not mention keep their
    workload reservation instead of raising.
    """
    if scenario.budgets is not None and app in scenario.budgets:
        return scenario.budgets[app]
    return trace.reservations[app]


def _resolve_plans(
    scenario: Scenario, trace, apps: List[str]
) -> Optional[Dict[str, Dict[int, float]]]:
    if scenario.plans == SOLVER_PLANS:
        # Plans must fit the budget the engine will actually get, which
        # a scenario's ``budgets`` may override per app.
        return {
            app: solver_plan_for_app(
                trace, app, budget=_resolve_budget(scenario, trace, app)
            )
            for app in apps
        }
    return scenario.plans


def _chosen_apps(scenario: Scenario, trace) -> List[str]:
    if scenario.apps is None:
        return list(trace.app_names)
    unknown = [app for app in scenario.apps if app not in trace.reservations]
    if unknown:
        raise ConfigurationError(
            f"unknown app(s) {', '.join(map(repr, unknown))} for workload "
            f"{scenario.workload!r}; known: {', '.join(trace.app_names)}"
        )
    return list(scenario.apps)


def build_server(
    scenario: Scenario,
    trace,
    plans: Optional[Dict[str, Dict[int, float]]] = None,
) -> CacheServer:
    """One engine per replayed app, built through the scheme registry."""
    chosen = _chosen_apps(scenario, trace)
    if plans is None:
        plans = _resolve_plans(scenario, trace, chosen)
    builder = SCHEMES.get(scenario.scheme)
    server = CacheServer(GEOMETRY)
    for app in chosen:
        server.add_app(
            builder(
                app,
                _resolve_budget(scenario, trace, app),
                geometry=GEOMETRY,
                scale=trace.scale,
                seed=scenario.seed,
                policy=scenario.policy,
                plan=plans.get(app) if plans else None,
                **scenario.engine_overrides,
            )
        )
    return server


class ScenarioEngineFactory:
    """One app's ``make_engine(shard, share)`` factory, as a picklable
    value object instead of a closure.

    The cluster keeps these factories for fault-time cold restarts, and
    a parallel replay ships them to worker processes -- under the
    ``spawn`` start method that means pickling, which a local closure
    cannot do. The scheme travels as its registry name and is resolved
    back through :data:`SCHEMES` at call time.
    """

    def __init__(
        self,
        scheme: str,
        app: str,
        scale: float,
        seed: int,
        policy: Optional[str],
        plan: Optional[Dict[int, float]],
        shards: int,
        engine_overrides: Dict[str, object],
    ) -> None:
        self.scheme = scheme
        self.app = app
        self.scale = scale
        self.seed = seed
        self.policy = policy
        self.plan = plan
        self.shards = shards
        self.engine_overrides = dict(engine_overrides)

    def __call__(self, shard: int, share: float):
        shard_plan = (
            {cls: cap / self.shards for cls, cap in self.plan.items()}
            if self.plan is not None
            else None
        )
        return SCHEMES.get(self.scheme)(
            self.app,
            share,
            geometry=GEOMETRY,
            scale=self.scale,
            seed=self.seed + shard,
            policy=self.policy,
            plan=shard_plan,
            **self.engine_overrides,
        )


def build_cluster(
    scenario: Scenario,
    trace,
    plans: Optional[Dict[str, Dict[int, float]]] = None,
):
    """A :class:`~repro.cluster.Cluster` with one engine per app per
    shard. Budgets (and explicit plans) split evenly across shards; each
    shard's engine seeds as ``seed + shard`` so shard 0 of a one-shard
    cluster is identical to the single-server engine."""
    from repro.cluster import Cluster, ClusterConfig

    chosen = _chosen_apps(scenario, trace)
    if plans is None:
        plans = _resolve_plans(scenario, trace, chosen)
    config = ClusterConfig.from_dict(scenario.cluster)
    cluster = Cluster(config, GEOMETRY)
    for app in chosen:
        make_engine = ScenarioEngineFactory(
            scenario.scheme,
            app,
            trace.scale,
            scenario.seed,
            scenario.policy,
            plans.get(app) if plans else None,
            config.shards,
            scenario.engine_overrides,
        )
        cluster.add_app(
            app, _resolve_budget(scenario, trace, app), make_engine
        )
    return cluster


def replay_on_cluster(
    scenario: Scenario, trace
) -> Tuple["Cluster", StatsRegistry, float]:
    """Replay an already-loaded trace across the scenario's cluster.

    Returns ``(cluster, aggregated_stats, elapsed_seconds)``. Cluster
    replays always take the compiled fast path; per-request observers
    are a single-server feature. A ``rebalance`` block with a nonzero
    ``epoch_requests`` attaches an online
    :class:`~repro.cluster.rebalance.Rebalancer` (seeded from the
    scenario seed) before the replay; otherwise the static even split
    runs untouched.

    Partitioned replays fetch their
    :class:`~repro.cluster.routing.RoutingPlan` through the global
    two-level trace cache, so a sweep over schemes/budgets/rebalance
    settings routes each (trace, ring) pair once -- including across
    worker processes sharing the on-disk store.
    """
    from repro.cluster import (
        FaultInjector,
        FaultSchedule,
        RebalanceConfig,
        Rebalancer,
        get_routing_plan,
    )

    chosen = _chosen_apps(scenario, trace)
    cluster = build_cluster(scenario, trace)
    if scenario.rebalance is not None:
        rebalance = RebalanceConfig.from_dict(scenario.rebalance)
        if rebalance.enabled:
            cluster.attach_rebalancer(
                Rebalancer(cluster, rebalance, seed=scenario.seed)
            )
    if scenario.faults is not None:
        # An empty schedule attaches nothing: the replay must stay on
        # the fault-free paths, byte for byte (the parity tests pin it).
        schedule = FaultSchedule.from_dict(scenario.faults)
        if schedule.enabled:
            cluster.attach_faults(FaultInjector(cluster, schedule))
    compiled = getattr(trace, "compiled", None)
    if compiled is None:
        raise ConfigurationError(
            f"workload {scenario.workload!r} has no compiled trace; "
            "cluster scenarios need one"
        )
    if set(chosen) != set(trace.app_names):
        compiled = compiled.select_apps(chosen)
    started = time.perf_counter()
    plan = None
    if cluster.config.partitioned_replay and (
        cluster.shards > 1 or cluster.rebalancer is not None
    ):
        plan = get_routing_plan(
            compiled, cluster.ring, cluster.replication
        )
    stats = cluster.replay_compiled(compiled, plan=plan)
    elapsed = time.perf_counter() - started
    return cluster, stats, elapsed


def serve_on_cluster(
    scenario: Scenario, trace
) -> Tuple["Cluster", StatsRegistry, float, Dict[str, object]]:
    """Stand up the live server over the scenario's cluster and drive
    it open-loop per the ``serve`` block.

    Returns ``(cluster, aggregated_stats, elapsed_seconds,
    serve_payload)``. The cluster is built exactly like a replay
    (same budgets, seeds and optional rebalancer), but requests flow
    through the asyncio server's batch hot path
    (:meth:`~repro.cluster.Cluster.process_batch`) instead of the
    offline replay loops, so the stats afterwards reflect whatever the
    open-loop schedule actually delivered -- shed requests never reach
    the cluster. A ``faults`` block attaches a
    :class:`~repro.cluster.FaultInjector` exactly like an offline
    replay; the serve harness arms it on the virtual-time axis so the
    fault timeline is seed-deterministic even though wall-clock
    latencies are not.
    """
    from repro.cluster import (
        FaultInjector,
        FaultSchedule,
        RebalanceConfig,
        Rebalancer,
    )
    from repro.serve import ServeConfig, run_serve

    chosen = _chosen_apps(scenario, trace)
    cluster = build_cluster(scenario, trace)
    if scenario.rebalance is not None:
        rebalance = RebalanceConfig.from_dict(scenario.rebalance)
        if rebalance.enabled:
            cluster.attach_rebalancer(
                Rebalancer(cluster, rebalance, seed=scenario.seed)
            )
    if scenario.faults is not None:
        # An empty schedule attaches nothing: the no-fault serve path
        # must stay byte-identical to a scenario without the block.
        schedule = FaultSchedule.from_dict(scenario.faults)
        if schedule.enabled:
            cluster.attach_faults(FaultInjector(cluster, schedule))
    compiled = getattr(trace, "compiled", None)
    if compiled is None:
        raise ConfigurationError(
            f"workload {scenario.workload!r} has no compiled trace; "
            "serve scenarios need one"
        )
    if set(chosen) != set(trace.app_names):
        compiled = compiled.select_apps(chosen)
    config = ServeConfig.from_dict(scenario.serve)
    started = time.perf_counter()
    report = run_serve(cluster, compiled, config, seed=scenario.seed)
    elapsed = time.perf_counter() - started
    return cluster, cluster.aggregate_stats(), elapsed, report.to_dict()


def replay_on_trace(
    scenario: Scenario,
    trace,
    observer: Optional[Observer] = None,
) -> Tuple[CacheServer, StatsRegistry, float]:
    """Replay an already-loaded trace under ``scenario``'s scheme.

    Returns ``(server, stats, elapsed_seconds)``. Compiled traces take
    the allocation-free fast path; plain request iterables (or attached
    observers) fall back to the object path with identical results.
    """
    chosen = _chosen_apps(scenario, trace)
    server = build_server(scenario, trace)
    if observer is not None:
        server.add_observer(observer)
    compiled = getattr(trace, "compiled", None)
    started = time.perf_counter()
    if compiled is not None:
        if set(chosen) != set(trace.app_names):
            compiled = compiled.select_apps(chosen)
        server.replay_compiled(compiled)
    else:
        if set(chosen) == set(trace.app_names):
            stream: Iterable[Request] = trace.requests()
        else:
            from repro.workloads.trace import merge_by_time

            stream = merge_by_time(
                [trace.app_requests(app) for app in chosen]
            )
        server.replay(stream)
    elapsed = time.perf_counter() - started
    return server, server.stats, elapsed


def run_scenario(
    scenario: Scenario,
    *,
    baseline: Optional[ScenarioResult] = None,
    observer: Optional[Observer] = None,
    keep_server: bool = False,
) -> ScenarioResult:
    """Load the workload, replay it, and report per-app results.

    Args:
        scenario: The declarative spec to execute.
        baseline: Optional previous result; when given, the returned
            result's ``miss_reductions`` compares against it per app.
        observer: Optional per-request observer (timelines, profilers);
            forces the object replay path, same outcomes. Rejected for
            cluster scenarios (compiled fast path only).
        keep_server: Attach the live ``server``/``cluster`` and
            ``stats`` to the result for callers that need engine
            internals.

    Scenarios with a ``cluster`` block replay across N shard servers
    (consistent-hash key routing, budgets split per shard); the result
    carries the aggregate ``cluster_report``. Adding a ``rebalance``
    block turns the per-shard split online: budgets drift toward the
    neediest shards every epoch, and the cluster report's ``rebalance``
    section records the per-epoch allocation timeline. A ``serve``
    block replaces the offline replay entirely: the trace is served
    live through the asyncio server (see :mod:`repro.serve`) and the
    cluster report grows a ``serve`` section (latency percentiles,
    shed count, queue-depth timeline).
    """
    trace = load_workload(
        scenario.workload,
        scale=scenario.scale,
        seed=scenario.seed,
        **scenario.workload_params,
    )
    cluster = None
    serve_payload = None
    if scenario.cluster is not None:
        if observer is not None:
            raise ConfigurationError(
                "per-request observers are not supported for cluster "
                "scenarios; drop the 'cluster' block or the observer"
            )
        if scenario.serve is not None:
            cluster, stats, elapsed, serve_payload = serve_on_cluster(
                scenario, trace
            )
        else:
            cluster, stats, elapsed = replay_on_cluster(scenario, trace)
        server = None
    else:
        server, stats, elapsed = replay_on_trace(
            scenario, trace, observer=observer
        )
    apps = (
        list(scenario.apps) if scenario.apps is not None else list(trace.app_names)
    )
    total = stats.total
    requests = total.gets + total.sets
    cluster_report = None
    if cluster is not None:
        # Pass the merged registry the replay already built; report()
        # would otherwise re-merge every shard's counters.
        report = cluster.report(stats=stats)
        report.serve = serve_payload
        cluster_report = report.to_dict()
    result = ScenarioResult(
        scenario=scenario,
        hit_rates={app: stats.app_hit_rate(app) for app in apps},
        overall_hit_rate=total.hit_rate(),
        requests=requests,
        gets=total.gets,
        elapsed_seconds=elapsed,
        requests_per_sec=requests / elapsed if elapsed > 0 else 0.0,
        budgets={app: _resolve_budget(scenario, trace, app) for app in apps},
        cluster_report=cluster_report,
    )
    if baseline is not None:
        result.miss_reductions = result.miss_reductions_vs(baseline)
    if keep_server:
        result.server = server
        result.stats = stats
        result.cluster = cluster
    return result
