"""Shared simulation defaults.

One slab geometry and two canonical trace scales, shared by the scenario
runner, the experiment suite and the benchmark harness so their compiled
traces hit the same cache entries.
"""

from __future__ import annotations

from repro.cache.slabs import SlabGeometry

#: The slab ladder every simulation uses unless a scenario overrides it.
GEOMETRY = SlabGeometry.default()

#: Default trace scale for full runs and for the pytest benchmarks.
FULL_SCALE = 0.25
BENCH_SCALE = 0.03
