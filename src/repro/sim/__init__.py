"""``repro.sim``: the declarative simulation API.

Everything this reproduction can run -- single replays, the paper's
experiment suite, parameter sweeps -- is described by a serializable
:class:`Scenario` (workload x scheme x policy x budgets x scale x seed,
plus optional ``cluster`` and ``rebalance`` blocks for sharded replays
with online cross-shard budget stealing) and executed by
:func:`run_scenario` or, for grids, a :class:`Sweep` across worker
processes. New engine schemes and workloads plug in via the
:func:`register_scheme` / :func:`register_workload` decorators instead
of editing the harness.

Quickstart::

    from repro.sim import Scenario, Sweep, run_scenario

    result = run_scenario(
        Scenario(scheme="cliffhanger", workload="memcachier", scale=0.02)
    )
    print(result.overall_hit_rate, result.requests_per_sec)

    sweep = Sweep(
        base=Scenario(workload="zipf", scale=0.05),
        axes={"scheme": ["default", "cliffhanger"], "seed": [0, 1]},
    )
    for row in sweep.run(workers=4).results:
        print(row.scenario.name, row.overall_hit_rate)
"""

from repro.sim.defaults import BENCH_SCALE, FULL_SCALE, GEOMETRY
from repro.sim.registries import (
    Registry,
    SCHEMES,
    WORKLOADS,
    list_schemes,
    list_workloads,
    register_scheme,
    register_workload,
)
from repro.sim.scenario import Scenario, ScenarioResult, miss_reduction
from repro.sim.schemes import make_engine, scaled_cliff_kwargs
from repro.sim.planning import (
    classify,
    profile_app_classes,
    solver_plan_for_app,
)
from repro.sim.workloads import CachedTrace, SyntheticTrace, load_workload
from repro.sim import dynamic as _dynamic  # registers the dynamic workloads
from repro.sim.runner import (
    build_cluster,
    build_server,
    replay_on_cluster,
    replay_on_trace,
    run_scenario,
)
from repro.sim.sweep import Sweep, SweepResult, run_sweep

__all__ = [
    "BENCH_SCALE",
    "FULL_SCALE",
    "GEOMETRY",
    "Registry",
    "SCHEMES",
    "WORKLOADS",
    "CachedTrace",
    "Scenario",
    "ScenarioResult",
    "Sweep",
    "SweepResult",
    "SyntheticTrace",
    "build_cluster",
    "build_server",
    "classify",
    "list_schemes",
    "list_workloads",
    "load_workload",
    "make_engine",
    "miss_reduction",
    "profile_app_classes",
    "register_scheme",
    "register_workload",
    "replay_on_cluster",
    "replay_on_trace",
    "run_scenario",
    "run_sweep",
    "scaled_cliff_kwargs",
    "solver_plan_for_app",
]
