"""Workload loaders, registered on :data:`repro.sim.WORKLOADS`.

A workload builder takes ``(scale, seed, **params)`` and returns a
*loaded trace*: an object with ``app_names``, ``reservations``,
``requests_per_app``, ``scale``, ``seed`` and a cached ``compiled``
:class:`~repro.workloads.compiled.CompiledTrace` that the replay fast
path consumes. Three workloads ship out of the box:

* ``memcachier`` -- the paper's synthetic 20-application trace
  (``params``: ``apps`` (1-based spec indices), ``total_requests``);
* ``zipf`` -- N independent Zipf tenants (``params``: ``apps``,
  ``num_keys``, ``alpha``, ``value_size``, ``set_fraction``,
  ``requests_per_app``, ``budget_fraction``);
* ``facebook`` -- the ETC pool model from the 2012 Facebook study, or
  the all-miss unique-key stream (``params``: ``apps``, ``num_keys``,
  ``alpha``, ``get_fraction``, ``unique_keys``, ``requests_per_app``,
  ``budget_bytes``).

All three go through :data:`~repro.workloads.compiled.GLOBAL_TRACE_CACHE`
so repeated scenario runs -- and sweep worker processes sharing the
on-disk store -- never regenerate identical traces.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Dict, List, Optional, Union

from repro.common.constants import ITEM_OVERHEAD_BYTES
from repro.common.errors import ConfigurationError
from repro.sim.defaults import FULL_SCALE, GEOMETRY
from repro.sim.registries import WORKLOADS, register_workload
from repro.workloads.compiled import CompiledTrace, GLOBAL_TRACE_CACHE
from repro.workloads.facebook import (
    FACEBOOK_GET_FRACTION,
    FacebookETCStream,
    UniqueKeyStream,
)
from repro.workloads.generators import RequestStream, ZipfStream
from repro.workloads.memcachier import (
    MemcachierTrace,
    build_memcachier_trace,
)
from repro.workloads.sizes import FixedSize
from repro.workloads.trace import merge_by_time


@dataclass
class CachedTrace:
    """A :class:`MemcachierTrace`-compatible facade over a compiled trace.

    Metadata (reservations, request counts, specs) comes from the cheap
    analytic build; the request stream itself is a cached
    :class:`CompiledTrace`, so repeated experiment runs -- and the ~17
    runners sharing a scale/seed -- never regenerate it.
    """

    meta: MemcachierTrace
    compiled: CompiledTrace

    @property
    def scale(self) -> float:
        return self.meta.scale

    @property
    def seed(self) -> int:
        return self.meta.seed

    @property
    def total_requests(self) -> int:
        return self.meta.total_requests

    @property
    def reservations(self) -> Dict[str, float]:
        return self.meta.reservations

    @property
    def requests_per_app(self) -> Dict[str, int]:
        return self.meta.requests_per_app

    @property
    def specs(self):
        return self.meta.specs

    @property
    def app_names(self) -> List[str]:
        return self.meta.app_names

    def requests(self):
        return self.compiled.iter_requests()

    def app_requests(self, app: str):
        return self.compiled_for(app).iter_requests()

    def compiled_for(self, app: str) -> CompiledTrace:
        """One app's compiled sub-trace (stable-merge filtering keeps the
        per-app order identical to regenerating the app's stream)."""
        return self.compiled.for_app(app)


@dataclass
class SyntheticTrace:
    """A loaded non-Memcachier workload: streams merged and compiled."""

    scale: float
    seed: int
    reservations: Dict[str, float]
    requests_per_app: Dict[str, int]
    compiled: CompiledTrace

    @property
    def app_names(self) -> List[str]:
        return list(self.reservations)

    @property
    def total_requests(self) -> int:
        return sum(self.requests_per_app.values())

    def requests(self):
        return self.compiled.iter_requests()

    def app_requests(self, app: str):
        return self.compiled_for(app).iter_requests()

    def compiled_for(self, app: str) -> CompiledTrace:
        return self.compiled.for_app(app)


def load_workload(name: str, scale: float = FULL_SCALE, seed: int = 0, **params):
    """Build (or fetch from cache) the named workload's loaded trace."""
    if scale <= 0:
        raise ConfigurationError(f"scale must be positive, got {scale}")
    builder = WORKLOADS.get(name)
    return builder(scale, seed, **params)


def _params_tag(params: dict) -> str:
    """A stable digest of workload params for trace-cache keys.

    128 truncated sha256 bits: collisions would silently serve the wrong
    cached trace, so a 32-bit checksum is not enough for large
    programmatic sweeps over ``workload_params``.
    """
    payload = json.dumps(params, sort_keys=True, default=str)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:32]


# ---------------------------------------------------------------------------
# memcachier
# ---------------------------------------------------------------------------


@register_workload("memcachier")
def _load_memcachier(
    scale: float,
    seed: int,
    apps: Optional[List[int]] = None,
    total_requests: Optional[int] = None,
) -> CachedTrace:
    """The paper's synthetic 20-application Memcachier-like trace."""
    meta = build_memcachier_trace(
        scale=scale, seed=seed, apps=apps, total_requests=total_requests
    )
    app_part = "all" if apps is None else "-".join(str(a) for a in sorted(apps))
    key = (
        f"memcachier-scale{scale!r}-seed{seed}-apps{app_part}"
        f"-total{total_requests if total_requests is not None else 'auto'}"
    )
    compiled = GLOBAL_TRACE_CACHE.get_or_compile(key, meta.requests, GEOMETRY)
    return CachedTrace(meta, compiled)


# ---------------------------------------------------------------------------
# zipf
# ---------------------------------------------------------------------------

_ZIPF_APP_DEFAULTS = {
    "num_keys": 40_000,
    "alpha": 1.0,
    "value_size": 256,
    "set_fraction": 0.0,
    "requests_per_app": 150_000,
    "budget_fraction": 0.25,
}


def _normalize_apps(
    apps: Union[int, List[str], Dict[str, dict], None],
    prefix: str,
    default_count: int,
) -> Dict[str, dict]:
    """``apps`` may be a count, a list of names, or a name->overrides map."""
    if apps is None:
        apps = default_count
    if isinstance(apps, int):
        if apps < 1:
            raise ConfigurationError(f"need at least one app, got {apps}")
        return {f"{prefix}{i:02d}": {} for i in range(1, apps + 1)}
    if isinstance(apps, (list, tuple)):
        return {str(name): {} for name in apps}
    if isinstance(apps, dict):
        return {str(name): dict(overrides or {}) for name, overrides in apps.items()}
    raise ConfigurationError(
        f"apps must be a count, a list of names or a name->params map, "
        f"got {apps!r}"
    )


def _zipf_reservation(num_keys: int, value_size: int, fraction: float) -> float:
    """Bytes covering ``fraction`` of the key universe at chunk granularity."""
    item_bytes = value_size + 14 + ITEM_OVERHEAD_BYTES  # ~14-byte keys
    chunk = GEOMETRY.chunk_size(GEOMETRY.class_for_size(item_bytes))
    return max(64 * 1024, chunk * num_keys * fraction)


@register_workload("zipf")
def _load_zipf(scale: float, seed: int, apps=None, **defaults) -> SyntheticTrace:
    """N independent Zipf tenants with fixed-size values.

    Per-app parameters (overridable globally via ``defaults`` or per app
    via an ``apps`` mapping): ``num_keys``, ``alpha``, ``value_size``,
    ``set_fraction``, ``requests_per_app``, ``budget_fraction``.
    ``scale`` multiplies key universes and request counts together.
    """
    unknown = set(defaults) - set(_ZIPF_APP_DEFAULTS)
    if unknown:
        raise ConfigurationError(
            f"unknown zipf workload params: {', '.join(sorted(unknown))}"
        )
    app_map = _normalize_apps(apps, "zipf", default_count=2)
    streams: List[RequestStream] = []
    reservations: Dict[str, float] = {}
    counts: Dict[str, int] = {}
    for position, (name, overrides) in enumerate(app_map.items()):
        unknown = set(overrides) - set(_ZIPF_APP_DEFAULTS)
        if unknown:
            raise ConfigurationError(
                f"unknown zipf app params for {name!r}: "
                f"{', '.join(sorted(unknown))}"
            )
        params = dict(_ZIPF_APP_DEFAULTS)
        params.update(defaults)
        params.update(overrides)
        num_keys = max(50, int(params["num_keys"] * scale))
        requests = max(500, int(params["requests_per_app"] * scale))
        streams.append(
            ZipfStream(
                app=name,
                num_keys=num_keys,
                alpha=params["alpha"],
                size_model=FixedSize(params["value_size"]),
                set_fraction=params["set_fraction"],
                seed=seed + position * 1000,
            )
        )
        reservations[name] = _zipf_reservation(
            num_keys, params["value_size"], params["budget_fraction"]
        )
        counts[name] = requests
    key = f"zipf-scale{scale!r}-seed{seed}-{_params_tag({'apps': app_map, 'defaults': defaults})}"
    compiled = GLOBAL_TRACE_CACHE.get_or_compile(
        key,
        lambda: merge_by_time(
            [
                stream.generate(counts[stream.app], 3600.0)
                for stream in streams
            ]
        ),
        GEOMETRY,
    )
    return SyntheticTrace(
        scale=scale,
        seed=seed,
        reservations=reservations,
        requests_per_app=counts,
        compiled=compiled,
    )


# ---------------------------------------------------------------------------
# facebook
# ---------------------------------------------------------------------------

_FACEBOOK_APP_DEFAULTS = {
    "num_keys": 200_000,
    "alpha": 0.95,
    "get_fraction": FACEBOOK_GET_FRACTION,
    "unique_keys": False,
    "requests_per_app": 200_000,
    "budget_bytes": 32 << 20,
}


@register_workload("facebook")
def _load_facebook(scale: float, seed: int, apps=None, **defaults) -> SyntheticTrace:
    """Facebook ETC pools (or the all-miss unique-key worst case).

    Per-app parameters: ``num_keys``, ``alpha``, ``get_fraction``,
    ``unique_keys`` (switches to the section-5.6 worst-case stream),
    ``requests_per_app``, ``budget_bytes``. ``scale`` multiplies key
    universes, request counts and budgets together.
    """
    unknown = set(defaults) - set(_FACEBOOK_APP_DEFAULTS)
    if unknown:
        raise ConfigurationError(
            f"unknown facebook workload params: {', '.join(sorted(unknown))}"
        )
    app_map = _normalize_apps(apps, "etc", default_count=1)
    streams: List[RequestStream] = []
    reservations: Dict[str, float] = {}
    counts: Dict[str, int] = {}
    for position, (name, overrides) in enumerate(app_map.items()):
        unknown = set(overrides) - set(_FACEBOOK_APP_DEFAULTS)
        if unknown:
            raise ConfigurationError(
                f"unknown facebook app params for {name!r}: "
                f"{', '.join(sorted(unknown))}"
            )
        params = dict(_FACEBOOK_APP_DEFAULTS)
        params.update(defaults)
        params.update(overrides)
        requests = max(500, int(params["requests_per_app"] * scale))
        app_seed = seed + position * 1000
        if params["unique_keys"]:
            streams.append(
                UniqueKeyStream(
                    app=name,
                    get_fraction=params["get_fraction"],
                    seed=app_seed,
                )
            )
        else:
            streams.append(
                FacebookETCStream(
                    app=name,
                    num_keys=max(100, int(params["num_keys"] * scale)),
                    alpha=params["alpha"],
                    get_fraction=params["get_fraction"],
                    seed=app_seed,
                )
            )
        reservations[name] = max(64 * 1024, params["budget_bytes"] * scale)
        counts[name] = requests
    key = (
        f"facebook-scale{scale!r}-seed{seed}-"
        f"{_params_tag({'apps': app_map, 'defaults': defaults})}"
    )
    compiled = GLOBAL_TRACE_CACHE.get_or_compile(
        key,
        lambda: merge_by_time(
            [
                stream.generate(counts[stream.app], 3600.0)
                for stream in streams
            ]
        ),
        GEOMETRY,
    )
    return SyntheticTrace(
        scale=scale,
        seed=seed,
        reservations=reservations,
        requests_per_app=counts,
        compiled=compiled,
    )
