"""Built-in engine schemes, registered on :data:`repro.sim.SCHEMES`.

Each builder instantiates one tenant engine; the if/elif factory the
experiment harness used to carry lives on only as the thin
:func:`make_engine` dispatch wrapper.

Schemes: ``default`` (stock FCFS), ``planned`` (a solver plan), ``lsm``
(global LRU), ``hill`` (Algorithm 1 only, any policy), ``cliff-only``,
``hill-only`` and ``cliffhanger`` (the combined system).
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.cache.engines import (
    Engine,
    FirstComeFirstServeEngine,
    PlannedEngine,
)
from repro.cache.log_structured import GlobalLRUEngine
from repro.cache.slabs import SlabGeometry
from repro.common.errors import ConfigurationError
from repro.core.engine import CliffhangerEngine, HillClimbEngine
from repro.sim.defaults import GEOMETRY
from repro.sim.registries import SCHEMES, register_scheme


def scaled_cliff_kwargs(scale: float) -> Dict[str, int]:
    """Shrink probe/gate constants along with queue sizes at small scale.

    At full scale the paper constants apply (128-item probes, 1000-item
    gate); scaled-down traces shrink queues proportionally, so keeping
    the constants would disable cliff scaling entirely.
    """
    if scale >= 0.5:
        return {}
    return {
        "probe_items": max(12, int(128 * scale)),
        "min_cliff_items": max(100, int(600 * scale)),
        # Credits move a fixed fraction of (scaled) memory per shadow
        # hit; shadow-hit counts scale with the request count, so the
        # credit must scale with memory to converge in the same number
        # of trace passes.
        "credit_bytes": max(512.0, 4096 * scale * 2),
        # The shadow approximates the *local* gradient only while it is
        # small relative to the queue (paper ratio: 1 MB shadows on
        # ~50 MB applications); scale it with the queues or the shadow
        # hit rate measures total tail mass instead.
        "hill_shadow_bytes": max(16 << 10, int((1 << 20) * scale)),
    }


@register_scheme("default")
def _build_default(
    app: str,
    budget_bytes: float,
    *,
    geometry: SlabGeometry,
    policy: str = "lru",
    **_context,
) -> Engine:
    return FirstComeFirstServeEngine(app, budget_bytes, geometry, policy=policy)


@register_scheme("planned")
def _build_planned(
    app: str,
    budget_bytes: float,
    *,
    geometry: SlabGeometry,
    policy: str = "lru",
    plan: Optional[Dict[int, float]] = None,
    **_context,
) -> Engine:
    if plan is None:
        raise ConfigurationError("planned engine needs a plan")
    return PlannedEngine(app, budget_bytes, geometry, plan, policy=policy)


@register_scheme("lsm")
def _build_lsm(
    app: str,
    budget_bytes: float,
    *,
    geometry: SlabGeometry,
    policy: str = "lru",
    **_context,
) -> Engine:
    return GlobalLRUEngine(app, budget_bytes, geometry, policy=policy)


@register_scheme("hill")
def _build_hill(
    app: str,
    budget_bytes: float,
    *,
    geometry: SlabGeometry,
    scale: float = 1.0,
    seed: int = 0,
    policy: str = "lru",
    plan: Optional[Dict[int, float]] = None,
    **overrides,
) -> Engine:
    scaled = scaled_cliff_kwargs(scale)
    hill_kwargs = {}
    if "credit_bytes" in scaled:
        hill_kwargs["credit_bytes"] = scaled["credit_bytes"]
    if "hill_shadow_bytes" in scaled:
        hill_kwargs["shadow_bytes"] = scaled["hill_shadow_bytes"]
    hill_kwargs.update(overrides)
    return HillClimbEngine(
        app, budget_bytes, geometry, policy=policy, seed=seed, **hill_kwargs
    )


def _build_cliffhanger_variant(
    app: str,
    budget_bytes: float,
    geometry: SlabGeometry,
    scale: float,
    seed: int,
    policy: str,
    overrides: dict,
    scheme: str,
    **variant,
) -> Engine:
    if policy != "lru":
        # Cliff scaling assumes LRU rank semantics; silently ignoring a
        # requested policy would make policy sweeps lie.
        raise ConfigurationError(
            f"scheme {scheme!r} supports only the 'lru' policy, got "
            f"{policy!r}; use scheme 'hill' to combine hill climbing "
            f"with other eviction policies"
        )
    kwargs = dict(scaled_cliff_kwargs(scale))
    kwargs.update(overrides)
    return CliffhangerEngine(
        app, budget_bytes, geometry, seed=seed, **variant, **kwargs
    )


@register_scheme("cliff-only")
def _build_cliff_only(
    app: str,
    budget_bytes: float,
    *,
    geometry: SlabGeometry,
    scale: float = 1.0,
    seed: int = 0,
    policy: str = "lru",
    plan: Optional[Dict[int, float]] = None,
    **overrides,
) -> Engine:
    return _build_cliffhanger_variant(
        app, budget_bytes, geometry, scale, seed, policy, overrides,
        scheme="cliff-only", enable_hill_climbing=False,
    )


@register_scheme("hill-only")
def _build_hill_only(
    app: str,
    budget_bytes: float,
    *,
    geometry: SlabGeometry,
    scale: float = 1.0,
    seed: int = 0,
    policy: str = "lru",
    plan: Optional[Dict[int, float]] = None,
    **overrides,
) -> Engine:
    return _build_cliffhanger_variant(
        app, budget_bytes, geometry, scale, seed, policy, overrides,
        scheme="hill-only", enable_cliff_scaling=False,
    )


@register_scheme("cliffhanger")
def _build_cliffhanger(
    app: str,
    budget_bytes: float,
    *,
    geometry: SlabGeometry,
    scale: float = 1.0,
    seed: int = 0,
    policy: str = "lru",
    plan: Optional[Dict[int, float]] = None,
    **overrides,
) -> Engine:
    return _build_cliffhanger_variant(
        app, budget_bytes, geometry, scale, seed, policy, overrides,
        scheme="cliffhanger",
    )


def make_engine(
    scheme: str,
    app: str,
    budget_bytes: float,
    scale: float = 1.0,
    seed: int = 0,
    plan: Optional[Dict[int, float]] = None,
    policy: str = "lru",
    geometry: SlabGeometry = GEOMETRY,
    **overrides,
) -> Engine:
    """Instantiate an engine by scheme name (registry dispatch)."""
    builder = SCHEMES.get(scheme)
    return builder(
        app,
        budget_bytes,
        geometry=geometry,
        scale=scale,
        seed=seed,
        policy=policy,
        plan=plan,
        **overrides,
    )
