"""Profiling and solver planning over traces.

Per-slab-class hit-rate-curve profiling (exact Mattson stack distances or
the Mimir bucket estimator) and the Dynacache solver pipeline that turns
one application's week of requests into a byte plan per slab class. Used
by the ``planned`` scheme (``Scenario(plans="solver")``) and by the
figure/table runners that inspect curves directly.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Tuple, Union

from repro.allocation.dynacache import DynacacheSolver
from repro.allocation.lookahead import LookAheadAllocator
from repro.cache.item import CacheItem
from repro.cache.stats import OP_GET
from repro.common.errors import ConfigurationError
from repro.profiling.hrc import HitRateCurve
from repro.profiling.mimir import MimirProfiler
from repro.profiling.stack_distance import StackDistanceProfiler
from repro.sim.defaults import GEOMETRY
from repro.workloads.compiled import CompiledTrace
from repro.workloads.trace import Request


def classify(request: Request) -> int:
    """Slab class of one request (shared with the engines)."""
    item = CacheItem(
        key=request.key,
        value_size=request.value_size,
        key_size=request.key_size,
    )
    return GEOMETRY.class_for_size(item.total_size)


def profile_app_classes(
    requests: Union[Iterable[Request], CompiledTrace],
    estimator: str = "exact",
) -> Tuple[Dict[int, HitRateCurve], Dict[int, int]]:
    """Per-slab-class hit-rate curves (size axis: items) and GET counts.

    ``requests`` may be a plain request iterable or a
    :class:`CompiledTrace` (whose precomputed slab classes skip the
    per-request :func:`classify` allocation). ``estimator``: ``exact``
    uses Mattson stack distances; ``mimir`` the bucket estimator Dynacache
    really used (coarser, reproducing its estimation error).
    """
    if estimator == "exact":
        make = StackDistanceProfiler
    elif estimator == "mimir":
        make = MimirProfiler
    else:
        raise ConfigurationError(f"unknown estimator {estimator!r}")
    profilers: Dict[int, object] = {}
    frequencies: Dict[int, int] = {}
    if isinstance(requests, CompiledTrace):
        trace = requests
        for key, op, class_index in zip(
            trace.keys, trace.op_codes, trace.slab_classes
        ):
            if op != OP_GET:
                continue
            profiler = profilers.get(class_index)
            if profiler is None:
                profiler = profilers.setdefault(class_index, make())
            profiler.record(key)
            frequencies[class_index] = frequencies.get(class_index, 0) + 1
    else:
        for request in requests:
            if request.op != "get":
                continue
            class_index = classify(request)
            profiler = profilers.get(class_index)
            if profiler is None:
                profiler = profilers.setdefault(class_index, make())
            profiler.record(request.key)
            frequencies[class_index] = frequencies.get(class_index, 0) + 1
    curves = {
        class_index: HitRateCurve.from_stack_distances(profiler.distances)
        for class_index, profiler in profilers.items()
        if len(profiler.distances) >= 2
    }
    return curves, {c: frequencies[c] for c in curves}


def solver_plan_for_app(
    trace,
    app: str,
    estimator: str = "mimir",
    allocator: str = "dynacache",
    budget: Optional[float] = None,
) -> Dict[int, float]:
    """Run the Dynacache solver on one app's week of requests.

    Returns a byte plan per slab class, summing to ``budget`` (the app's
    reservation when not given).
    """
    compiled_for = getattr(trace, "compiled_for", None)
    if compiled_for is not None:
        app_stream: Union[Iterable[Request], CompiledTrace] = compiled_for(app)
    else:
        app_stream = trace.app_requests(app)
    curves_items, freqs = profile_app_classes(
        app_stream, estimator=estimator
    )
    if not curves_items:
        return {}
    if budget is None:
        budget = trace.reservations[app]
    curves_bytes = {
        class_index: curve.scale_sizes(
            GEOMETRY.chunk_size(class_index), unit="bytes"
        )
        for class_index, curve in curves_items.items()
    }
    granularity = max(
        GEOMETRY.chunk_size(class_index) for class_index in curves_bytes
    )
    granularity = min(granularity, budget / max(1, len(curves_bytes)))
    granularity = max(granularity, 64.0)
    if allocator == "dynacache":
        solver = DynacacheSolver(granularity=granularity)
    elif allocator == "lookahead":
        solver = LookAheadAllocator(granularity=granularity)
    else:
        raise ConfigurationError(f"unknown allocator {allocator!r}")
    plan = solver.allocate(curves_bytes, freqs, budget)
    return dict(plan.allocations)
