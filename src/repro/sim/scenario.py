"""The serializable simulation spec and its result.

A :class:`Scenario` is pure data -- everything needed to reproduce one
replay: which workload (by registry name plus parameters), which engine
scheme and eviction policy, per-app budget overrides, scale and seed.
``to_dict``/``from_dict`` round-trip through JSON, which is what the CLI
``run``/``sweep`` subcommands consume and what the sweep executor ships
to worker processes.

A :class:`ScenarioResult` carries what came back: per-app hit rates,
overall hit rate, replay throughput, and (when a baseline is supplied)
per-app miss reductions.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Union

from repro.common.errors import ConfigurationError
from repro.sim.defaults import FULL_SCALE

#: ``Scenario.plans`` sentinel: compute per-app Dynacache solver plans.
SOLVER_PLANS = "solver"


def miss_reduction(base_hit_rate: float, new_hit_rate: float) -> float:
    """Fraction of the baseline's misses eliminated (can be negative)."""
    base_misses = 1.0 - base_hit_rate
    if base_misses <= 0:
        return 0.0
    return (new_hit_rate - base_hit_rate) / base_misses


@dataclass
class Scenario:
    """One simulation, described as data.

    Fields:
        scheme: Engine scheme name from :data:`repro.sim.SCHEMES`.
        workload: Workload name from :data:`repro.sim.WORKLOADS`.
        policy: Eviction policy passed to the engines. The
            cliff-scaling schemes (``cliffhanger``, ``cliff-only``,
            ``hill-only``) support ``lru`` only and reject anything
            else; use ``hill`` to pair hill climbing with other
            policies.
        scale: Trace scale (key universes, budgets and request counts).
        seed: Master seed for workload generation and engine RNGs.
        apps: Optional replay subset (app *names*); the workload is
            still built whole, so per-app streams are unchanged.
        budgets: Per-app byte budgets. May be partial; apps not listed
            fall back to the workload's reservations.
        plans: Per-app ``{slab_class: bytes}`` plans for the ``planned``
            scheme, or the string ``"solver"`` to run the Dynacache
            solver on each replayed app's stream.
        workload_params: Extra keyword arguments for the workload
            builder (e.g. ``{"apps": [19]}`` for memcachier).
        engine_overrides: Extra keyword arguments for the scheme builder
            (e.g. ``{"credit_bytes": 4096.0}``).
        cluster: Optional multi-server block
            (``{"shards": N, "hash_seed": S, "replication": R,
            "virtual_nodes": V, "partitioned_replay": true,
            "parallel_workers": W}``); when
            present the replay routes keys across N shard servers by
            consistent hashing (see :mod:`repro.cluster`). Budgets are
            split evenly per shard. ``partitioned_replay`` (default
            ``true``) replays per-shard runs from a cached vectorized
            routing plan at single-server speed; ``false`` keeps the
            legacy per-request routing loop, the bit-exactness oracle
            the parity/property tests compare against.
            ``parallel_workers`` (default ``0`` = serial; requires the
            partitioned path) fans the per-shard replay loops out
            across W worker processes over shared-memory trace columns
            -- bit-identical to the serial replay, worth wall-clock
            only on multi-core machines (see
            :mod:`repro.cluster.parallel`).
        rebalance: Optional online-rebalancing block
            (``{"epoch_requests": N, "credit_bytes": B,
            "min_shard_fraction": F, "policy": "shadow"|"load"}``);
            requires a ``cluster`` block. Every N requests the replay
            moves budget credits toward the neediest shard (see
            :mod:`repro.cluster.rebalance`). ``epoch_requests: 0``
            disables it: the replay stays bit-identical to the static
            split.
        faults: Optional fault-injection block
            (``{"events": [{"kind": "crash"|"restart", "shard": S,
            "at": OFFSET}, ...], "policy": "failover"|"miss-through",
            "sample_requests": N, "recovery_epsilon": E}``); requires a
            ``cluster`` block. Crashes mask the shard out of routing
            (``failover``) or swallow its requests as tagged misses
            (``miss-through``); restarts rebuild it cold. See
            :mod:`repro.cluster.faults`. An empty ``events`` list leaves
            the replay bit-identical to the fault-free paths.
        serve: Optional live-serving block (``{"rate": R,
            "duration_s": D, "arrivals": "poisson"|"fixed",
            "backpressure": "queue"|"shed", "connections": C,
            "queue_depth": Q, "max_batch": B,
            "transport": "memory"|"tcp", "queue_deadline_s": T,
            "max_inflight": I, "retry": {...}}``); requires a
            ``cluster`` block. Instead of replaying the trace offline,
            the scenario stands up the asyncio memcached-style server
            (see :mod:`repro.serve`) and drives it open-loop at
            ``rate`` req/s for ``duration_s`` seconds; the result's
            cluster report grows a ``serve`` section with latency
            percentiles, shed counts and the queue-depth timeline. A
            ``retry`` sub-block gives the load generator's clients a
            :class:`~repro.serve.RetryPolicy` (attempts, capped
            exponential backoff, per-request deadline, retry budget,
            hedged reads). Combined with a ``faults`` block the fault
            events fire live, on the same virtual-time request-count
            axis as offline replays (``at`` offsets count requests
            served, not seconds), and the serve section grows a
            ``faults`` view: recovery metrics plus the
            p99-during-outage latency timeline.
        name: Optional label (sweeps generate one per grid point).
    """

    scheme: str = "default"
    workload: str = "memcachier"
    policy: str = "lru"
    scale: float = FULL_SCALE
    seed: int = 0
    apps: Optional[List[str]] = None
    budgets: Optional[Dict[str, float]] = None
    plans: Union[None, str, Dict[str, Dict[int, float]]] = None
    workload_params: Dict[str, Any] = field(default_factory=dict)
    engine_overrides: Dict[str, Any] = field(default_factory=dict)
    cluster: Optional[Dict[str, Any]] = None
    rebalance: Optional[Dict[str, Any]] = None
    faults: Optional[Dict[str, Any]] = None
    serve: Optional[Dict[str, Any]] = None
    name: Optional[str] = None

    def __post_init__(self) -> None:
        if not isinstance(self.scheme, str) or not self.scheme:
            raise ConfigurationError(f"scheme must be a name, got {self.scheme!r}")
        if not isinstance(self.workload, str) or not self.workload:
            raise ConfigurationError(
                f"workload must be a name, got {self.workload!r}"
            )
        if self.scale <= 0:
            raise ConfigurationError(f"scale must be positive, got {self.scale}")
        if isinstance(self.plans, str) and self.plans != SOLVER_PLANS:
            raise ConfigurationError(
                f"plans must be a dict, None or {SOLVER_PLANS!r}, "
                f"got {self.plans!r}"
            )
        if self.apps is not None:
            self.apps = [str(app) for app in self.apps]
        if self.cluster is not None:
            # Validate and normalize (defaults filled in) so round-trips
            # and sweep labels are canonical.
            from repro.cluster import ClusterConfig

            self.cluster = ClusterConfig.from_dict(self.cluster).to_dict()
        if self.rebalance is not None:
            if self.cluster is None:
                raise ConfigurationError(
                    "rebalance needs a cluster block: online rebalancing "
                    "moves budget between shards"
                )
            from repro.cluster import RebalanceConfig

            self.rebalance = RebalanceConfig.from_dict(
                self.rebalance
            ).to_dict()
        if self.faults is not None:
            if self.cluster is None:
                raise ConfigurationError(
                    "faults need a cluster block: fault injection "
                    "crashes and restarts shards"
                )
            from repro.cluster import FaultSchedule

            schedule = FaultSchedule.from_dict(self.faults)
            schedule.validate_for(self.cluster["shards"])
            if schedule.enabled and self.cluster["shards"] < 2:
                raise ConfigurationError(
                    "fault injection needs at least two shards: crashing "
                    "the only shard would leave no live shard"
                )
            self.faults = schedule.to_dict()
        if self.serve is not None:
            if self.cluster is None:
                raise ConfigurationError(
                    "serve needs a cluster block: the live server fronts "
                    "a shard cluster"
                )
            from repro.serve import ServeConfig

            self.serve = ServeConfig.from_dict(self.serve).to_dict()

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-safe dict; ``from_dict`` round-trips it."""
        return {
            "scheme": self.scheme,
            "workload": self.workload,
            "policy": self.policy,
            "scale": self.scale,
            "seed": self.seed,
            "apps": list(self.apps) if self.apps is not None else None,
            "budgets": dict(self.budgets) if self.budgets is not None else None,
            "plans": (
                {
                    app: {str(c): b for c, b in plan.items()}
                    for app, plan in self.plans.items()
                }
                if isinstance(self.plans, dict)
                else self.plans
            ),
            "workload_params": dict(self.workload_params),
            "engine_overrides": dict(self.engine_overrides),
            "cluster": dict(self.cluster) if self.cluster is not None else None,
            "rebalance": (
                dict(self.rebalance) if self.rebalance is not None else None
            ),
            "faults": (
                dict(self.faults) if self.faults is not None else None
            ),
            "serve": (
                dict(self.serve) if self.serve is not None else None
            ),
            "name": self.name,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "Scenario":
        if not isinstance(payload, dict):
            raise ConfigurationError(
                f"scenario spec must be an object, got {type(payload).__name__}"
            )
        known = {
            "scheme", "workload", "policy", "scale", "seed", "apps",
            "budgets", "plans", "workload_params", "engine_overrides",
            "cluster", "rebalance", "faults", "serve", "name",
        }
        unknown = set(payload) - known
        if unknown:
            raise ConfigurationError(
                f"unknown scenario fields: {', '.join(sorted(unknown))}"
            )
        kwargs = dict(payload)
        try:
            plans = kwargs.get("plans")
            if isinstance(plans, dict):
                # JSON turns integer slab-class keys into strings; coerce
                # back.
                kwargs["plans"] = {
                    app: {int(c): float(b) for c, b in plan.items()}
                    for app, plan in plans.items()
                }
            budgets = kwargs.get("budgets")
            if isinstance(budgets, dict):
                kwargs["budgets"] = {
                    str(app): float(b) for app, b in budgets.items()
                }
            return cls(**kwargs)
        except (TypeError, ValueError, AttributeError) as exc:
            raise ConfigurationError(f"bad scenario spec: {exc}") from None

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "Scenario":
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ConfigurationError(f"invalid scenario JSON: {exc}") from None
        return cls.from_dict(payload)

    # ------------------------------------------------------------------

    def replace(self, **changes: Any) -> "Scenario":
        """A copy with ``changes`` applied (grid-expansion helper)."""
        payload = self.to_dict()
        payload.update(changes)
        return Scenario.from_dict(payload)

    def label(self) -> str:
        """``name`` if set, else a compact workload/scheme descriptor."""
        if self.name:
            return self.name
        label = f"{self.workload}/{self.scheme}/{self.policy}@{self.scale!r}s{self.seed}"
        if self.cluster is not None:
            label += f"/{self.cluster['shards']}shards"
        if self.rebalance is not None and self.rebalance["epoch_requests"]:
            label += f"/rebal-{self.rebalance['policy']}"
        if self.faults is not None and self.faults["events"]:
            label += (
                f"/faults-{self.faults['policy']}"
                f"x{len(self.faults['events'])}"
            )
        if self.serve is not None:
            label += f"/serve-{self.serve['rate']:g}"
        return label


@dataclass
class ScenarioResult:
    """What one scenario replay produced.

    ``server`` and ``stats`` are attached (not serialized) when
    :func:`repro.sim.run_scenario` is called with ``keep_server=True``,
    for callers that need engine internals or per-class counters.
    """

    scenario: Scenario
    hit_rates: Dict[str, float]
    overall_hit_rate: float
    requests: int
    gets: int
    elapsed_seconds: float
    requests_per_sec: float
    budgets: Dict[str, float]
    miss_reductions: Optional[Dict[str, float]] = None
    #: Aggregated :meth:`repro.cluster.Cluster.report` payload (shard
    #: loads, imbalance, hot shards); None for single-server scenarios.
    cluster_report: Optional[Dict[str, Any]] = None

    def __post_init__(self) -> None:
        self.server = None
        self.stats = None
        self.cluster = None

    def miss_reductions_vs(self, baseline: "ScenarioResult") -> Dict[str, float]:
        """Per-app fraction of ``baseline``'s misses this run removed."""
        return {
            app: miss_reduction(baseline.hit_rates[app], rate)
            for app, rate in self.hit_rates.items()
            if app in baseline.hit_rates
        }

    def to_dict(self) -> Dict[str, Any]:
        return {
            "scenario": self.scenario.to_dict(),
            "hit_rates": dict(self.hit_rates),
            "overall_hit_rate": self.overall_hit_rate,
            "requests": self.requests,
            "gets": self.gets,
            "elapsed_seconds": self.elapsed_seconds,
            "requests_per_sec": self.requests_per_sec,
            "budgets": dict(self.budgets),
            "miss_reductions": (
                dict(self.miss_reductions)
                if self.miss_reductions is not None
                else None
            ),
            "cluster_report": (
                dict(self.cluster_report)
                if self.cluster_report is not None
                else None
            ),
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "ScenarioResult":
        return cls(
            scenario=Scenario.from_dict(payload["scenario"]),
            hit_rates=dict(payload["hit_rates"]),
            overall_hit_rate=payload["overall_hit_rate"],
            requests=payload["requests"],
            gets=payload["gets"],
            elapsed_seconds=payload["elapsed_seconds"],
            requests_per_sec=payload["requests_per_sec"],
            budgets=dict(payload["budgets"]),
            miss_reductions=(
                dict(payload["miss_reductions"])
                if payload.get("miss_reductions") is not None
                else None
            ),
            cluster_report=(
                dict(payload["cluster_report"])
                if payload.get("cluster_report") is not None
                else None
            ),
        )

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    def render(self) -> str:
        """A small plain-text summary table."""
        lines = [
            f"== scenario: {self.scenario.label()} ==",
            f"{'app':<12} {'budget_mb':>10} {'hit_rate':>9}"
            + ("  miss_reduction" if self.miss_reductions else ""),
        ]
        for app in sorted(self.hit_rates):
            line = (
                f"{app:<12} {self.budgets[app] / (1 << 20):>10.2f} "
                f"{self.hit_rates[app]:>9.4f}"
            )
            if self.miss_reductions and app in self.miss_reductions:
                line += f"  {self.miss_reductions[app]:>14.4f}"
            lines.append(line)
        lines.append(
            f"overall hit rate {self.overall_hit_rate:.4f}; "
            f"{self.requests:,} requests in {self.elapsed_seconds:.2f}s "
            f"= {self.requests_per_sec:,.0f} req/s"
        )
        if self.cluster_report is not None:
            from repro.cluster import render_cluster_report

            lines.extend(render_cluster_report(self.cluster_report))
        return "\n".join(lines)
