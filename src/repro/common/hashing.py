"""Deterministic hashing helpers.

The cliff-scaling algorithm routes each key to either the left or the right
partition of a queue by hashing the key to the unit interval and comparing
against the request ratio (Talus-style partitioning, paper section 4.2).
The routing must be:

* **deterministic across processes** -- Python's builtin ``hash`` is salted
  per interpreter run (PYTHONHASHSEED), so it cannot be used;
* **stable under repartitioning** -- when the ratio moves from 0.48 to 0.50
  only the keys hashing into ``[0.48, 0.50)`` may switch queues;
* **independent per salt** -- different queues must not partition the key
  space identically, otherwise correlated keys always co-locate.

We use a splitmix64-style finalizer, which is fast, has excellent avalanche
behaviour, and needs no external dependencies.
"""

from __future__ import annotations

_MASK64 = (1 << 64) - 1


def _splitmix64(x: int) -> int:
    """One round of the splitmix64 finalizer (public-domain constants)."""
    x = (x + 0x9E3779B97F4A7C15) & _MASK64
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _MASK64
    return x ^ (x >> 31)


def stable_hash_u64(key: object, salt: int = 0) -> int:
    """Hash ``key`` to a uniform 64-bit integer, deterministically.

    ``key`` may be a string, bytes or int; other types are hashed through
    their ``repr``, which is stable for the key types used in traces.
    """
    if isinstance(key, int):
        seed = key & _MASK64
    else:
        if isinstance(key, str):
            data = key.encode("utf-8")
        elif isinstance(key, bytes):
            data = key
        else:
            data = repr(key).encode("utf-8")
        # FNV-1a over the bytes gives a well-mixed 64-bit seed cheaply.
        seed = 0xCBF29CE484222325
        for byte in data:
            seed = ((seed ^ byte) * 0x100000001B3) & _MASK64
    return _splitmix64(seed ^ _splitmix64(salt & _MASK64))


def unit_interval_hash(key: object, salt: int = 0) -> float:
    """Hash ``key`` to a float uniform in ``[0, 1)``.

    Used to split a request stream between two partitions: a key goes left
    iff ``unit_interval_hash(key, salt) < left_fraction``. Because the hash
    is a fixed function of the key, moving the threshold moves only the
    keys whose hash lies between the old and new thresholds.
    """
    return stable_hash_u64(key, salt) / float(1 << 64)
