"""Small mathematical helpers shared across the library.

The centerpiece is :func:`concave_hull`, the least concave majorant of a set
of (x, y) points. Talus (and our cliff-scaling evaluation) interpolates hit
rates along this hull: any point on the hull between two anchor sizes is
achievable by partitioning a queue between those two sizes (paper
section 4.2, Figure 4).
"""

from __future__ import annotations

from typing import List, Sequence, Tuple


def clamp(value: float, low: float, high: float) -> float:
    """Clamp ``value`` into ``[low, high]``.

    Raises ``ValueError`` if the interval is empty, which always indicates
    a configuration bug at the call site.
    """
    if low > high:
        raise ValueError(f"empty clamp interval [{low}, {high}]")
    if value < low:
        return low
    if value > high:
        return high
    return value


def interpolate(
    xs: Sequence[float], ys: Sequence[float], x: float
) -> float:
    """Piecewise-linear interpolation of ``(xs, ys)`` at ``x``.

    ``xs`` must be sorted ascending. Values outside the range are clamped
    to the boundary values (a hit-rate curve is flat beyond its last
    measured size and zero-ish before its first).
    """
    if len(xs) != len(ys):
        raise ValueError("xs and ys must have equal length")
    if not xs:
        raise ValueError("cannot interpolate empty curve")
    if x <= xs[0]:
        return ys[0]
    if x >= xs[-1]:
        return ys[-1]
    # Binary search for the bracketing segment.
    lo, hi = 0, len(xs) - 1
    while hi - lo > 1:
        mid = (lo + hi) // 2
        if xs[mid] <= x:
            lo = mid
        else:
            hi = mid
    x0, x1 = xs[lo], xs[hi]
    y0, y1 = ys[lo], ys[hi]
    if x1 == x0:
        return max(y0, y1)
    t = (x - x0) / (x1 - x0)
    return y0 + t * (y1 - y0)


def concave_hull(
    points: Sequence[Tuple[float, float]]
) -> List[Tuple[float, float]]:
    """Return the least concave majorant (upper convex hull) of ``points``.

    The result is the subsequence of input points that form the upper hull,
    sorted by x. Evaluating the hull by linear interpolation between
    consecutive hull points gives, for every x, the highest y reachable by
    linear interpolation between any two input points -- exactly the hit
    rate Talus can synthesize by partitioning (paper section 4.2).

    Duplicated x values keep only the highest y. The input need not be
    sorted.
    """
    if not points:
        return []
    best_y: dict = {}
    for x, y in points:
        if x not in best_y or y > best_y[x]:
            best_y[x] = y
    ordered = sorted(best_y.items())
    if len(ordered) <= 2:
        return [(float(x), float(y)) for x, y in ordered]
    hull: List[Tuple[float, float]] = []
    for x, y in ordered:
        # Pop while the middle point of the last three lies on or below the
        # chord between its neighbours (i.e. it is not a strict upper
        # vertex). Cross-product test keeps the hull concave.
        while len(hull) >= 2:
            (x1, y1), (x2, y2) = hull[-2], hull[-1]
            cross = (x2 - x1) * (y - y1) - (y2 - y1) * (x - x1)
            if cross >= 0:
                hull.pop()
            else:
                break
        hull.append((float(x), float(y)))
    return hull


class ExponentialMovingAverage:
    """A numerically simple EMA used for smoothed online statistics.

    ``alpha`` is the weight of each new observation. Before the first
    update, :attr:`value` is ``None``.
    """

    def __init__(self, alpha: float) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        self.alpha = alpha
        self.value: float | None = None

    def update(self, observation: float) -> float:
        """Fold in ``observation`` and return the new average."""
        if self.value is None:
            self.value = float(observation)
        else:
            self.value += self.alpha * (observation - self.value)
        return self.value

    def reset(self) -> None:
        """Forget all history."""
        self.value = None
