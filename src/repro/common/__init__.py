"""Shared utilities for the Cliffhanger reproduction.

This package holds the small, dependency-free building blocks used across
the cache simulator, the profilers and the allocation algorithms:

* :mod:`repro.common.constants` -- paper-derived constants (shadow-queue
  sizes, credit sizes, slab geometry, per-item overheads).
* :mod:`repro.common.errors` -- the exception hierarchy.
* :mod:`repro.common.hashing` -- deterministic, seed-stable hashing used to
  route keys between partitioned queues (Python's builtin ``hash`` is salted
  per process and therefore unusable for reproducible simulation).
* :mod:`repro.common.mathutils` -- concave hulls, interpolation, clamping and
  exponential moving averages.
"""

from repro.common.constants import (
    AVG_KEY_BYTES,
    CLIFF_MIN_QUEUE_ITEMS,
    CLIFF_PROBE_ITEMS,
    DEFAULT_CREDIT_BYTES,
    HILL_CLIMB_SHADOW_BYTES,
    ITEM_OVERHEAD_BYTES,
)
from repro.common.errors import (
    AllocationError,
    CacheError,
    ConfigurationError,
    ReproError,
    TraceFormatError,
)
from repro.common.hashing import stable_hash_u64, unit_interval_hash
from repro.common.mathutils import (
    clamp,
    concave_hull,
    ExponentialMovingAverage,
    interpolate,
)

__all__ = [
    "AVG_KEY_BYTES",
    "CLIFF_MIN_QUEUE_ITEMS",
    "CLIFF_PROBE_ITEMS",
    "DEFAULT_CREDIT_BYTES",
    "HILL_CLIMB_SHADOW_BYTES",
    "ITEM_OVERHEAD_BYTES",
    "AllocationError",
    "CacheError",
    "ConfigurationError",
    "ReproError",
    "TraceFormatError",
    "stable_hash_u64",
    "unit_interval_hash",
    "clamp",
    "concave_hull",
    "ExponentialMovingAverage",
    "interpolate",
]
