"""Exception hierarchy for the Cliffhanger reproduction.

All library errors derive from :class:`ReproError` so callers can catch a
single base class. Each subclass marks one subsystem; none of them are ever
raised for ordinary cache misses (misses are results, not errors).
"""


class ReproError(Exception):
    """Base class for every error raised by this library."""


class ConfigurationError(ReproError):
    """A configuration value is invalid (negative capacity, empty slab
    ladder, ratio outside ``[0, 1]``, ...)."""


class CacheError(ReproError):
    """The cache substrate was driven into an inconsistent state, e.g.
    inserting an item larger than the largest slab chunk."""


class AllocationError(ReproError):
    """An allocation algorithm could not produce a feasible plan, e.g. the
    per-queue minimums already exceed the total budget."""


class TraceFormatError(ReproError):
    """A trace file or trace record could not be parsed."""
