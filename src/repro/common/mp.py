"""Explicit multiprocessing start-method policy for worker pools.

Every process pool in the repo (:class:`repro.sim.sweep.Sweep`, the
cluster's parallel replay workers) must pin its start method explicitly
instead of inheriting the platform default: an implicit default means
worker behavior silently differs between Linux (fork) and macOS/Windows
(spawn), and fork-only code paths rot undetected. This module is the
single place that policy lives.

The default is ``fork`` where the platform offers it: workers inherit
compiled traces, shared-memory handles, and the warmed trace cache for
free, and process startup is milliseconds instead of a fresh interpreter
plus numpy import per worker. ``spawn`` is always available as an
explicit override -- the parity tests exercise it so nothing quietly
becomes fork-only.
"""

from __future__ import annotations

import multiprocessing
from multiprocessing.context import BaseContext
from typing import Optional

from repro.common.errors import ConfigurationError

#: The start method pools use when the caller does not override one:
#: ``fork`` where available (Linux), else ``spawn``.
DEFAULT_START_METHOD: str = (
    "fork"
    if "fork" in multiprocessing.get_all_start_methods()
    else "spawn"
)


def get_mp_context(start_method: Optional[str] = None) -> BaseContext:
    """An explicit multiprocessing context, never the implicit default.

    ``start_method=None`` resolves to :data:`DEFAULT_START_METHOD`;
    anything else must be a method the platform supports.
    """
    method = start_method or DEFAULT_START_METHOD
    supported = multiprocessing.get_all_start_methods()
    if method not in supported:
        raise ConfigurationError(
            f"start method {method!r} not supported here; "
            f"available: {', '.join(supported)}"
        )
    return multiprocessing.get_context(method)
