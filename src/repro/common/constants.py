"""Constants taken from the Cliffhanger paper and the Memcached ecosystem.

Every constant documents the paper section it comes from so that readers can
trace a magic number back to its source. All of them can be overridden
through the configuration dataclasses; these are only the defaults.
"""

# --------------------------------------------------------------------------
# Shadow-queue geometry (paper section 5.1 / 5.3 / 5.7)
# --------------------------------------------------------------------------

#: Size of the hill-climbing shadow queue, measured in the bytes of the
#: requests it *represents* (keys only are stored). Section 5.3: "We found
#: little variance in the behavior of the hill climbing algorithm when we
#: use shadow queues over 1 MB."
HILL_CLIMB_SHADOW_BYTES = 1 << 20

#: Number of items in each cliff-scaling probe region. Section 5.1: "our
#: implementation tracks whether it sees hits in the last part of the queue
#: (the last 128 items). In order to track hits to the right of the pointer,
#: a 128 item shadow queue is appended after the physical queue."
CLIFF_PROBE_ITEMS = 128

#: The cliff-scaling algorithm only runs on queues with more items than
#: this. Section 5.1: "The implementation only runs the cliff scaling
#: algorithm when the queue is relatively large (over 1000 items)."
CLIFF_MIN_QUEUE_ITEMS = 1000

#: Default credit granted on a shadow-queue hit, in bytes. Section 5.3:
#: "we ... found that 1-4 KB provide the highest hit rates"; Figure 8 uses
#: 4 KB credits.
DEFAULT_CREDIT_BYTES = 4096

#: Average key size observed in the Memcachier trace (section 5.7), used
#: for shadow-queue memory-overhead accounting.
AVG_KEY_BYTES = 14

# --------------------------------------------------------------------------
# Slab geometry (paper section 2, Memcached defaults)
# --------------------------------------------------------------------------

#: Smallest slab-class chunk size in bytes. The paper's example classes are
#: "< 128B, 128-256B, etc."; Memcached's smallest chunk is in the tens of
#: bytes. We start the power-of-two ladder at 64 bytes.
MIN_CHUNK_BYTES = 64

#: Largest slab-class chunk size in bytes (Memcached's default item limit
#: is 1 MB).
MAX_CHUNK_BYTES = 1 << 20

#: Number of slab classes in the default power-of-two ladder
#: (64 B .. 1 MB inclusive). Section 5.7: "In Memcachier applications have
#: 15 slab classes at most."
NUM_SLAB_CLASSES = 15

#: Fixed per-item metadata overhead, mirroring Memcached's item header
#: (pointers, CAS, flags). Counted into the chunk an item needs.
ITEM_OVERHEAD_BYTES = 48

# --------------------------------------------------------------------------
# Simulation defaults
# --------------------------------------------------------------------------

#: Smallest capacity (in bytes) the hill climber will shrink a queue to.
#: Prevents starving a queue to the point where its shadow queue can never
#: observe demand again.
MIN_QUEUE_BYTES = 4096

#: Number of credits (in bytes) a queue must accumulate before physical
#: memory is actually moved. Moving memory on every single shadow hit would
#: thrash; the paper accumulates credits and re-allocates "once a queue
#: reaches a certain amount of credits" (section 4.1).
CREDIT_TRANSFER_THRESHOLD_BYTES = DEFAULT_CREDIT_BYTES

# --------------------------------------------------------------------------
# Cross-shard rebalancing defaults (beyond the paper: the paper's algorithm
# stops at the single-server boundary, section 4.3)
# --------------------------------------------------------------------------

#: Requests between cross-shard rebalance decisions. Shard-level moves are
#: epoch-driven rather than per-shadow-hit: a shard aggregates many queues,
#: so per-request decisions would thrash on noise a single queue never sees.
DEFAULT_EPOCH_REQUESTS = 1000

#: Bytes moved between shards per epoch decision. Coarser than the paper's
#: per-queue 4 KB credit because one transfer re-divides a whole server's
#: reservation, not a single slab class's.
DEFAULT_REBALANCE_CREDIT_BYTES = 16 * DEFAULT_CREDIT_BYTES

#: Fraction of its even split (total budget / shards) below which a shard
#: is never shrunk, so a cooled-down shard can still observe returning
#: demand -- the shard-level analogue of :data:`MIN_QUEUE_BYTES`.
DEFAULT_MIN_SHARD_FRACTION = 0.1

#: In-process LRU entries for cached routing plans
#: (:meth:`repro.workloads.compiled.TraceCache.get_or_build_plan`). Plans
#: are one int32 column per (trace, ring) pair -- far smaller than
#: compiled traces -- so the plan LRU can afford more entries than the
#: trace LRU: a shard-count sweep alone holds one plan per shard count.
DEFAULT_PLAN_CACHE_ENTRIES = 8
