"""Determinism rules for the replay path.

Replay results must be bit-identical run to run at a fixed seed -- the
whole parity discipline (worktree table diffs, Hypothesis oracles)
depends on it. Wall-clock reads, the process-global ``random`` module,
OS entropy and unordered ``set`` iteration all smuggle run-to-run
variation into tables, so they are banned statically inside the replay
packages (``cache/``, ``cluster/``, ``workloads/``, ``sim/``). RNGs
there must be constructed from an explicit seed
(``random.Random(seed)``, ``numpy.random.default_rng(seed)``).
"""

from __future__ import annotations

import ast
from typing import Iterable, Optional

from repro.lint.engine import FileContext, Finding, Rule

#: Callables that read wall clock or OS entropy: never reproducible.
_BANNED_CALLS = {
    "time.time": "wall-clock read",
    "time.time_ns": "wall-clock read",
    "datetime.datetime.now": "wall-clock read",
    "datetime.datetime.utcnow": "wall-clock read",
    "datetime.datetime.today": "wall-clock read",
    "datetime.date.today": "wall-clock read",
    "os.urandom": "OS entropy",
    "uuid.uuid1": "host/time dependent",
    "uuid.uuid4": "OS entropy",
    "random.SystemRandom": "OS entropy",
    "numpy.random.SystemRandom": "OS entropy",
}

#: numpy.random attributes that are fine: explicit-seed construction.
_NUMPY_SEEDED = {"default_rng", "Generator", "SeedSequence", "PCG64"}


class DeterminismRule(Rule):
    name = "determinism"
    summary = (
        "replay-path modules (cache/, cluster/, workloads/, sim/) must "
        "not read wall clock or OS entropy, use the process-global "
        "random module, construct unseeded RNGs, or iterate unordered "
        "sets"
    )

    def check_file(self, ctx: FileContext) -> Iterable[Finding]:
        if not ctx.is_replay_path:
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                message = self._check_call(ctx, node)
                if message is not None:
                    yield Finding(
                        ctx.display_path, node.lineno, self.name, message
                    )
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                message = _set_iteration(ctx, node.iter)
                if message is not None:
                    yield Finding(
                        ctx.display_path, node.iter.lineno, self.name, message
                    )
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                                   ast.GeneratorExp)):
                for generator in node.generators:
                    message = _set_iteration(ctx, generator.iter)
                    if message is not None:
                        yield Finding(
                            ctx.display_path,
                            generator.iter.lineno,
                            self.name,
                            message,
                        )

    def _check_call(self, ctx: FileContext, node: ast.Call) -> Optional[str]:
        path = ctx.resolve_call_path(node.func)
        if path is None:
            return None
        reason = _BANNED_CALLS.get(path)
        if reason is not None:
            return f"call to {path} ({reason}) breaks replay determinism"
        if path.startswith("secrets."):
            return f"call to {path} (OS entropy) breaks replay determinism"
        if path.startswith("random."):
            tail = path[len("random."):]
            if tail == "Random":
                if not node.args and not node.keywords:
                    return (
                        "random.Random() without an explicit seed; pass "
                        "the seed parameter through"
                    )
                return None
            if tail[:1].islower():
                return (
                    f"{path} uses the process-global RNG; thread a seeded "
                    "random.Random through instead"
                )
            return None
        if path.startswith("numpy.random."):
            tail = path[len("numpy.random."):]
            if tail == "default_rng":
                if not node.args and not node.keywords:
                    return (
                        "numpy.random.default_rng() without an explicit "
                        "seed; pass the seed parameter through"
                    )
                return None
            if tail.split(".")[0] not in _NUMPY_SEEDED:
                return (
                    f"{path} uses numpy's process-global RNG; use "
                    "numpy.random.default_rng(seed)"
                )
        return None


def _set_iteration(ctx: FileContext, iterable: ast.AST) -> Optional[str]:
    """Message when ``iterable`` is statically known to be an unordered
    set (set display, ``set(...)``/``frozenset(...)`` call, or a set
    comprehension); None otherwise. ``sorted()`` wrapping is the fix and
    naturally never matches here."""
    if isinstance(iterable, ast.Set):
        return (
            "iterating a set literal: ordering is unspecified and can "
            "leak into replay output; iterate a sorted() or tuple form"
        )
    if isinstance(iterable, ast.SetComp):
        return (
            "iterating a set comprehension: ordering is unspecified; "
            "wrap in sorted() or build a list"
        )
    if isinstance(iterable, ast.Call):
        path = ctx.resolve_call_path(iterable.func)
        if path in ("set", "frozenset"):
            return (
                f"iterating {path}(...): ordering is unspecified and can "
                "leak into replay output; wrap in sorted()"
            )
    return None
