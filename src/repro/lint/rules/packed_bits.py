"""Packed outcome-code layout consistency.

``repro.cache.stats`` packs (hit, shadow_hit, slab_class, dead,
evicted) into one int; every engine, the cluster fault layer and the
serving layer build or decode these codes. A mis-stacked bit corrupts
per-(app, class) counters without crashing anything -- exactly the kind
of silent parity breaker static analysis exists to catch. This rule
evaluates the layout constants in ``cache/stats.py`` and checks:

* every ``OUTCOME_*`` flag is a single bit and no two flags overlap;
* the slab-class field (``CLASS_MASK << CLASS_SHIFT``) overlaps no flag;
* the open-ended eviction count sits above everything
  (``EVICTED_SHIFT`` clears every flag and the class field);
* no other module re-defines the layout names (consumers must import
  them from ``repro.cache.stats``, the single source of truth).
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Tuple

from repro.lint.engine import FileContext, Finding, Project, Rule

STATS_SUFFIX = "repro/cache/stats.py"

_LAYOUT_NAMES = ("CLASS_SHIFT", "CLASS_MASK", "EVICTED_SHIFT")


def _eval_int(node: ast.AST, env: Dict[str, int]) -> Optional[int]:
    """Evaluate a constant integer expression (literals, named layout
    constants, and the shift/mask operators the layout uses)."""
    if isinstance(node, ast.Constant) and isinstance(node.value, int):
        return node.value
    if isinstance(node, ast.Name):
        return env.get(node.id)
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
        inner = _eval_int(node.operand, env)
        return -inner if inner is not None else None
    if isinstance(node, ast.BinOp):
        left = _eval_int(node.left, env)
        right = _eval_int(node.right, env)
        if left is None or right is None:
            return None
        op = node.op
        if isinstance(op, ast.LShift):
            return left << right
        if isinstance(op, ast.RShift):
            return left >> right
        if isinstance(op, ast.BitOr):
            return left | right
        if isinstance(op, ast.BitAnd):
            return left & right
        if isinstance(op, ast.BitXor):
            return left ^ right
        if isinstance(op, ast.Add):
            return left + right
        if isinstance(op, ast.Sub):
            return left - right
        if isinstance(op, ast.Mult):
            return left * right
    return None


def _layout_constants(
    ctx: FileContext,
) -> Tuple[Dict[str, Tuple[int, int]], Dict[str, int]]:
    """(name -> (value, line)) for OUTCOME_*/layout names assigned at
    module level, plus a plain evaluation environment."""
    env: Dict[str, int] = {}
    found: Dict[str, Tuple[int, int]] = {}
    for node in ctx.tree.body:
        if not isinstance(node, ast.Assign) or len(node.targets) != 1:
            continue
        target = node.targets[0]
        if not isinstance(target, ast.Name):
            continue
        value = _eval_int(node.value, env)
        if value is None:
            continue
        env[target.id] = value
        if target.id.startswith("OUTCOME_") or target.id in _LAYOUT_NAMES:
            found[target.id] = (value, node.lineno)
    return found, env


class PackedBitOverlapRule(Rule):
    name = "packed-bit-overlap"
    summary = (
        "the OUTCOME_* flags and CLASS/EVICTED field layout in "
        "cache/stats.py must not overlap, and no other module may "
        "re-define the layout names"
    )

    def check_project(self, project: Project) -> Iterable[Finding]:
        stats = project.find(STATS_SUFFIX)
        if stats is not None:
            yield from self._check_layout(stats)
        for ctx in project.files:
            if ctx is stats or not ctx.is_src:
                continue
            yield from self._check_redefinitions(ctx)

    # ------------------------------------------------------------------

    def _check_layout(self, ctx: FileContext) -> Iterable[Finding]:
        constants, _env = _layout_constants(ctx)
        flags: List[Tuple[str, int, int]] = [
            (name, value, line)
            for name, (value, line) in sorted(constants.items())
            if name.startswith("OUTCOME_")
        ]
        for name, value, line in flags:
            if value <= 0 or value & (value - 1):
                yield Finding(
                    ctx.display_path,
                    line,
                    self.name,
                    f"{name} = {value:#x} is not a single flag bit",
                )
        for i, (name_a, value_a, _line_a) in enumerate(flags):
            for name_b, value_b, line_b in flags[i + 1:]:
                if value_a & value_b:
                    yield Finding(
                        ctx.display_path,
                        line_b,
                        self.name,
                        f"{name_a} and {name_b} share bits "
                        f"({value_a & value_b:#x})",
                    )

        class_field = None
        if "CLASS_SHIFT" in constants and "CLASS_MASK" in constants:
            shift, shift_line = constants["CLASS_SHIFT"]
            mask, _ = constants["CLASS_MASK"]
            class_field = mask << shift
            for name, value, _line in flags:
                if value & class_field:
                    yield Finding(
                        ctx.display_path,
                        shift_line,
                        self.name,
                        f"slab-class field (CLASS_MASK << CLASS_SHIFT = "
                        f"{class_field:#x}) overlaps flag {name}",
                    )

        if "EVICTED_SHIFT" in constants:
            evicted_shift, line = constants["EVICTED_SHIFT"]
            below = (1 << evicted_shift) - 1
            occupied = 0
            for _name, value, _line in flags:
                occupied |= value
            if class_field is not None:
                occupied |= class_field
            if occupied & ~below:
                yield Finding(
                    ctx.display_path,
                    line,
                    self.name,
                    "eviction count (bits >= EVICTED_SHIFT = "
                    f"{evicted_shift}) overlaps flag or class bits "
                    f"({occupied & ~below:#x}); raise EVICTED_SHIFT",
                )

    def _check_redefinitions(self, ctx: FileContext) -> Iterable[Finding]:
        imported_from_stats = {
            local
            for local, origin in ctx.import_paths.items()
            if origin.startswith("repro.cache.stats.")
        }
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Assign):
                continue
            for target in node.targets:
                if not isinstance(target, ast.Name):
                    continue
                name = target.id
                if not (
                    name.startswith("OUTCOME_") or name in _LAYOUT_NAMES
                ):
                    continue
                if name in imported_from_stats:
                    message = (
                        f"{name} is imported from repro.cache.stats but "
                        "re-assigned here; the packed layout has one "
                        "source of truth"
                    )
                else:
                    message = (
                        f"{name} re-defines a packed outcome layout name "
                        "outside repro.cache.stats; import it instead"
                    )
                yield Finding(
                    ctx.display_path, node.lineno, self.name, message
                )
