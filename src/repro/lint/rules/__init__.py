"""Rule registry for ``repro.lint``.

Every rule is registered here by name; the CLI's ``--select``/
``--ignore`` and the ``# repro-lint: ignore[...]`` comments use these
names. ``unused-suppression`` is implemented by the engine's
suppression audit rather than a Rule subclass, but is listed so
``--list-rules`` documents it.
"""

from __future__ import annotations

from typing import Dict, List

from repro.lint.engine import Rule
from repro.lint.rules.asyncio_rules import (
    AsyncBlockingCallRule,
    DeprecatedEventLoopRule,
    UnawaitedCoroutineRule,
)
from repro.lint.rules.determinism import DeterminismRule
from repro.lint.rules.hygiene import NoAssertInSrcRule, UnusedImportRule
from repro.lint.rules.packed_bits import PackedBitOverlapRule
from repro.lint.rules.schema_sync import (
    RegistryDocSyncRule,
    ScenarioSchemaSyncRule,
)

#: Engine-level pseudo-rule: stale ``# repro-lint: ignore[...]`` comments.
UNUSED_SUPPRESSION = "unused-suppression"
UNUSED_SUPPRESSION_SUMMARY = (
    "every inline suppression must silence a real finding; stale ones "
    "are findings themselves (engine-level audit)"
)


def all_rules() -> List[Rule]:
    """Fresh instances of every registered rule, in listing order."""
    return [
        DeterminismRule(),
        AsyncBlockingCallRule(),
        UnawaitedCoroutineRule(),
        DeprecatedEventLoopRule(),
        PackedBitOverlapRule(),
        RegistryDocSyncRule(),
        ScenarioSchemaSyncRule(),
        NoAssertInSrcRule(),
        UnusedImportRule(),
    ]


def rules_by_name() -> Dict[str, Rule]:
    return {rule.name: rule for rule in all_rules()}


def rule_summaries() -> Dict[str, str]:
    """Name -> one-line summary, including the engine-level audit."""
    summaries = {rule.name: rule.summary for rule in all_rules()}
    summaries[UNUSED_SUPPRESSION] = UNUSED_SUPPRESSION_SUMMARY
    return summaries
