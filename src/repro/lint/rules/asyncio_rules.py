"""Asyncio-hygiene rules for the serving layer.

``repro.serve`` runs a single event loop per server process: one
blocking call inside a coroutine stalls every connection behind it, and
a coroutine called without ``await`` silently does nothing -- both are
invisible to the replay parity tests because they only distort latency
or drop work under live load.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator, List, Optional, Tuple

from repro.lint.engine import FileContext, Finding, Rule

#: Synchronous calls that block the event loop when made from a
#: coroutine. Matched against resolved dotted origins.
_BLOCKING_CALLS = {
    "time.sleep": "use await asyncio.sleep(...)",
    "socket.create_connection": "use asyncio.open_connection(...)",
    "socket.socket": "use asyncio streams or loop.sock_* APIs",
    "subprocess.run": "use asyncio.create_subprocess_exec(...)",
    "subprocess.call": "use asyncio.create_subprocess_exec(...)",
    "subprocess.check_call": "use asyncio.create_subprocess_exec(...)",
    "subprocess.check_output": "use asyncio.create_subprocess_exec(...)",
    "subprocess.Popen": "use asyncio.create_subprocess_exec(...)",
    "os.system": "use asyncio.create_subprocess_shell(...)",
    "input": "blocking stdin read",
}

#: Prefixes of libraries that are synchronous through and through.
_BLOCKING_PREFIXES = ("requests.", "urllib.request.")

def _async_function_bodies(
    tree: ast.AST,
) -> Iterator[Tuple[ast.AsyncFunctionDef, List[ast.stmt]]]:
    """Yield each ``async def`` with its body, outermost first.

    Nested plain ``def``s inside a coroutine run synchronously on their
    own terms (often as executor targets), so their bodies are not
    treated as coroutine context.
    """
    stack: List[ast.AST] = [tree]
    while stack:
        node = stack.pop()
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.AsyncFunctionDef):
                yield child, child.body
            if not isinstance(child, ast.FunctionDef):
                stack.append(child)


def _walk_coroutine(body: List[ast.stmt]) -> Iterator[ast.AST]:
    """Walk statements that execute in coroutine context (skipping
    nested plain ``def`` bodies; nested ``async def`` are yielded by the
    outer iteration)."""
    stack: List[ast.AST] = list(body)
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        stack.extend(ast.iter_child_nodes(node))


class AsyncBlockingCallRule(Rule):
    name = "async-blocking-call"
    summary = (
        "no blocking calls (time.sleep, sync sockets/subprocess, bare "
        "open) inside async def: one stalled coroutine stalls the whole "
        "event loop"
    )

    def check_file(self, ctx: FileContext) -> Iterable[Finding]:
        for _func, body in _async_function_bodies(ctx.tree):
            for node in _walk_coroutine(body):
                if not isinstance(node, ast.Call):
                    continue
                message = self._blocking_message(ctx, node)
                if message is not None:
                    yield Finding(
                        ctx.display_path, node.lineno, self.name, message
                    )

    def _blocking_message(
        self, ctx: FileContext, node: ast.Call
    ) -> Optional[str]:
        path = ctx.resolve_call_path(node.func)
        if path is None:
            return None
        hint = _BLOCKING_CALLS.get(path)
        if hint is not None:
            return f"blocking call {path} inside async def; {hint}"
        for prefix in _BLOCKING_PREFIXES:
            if path.startswith(prefix):
                return (
                    f"blocking call {path} inside async def; run it in an "
                    "executor"
                )
        if path == "open":
            return (
                "blocking file open() inside async def; read it before "
                "entering the coroutine or use an executor"
            )
        return None


class DeprecatedEventLoopRule(Rule):
    name = "deprecated-event-loop"
    summary = (
        "asyncio.get_event_loop() is deprecated outside a running loop; "
        "use asyncio.run() / asyncio.get_running_loop()"
    )

    def check_file(self, ctx: FileContext) -> Iterable[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            path = ctx.resolve_call_path(node.func)
            if path == "asyncio.get_event_loop":
                yield Finding(
                    ctx.display_path,
                    node.lineno,
                    self.name,
                    "asyncio.get_event_loop() is deprecated; use "
                    "asyncio.get_running_loop() inside coroutines or "
                    "asyncio.run() at the top level",
                )


class UnawaitedCoroutineRule(Rule):
    name = "unawaited-coroutine"
    summary = (
        "calling an async def as a bare statement creates a coroutine "
        "and throws it away; await it or hand it to create_task"
    )

    def check_file(self, ctx: FileContext) -> Iterable[Finding]:
        # Matching is deliberately scoped to calls whose target is
        # statically known: bare names resolving to a module-level
        # async def in the same file, and ``self.<method>()`` where the
        # enclosing class defines ``async def <method>``. Duck-typed
        # receivers (``writer.close()``) are skipped -- many stdlib
        # methods share names with local coroutines.
        module_async = {
            node.name
            for node in ctx.tree.body
            if isinstance(node, ast.AsyncFunctionDef)
        }
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ClassDef):
                yield from self._check_class(ctx, node)
            elif isinstance(node, ast.Expr):
                name = self._bare_call_name(ctx, node.value, module_async)
                if name is not None:
                    yield Finding(
                        ctx.display_path,
                        node.value.lineno,
                        self.name,
                        f"result of async def {name!r} is discarded "
                        "without await; the coroutine never runs",
                    )

    def _check_class(
        self, ctx: FileContext, node: ast.ClassDef
    ) -> Iterable[Finding]:
        async_methods = {
            statement.name
            for statement in node.body
            if isinstance(statement, ast.AsyncFunctionDef)
        }
        if not async_methods:
            return
        for inner in ast.walk(node):
            if not isinstance(inner, ast.Expr):
                continue
            call = inner.value
            if not isinstance(call, ast.Call):
                continue
            func = call.func
            if (
                isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and func.value.id == "self"
                and func.attr in async_methods
            ):
                yield Finding(
                    ctx.display_path,
                    call.lineno,
                    self.name,
                    f"result of async def {func.attr!r} is discarded "
                    "without await; the coroutine never runs",
                )

    @staticmethod
    def _bare_call_name(
        ctx: FileContext, value: ast.expr, module_async: set
    ) -> Optional[str]:
        if not isinstance(value, ast.Call):
            return None
        func = value.func
        if (
            isinstance(func, ast.Name)
            and func.id in module_async
            and func.id not in ctx.import_paths
        ):
            return func.id
        return None
