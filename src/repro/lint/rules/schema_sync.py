"""Registry/documentation and scenario-schema consistency rules.

Two cross-file invariants keep the data-driven surface honest:

* every ``@register_scheme``/``@register_workload`` name must carry a
  one-line note in the ``SCHEME_NOTES``/``WORKLOAD_NOTES`` tables that
  ``python -m repro.experiments --list`` renders (and no note may
  outlive its registration);
* every serializable config dataclass must keep its field list, its
  ``to_dict`` payload and its ``from_dict`` ``known``-fields set in
  lock-step, so JSON round-trips cannot silently drop a field.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.lint.engine import FileContext, Finding, Project, Rule

CLI_SUFFIX = "repro/experiments/cli.py"

_REGISTRARS = {
    "register_scheme": "SCHEME_NOTES",
    "register_workload": "WORKLOAD_NOTES",
}


def _decorator_registrations(
    project: Project,
) -> List[Tuple[str, str, str, int]]:
    """(kind, name, path, line) for every registration decorator."""
    registrations = []
    for ctx in project.files:
        if not ctx.is_src:
            continue
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.ClassDef)):
                continue
            for decorator in node.decorator_list:
                if not isinstance(decorator, ast.Call):
                    continue
                func = decorator.func
                if isinstance(func, ast.Attribute):
                    registrar = func.attr
                elif isinstance(func, ast.Name):
                    registrar = func.id
                else:
                    continue
                if registrar not in _REGISTRARS:
                    continue
                if decorator.args and isinstance(
                    decorator.args[0], ast.Constant
                ):
                    name = decorator.args[0].value
                    if isinstance(name, str):
                        registrations.append(
                            (
                                registrar,
                                name,
                                ctx.display_path,
                                decorator.lineno,
                            )
                        )
    return registrations


def _notes_tables(ctx: FileContext) -> Dict[str, Dict[str, int]]:
    """Table name -> {key: line} for the *_NOTES dict literals."""
    tables: Dict[str, Dict[str, int]] = {}
    for node in ctx.tree.body:
        targets: List[ast.expr] = []
        value: Optional[ast.expr] = None
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = [node.target], node.value
        for target in targets:
            if (
                isinstance(target, ast.Name)
                and target.id in _REGISTRARS.values()
                and isinstance(value, ast.Dict)
            ):
                keys = {}
                for key in value.keys:
                    if isinstance(key, ast.Constant) and isinstance(
                        key.value, str
                    ):
                        keys[key.value] = key.lineno
                tables[target.id] = keys
    return tables


class RegistryDocSyncRule(Rule):
    name = "registry-doc-sync"
    summary = (
        "every @register_scheme/@register_workload name needs a note in "
        "the --list tables (SCHEME_NOTES/WORKLOAD_NOTES in "
        "experiments/cli.py), and no note may outlive its registration"
    )

    def check_project(self, project: Project) -> Iterable[Finding]:
        cli = project.find(CLI_SUFFIX)
        registrations = _decorator_registrations(project)
        if cli is None:
            return
        tables = _notes_tables(cli)
        for registrar, table_name in sorted(_REGISTRARS.items()):
            if table_name not in tables:
                yield Finding(
                    cli.display_path,
                    1,
                    self.name,
                    f"{table_name} table not found in {cli.display_path}; "
                    f"--list cannot document @{registrar} entries",
                )
        documented: Dict[str, Dict[str, int]] = {
            registrar: tables.get(table, {})
            for registrar, table in _REGISTRARS.items()
        }
        seen: Dict[str, Set[str]] = {key: set() for key in _REGISTRARS}
        for registrar, name, path, line in registrations:
            seen[registrar].add(name)
            if (
                registrar in documented
                and _REGISTRARS[registrar] in tables
                and name not in documented[registrar]
            ):
                yield Finding(
                    path,
                    line,
                    self.name,
                    f"@{registrar}({name!r}) has no entry in "
                    f"{_REGISTRARS[registrar]}; --list would not "
                    "document it",
                )
        for registrar, table_name in _REGISTRARS.items():
            for name, line in sorted(documented.get(registrar, {}).items()):
                if name not in seen[registrar]:
                    yield Finding(
                        cli.display_path,
                        line,
                        self.name,
                        f"{table_name} documents {name!r} but no "
                        f"@{registrar} registers it",
                    )


def _dataclass_fields(node: ast.ClassDef) -> Dict[str, int]:
    fields: Dict[str, int] = {}
    for statement in node.body:
        if not isinstance(statement, ast.AnnAssign):
            continue
        target = statement.target
        if not isinstance(target, ast.Name) or target.id.startswith("_"):
            continue
        annotation = statement.annotation
        if (
            isinstance(annotation, ast.Subscript)
            and isinstance(annotation.value, ast.Name)
            and annotation.value.id == "ClassVar"
        ):
            continue
        fields[target.id] = statement.lineno
    return fields


def _is_dataclass(node: ast.ClassDef) -> bool:
    for decorator in node.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        if isinstance(target, ast.Attribute) and target.attr == "dataclass":
            return True
        if isinstance(target, ast.Name) and target.id == "dataclass":
            return True
    return False


def _method(node: ast.ClassDef, name: str) -> Optional[ast.FunctionDef]:
    for statement in node.body:
        if isinstance(statement, ast.FunctionDef) and statement.name == name:
            return statement
    return None


def _to_dict_keys(method: ast.FunctionDef) -> Optional[Dict[str, int]]:
    """String keys of a ``return {...}`` dict literal, or None when the
    method builds its payload some other way (then it is not statically
    checkable and the rule skips it)."""
    returns = [
        statement
        for statement in ast.walk(method)
        if isinstance(statement, ast.Return)
    ]
    if len(returns) != 1 or not isinstance(returns[0].value, ast.Dict):
        return None
    keys: Dict[str, int] = {}
    for key in returns[0].value.keys:
        if not (isinstance(key, ast.Constant) and isinstance(key.value, str)):
            return None
        keys[key.value] = key.lineno
    return keys


def _known_fields_set(method: ast.FunctionDef) -> Optional[Dict[str, int]]:
    """The ``known = {...}`` string-set literal inside ``from_dict``."""
    for statement in ast.walk(method):
        if not isinstance(statement, ast.Assign):
            continue
        if len(statement.targets) != 1:
            continue
        target = statement.targets[0]
        if not (isinstance(target, ast.Name) and target.id == "known"):
            continue
        if not isinstance(statement.value, ast.Set):
            return None
        names: Dict[str, int] = {}
        for element in statement.value.elts:
            if not (
                isinstance(element, ast.Constant)
                and isinstance(element.value, str)
            ):
                return None
            names[element.value] = element.lineno
        return names
    return None


class ScenarioSchemaSyncRule(Rule):
    name = "scenario-schema-sync"
    summary = (
        "serializable dataclasses (to_dict + from_dict) must keep field "
        "list, to_dict payload keys and from_dict 'known' set identical"
    )

    def check_file(self, ctx: FileContext) -> Iterable[Finding]:
        if not ctx.is_src:
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            if not _is_dataclass(node):
                continue
            to_dict = _method(node, "to_dict")
            from_dict = _method(node, "from_dict")
            if to_dict is None or from_dict is None:
                continue
            fields = _dataclass_fields(node)
            if not fields:
                continue
            keys = _to_dict_keys(to_dict)
            if keys is not None:
                for name, line in sorted(fields.items()):
                    if name not in keys:
                        yield Finding(
                            ctx.display_path,
                            line,
                            self.name,
                            f"{node.name}.{name} is a dataclass field but "
                            "missing from to_dict(); round-trips drop it",
                        )
                for name, line in sorted(keys.items()):
                    if name not in fields:
                        yield Finding(
                            ctx.display_path,
                            line,
                            self.name,
                            f"{node.name}.to_dict() emits {name!r} which "
                            "is not a dataclass field",
                        )
            known = _known_fields_set(from_dict)
            if known is not None:
                for name, line in sorted(fields.items()):
                    if name not in known:
                        yield Finding(
                            ctx.display_path,
                            line,
                            self.name,
                            f"{node.name}.{name} is missing from "
                            "from_dict()'s known-fields set; valid specs "
                            "would be rejected",
                        )
                for name, line in sorted(known.items()):
                    if name not in fields:
                        yield Finding(
                            ctx.display_path,
                            line,
                            self.name,
                            f"{node.name}.from_dict() accepts {name!r} "
                            "which is not a dataclass field",
                        )
