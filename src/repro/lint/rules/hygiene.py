"""General source-hygiene rules: asserts in library code and unused
imports.

``assert`` statements vanish under ``python -O``, so a library invariant
guarded by one simply stops being checked in optimized runs; library
code raises explicit exceptions instead (tests and benchmarks keep using
``assert`` -- that is what pytest rewrites). Unused imports are the
ruff/pyflakes overlap the suite enforces even where the external tools
are not installed.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Set, Tuple

from repro.lint.engine import FileContext, Finding, Rule


class NoAssertInSrcRule(Rule):
    name = "no-assert-in-src"
    summary = (
        "no assert statements in src/ (they vanish under python -O); "
        "raise an explicit error instead"
    )

    def check_file(self, ctx: FileContext) -> Iterable[Finding]:
        if not ctx.is_src:
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Assert):
                yield Finding(
                    ctx.display_path,
                    node.lineno,
                    self.name,
                    "assert is compiled out under python -O; raise "
                    "ConfigurationError/CacheError (or RuntimeError for "
                    "internal invariants) instead",
                )


def _exported_names(tree: ast.Module) -> Set[str]:
    """Names in ``__all__`` (string-literal list/tuple/set forms)."""
    exported: Set[str] = set()
    for node in tree.body:
        targets: List[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = node.targets
            value = node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets = [node.target]
            value = node.value
        else:
            continue
        for target in targets:
            if isinstance(target, ast.Name) and target.id == "__all__":
                if isinstance(value, (ast.List, ast.Tuple, ast.Set)):
                    for element in value.elts:
                        if isinstance(element, ast.Constant) and isinstance(
                            element.value, str
                        ):
                            exported.add(element.value)
    return exported


class UnusedImportRule(Rule):
    name = "unused-import"
    summary = (
        "imported names must be used, re-exported via __all__, or live "
        "in an __init__.py (package re-export surface)"
    )

    def check_file(self, ctx: FileContext) -> Iterable[Finding]:
        if ctx.path.name == "__init__.py":
            # Package __init__ modules exist to re-export; __all__
            # completeness is their own concern.
            return
        imported: Dict[str, Tuple[int, str]] = {}
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = (alias.asname or alias.name).split(".")[0]
                    imported[local] = (node.lineno, alias.name)
            elif isinstance(node, ast.ImportFrom):
                module = "." * node.level + (node.module or "")
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    if local == "annotations":
                        continue
                    imported[local] = (node.lineno, f"{module}.{alias.name}")
        if not imported:
            return
        used: Set[str] = set()
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Name):
                used.add(node.id)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                annotations: List[ast.expr] = [
                    arg.annotation
                    for arg in (
                        node.args.args
                        + node.args.posonlyargs
                        + node.args.kwonlyargs
                        + [node.args.vararg, node.args.kwarg]
                    )
                    if arg is not None and arg.annotation is not None
                ]
                if node.returns is not None:
                    annotations.append(node.returns)
                used.update(_annotation_string_tokens(annotations))
            elif isinstance(node, ast.AnnAssign):
                used.update(_annotation_string_tokens([node.annotation]))
        exported = _exported_names(ctx.tree)
        for local, (line, origin) in sorted(
            imported.items(), key=lambda item: item[1][0]
        ):
            if local in used or local in exported:
                continue
            yield Finding(
                ctx.display_path,
                line,
                self.name,
                f"imported name {local!r} (from {origin!r}) is never "
                "used; remove it or re-export it via __all__",
            )


def _annotation_string_tokens(annotations: List[ast.expr]) -> Set[str]:
    """Identifier tokens inside quoted forward references, e.g. the
    ``asyncio`` in ``x: "asyncio.Future[bytes]"``. Only annotation
    subtrees are scanned -- a docstring mentioning an imported name must
    not mark it used."""
    tokens: Set[str] = set()
    for annotation in annotations:
        for node in ast.walk(annotation):
            if isinstance(node, ast.Constant) and isinstance(
                node.value, str
            ):
                for token in _identifier_tokens(node.value):
                    tokens.add(token)
    return tokens


def _identifier_tokens(text: str) -> List[str]:
    """Identifier-shaped tokens in a short string (annotation forms)."""
    if len(text) > 200:
        return []
    tokens: List[str] = []
    current: List[str] = []
    for char in text:
        if char.isidentifier() if not current else (
            char.isalnum() or char == "_"
        ):
            current.append(char)
        else:
            if current:
                tokens.append("".join(current))
                current = []
    if current:
        tokens.append("".join(current))
    return tokens
