"""Static analysis for this repository's own invariants.

The replay discipline -- bit-identical tables at a fixed seed, an
event loop that never blocks, one source of truth for the packed
outcome-code layout -- is enforced at runtime by parity and property
tests, but those only fire *after* a hazard has corrupted a replay.
``repro.lint`` encodes the same invariants as named AST-level rules
that fail fast at review time instead:

* ``determinism`` -- no wall clock, OS entropy, process-global RNGs or
  unordered set iteration in the replay packages;
* ``async-blocking-call`` / ``unawaited-coroutine`` /
  ``deprecated-event-loop`` -- asyncio hygiene for :mod:`repro.serve`;
* ``packed-bit-overlap`` -- the outcome-code bit layout in
  :mod:`repro.cache.stats` stays overlap-free and singly defined;
* ``registry-doc-sync`` / ``scenario-schema-sync`` -- registered
  scheme/workload names stay documented, serializable dataclasses keep
  fields, ``to_dict`` and ``from_dict`` aligned;
* ``no-assert-in-src`` / ``unused-import`` -- library hygiene.

Run ``python -m repro.lint`` (or ``repro-lint``) from the repo root;
``--list-rules`` documents every rule and the suppression syntax.
"""

from repro.lint.engine import (
    FileContext,
    Finding,
    LintReport,
    Project,
    Rule,
    collect_files,
    run_rules,
)
from repro.lint.cli import main, run_lint
from repro.lint.rules import all_rules, rule_summaries, rules_by_name

__all__ = [
    "FileContext",
    "Finding",
    "LintReport",
    "Project",
    "Rule",
    "all_rules",
    "collect_files",
    "main",
    "rule_summaries",
    "rules_by_name",
    "run_lint",
    "run_rules",
]
