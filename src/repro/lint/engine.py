"""Core of the ``repro.lint`` static-analysis pass.

The engine walks Python sources, parses each file once, classifies it
into the *domains* the rules care about (replay path, serving layer,
library source vs. test code), and dispatches two kinds of rules:

* **file rules** see one :class:`FileContext` at a time;
* **project rules** see the whole :class:`Project` (cross-file
  invariants such as the packed outcome-bit layout or registry/doc
  sync).

Findings can be silenced per line with ``# repro-lint: ignore[rule]``
(comma-separate several rule names) or per file with a standalone
``# repro-lint: file-ignore[rule]`` line. Every inline suppression must
actually silence something: stale ones are reported by the engine as
``unused-suppression`` findings so the allowlist cannot rot.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.common.errors import ConfigurationError

#: Path fragments (posix form) that are never linted. The lint test
#: fixtures deliberately violate the rules; caches hold no source.
DEFAULT_EXCLUDES: Tuple[str, ...] = (
    "__pycache__",
    ".git",
    "tests/lint/fixtures",
)

#: Packages whose replay results must be bit-identical across runs at a
#: fixed seed; the determinism rule only applies inside these.
REPLAY_PACKAGES: Tuple[str, ...] = ("cache", "cluster", "workloads", "sim")

_INLINE_RE = re.compile(r"#\s*repro-lint:\s*ignore\[([A-Za-z0-9_,\s-]+)\]")
_FILE_RE = re.compile(r"^\s*#\s*repro-lint:\s*file-ignore\[([A-Za-z0-9_,\s-]+)\]\s*$")


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation, anchored to a source line."""

    path: str
    line: int
    rule: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


class FileContext:
    """One parsed source file plus the metadata rules dispatch on."""

    def __init__(self, path: Path, display_path: str, source: str) -> None:
        self.path = path
        self.display_path = display_path
        self.source = source
        self.lines = source.splitlines()
        self.tree = ast.parse(source, filename=display_path)
        parts = Path(display_path).parts
        self.parts = parts
        self.is_test = bool(parts) and parts[0] in ("tests", "benchmarks")
        self.is_src = "src" in parts
        #: Dotted module path below ``repro`` (e.g. ``cache.stats``),
        #: or None for files outside ``src/repro``.
        self.repro_module: Optional[str] = None
        if "repro" in parts and self.is_src:
            below = parts[parts.index("repro") + 1 :]
            if below:
                self.repro_module = ".".join(below)[: -len(".py")] or None
        self.inline_ignores = self._parse_inline_ignores()
        self.file_ignores = self._parse_file_ignores()
        self._import_paths: Optional[Dict[str, str]] = None

    # ------------------------------------------------------------------
    # Domain predicates
    # ------------------------------------------------------------------

    @property
    def is_replay_path(self) -> bool:
        """True for modules whose replays must be bit-reproducible."""
        module = self.repro_module
        if module is None:
            return False
        return module.split(".")[0] in REPLAY_PACKAGES

    # ------------------------------------------------------------------
    # Suppression comments
    # ------------------------------------------------------------------

    def _comment_tokens(self) -> List[Tuple[int, int, str]]:
        """(line, column, text) for every real comment token; string
        literals that merely *mention* the syntax don't count."""
        comments: List[Tuple[int, int, str]] = []
        try:
            tokens = tokenize.generate_tokens(
                io.StringIO(self.source).readline
            )
            for token in tokens:
                if token.type == tokenize.COMMENT:
                    comments.append(
                        (token.start[0], token.start[1], token.string)
                    )
        except tokenize.TokenError:  # pragma: no cover - ast parsed already
            pass
        return comments

    def _standalone_comment(self, lineno: int, column: int) -> bool:
        line = self.lines[lineno - 1] if lineno <= len(self.lines) else ""
        return not line[:column].strip()

    def _parse_inline_ignores(self) -> Dict[int, Set[str]]:
        ignores: Dict[int, Set[str]] = {}
        for lineno, column, comment in self._comment_tokens():
            if _FILE_RE.match(comment) and self._standalone_comment(
                lineno, column
            ):
                continue
            match = _INLINE_RE.search(comment)
            if match:
                rules = {part.strip() for part in match.group(1).split(",")}
                ignores.setdefault(lineno, set()).update(
                    rule for rule in rules if rule
                )
        return ignores

    def _parse_file_ignores(self) -> Dict[str, int]:
        """Rule name -> line of the first file-ignore comment naming it."""
        ignores: Dict[str, int] = {}
        for lineno, column, comment in self._comment_tokens():
            match = _FILE_RE.match(comment)
            if match and self._standalone_comment(lineno, column):
                for part in match.group(1).split(","):
                    name = part.strip()
                    if name:
                        ignores.setdefault(name, lineno)
        return ignores

    # ------------------------------------------------------------------
    # Import resolution (shared by several rules)
    # ------------------------------------------------------------------

    @property
    def import_paths(self) -> Dict[str, str]:
        """Local name -> dotted origin, from this file's import statements.

        ``import numpy as np`` maps ``np`` to ``numpy``;
        ``from time import time`` maps ``time`` to ``time.time``.
        """
        if self._import_paths is None:
            mapping: Dict[str, str] = {}
            for node in ast.walk(self.tree):
                if isinstance(node, ast.Import):
                    for alias in node.names:
                        local = alias.asname or alias.name.split(".")[0]
                        origin = alias.name if alias.asname else local
                        mapping[local] = origin
                elif isinstance(node, ast.ImportFrom):
                    if node.level or node.module is None:
                        continue
                    for alias in node.names:
                        if alias.name == "*":
                            continue
                        local = alias.asname or alias.name
                        mapping[local] = f"{node.module}.{alias.name}"
            self._import_paths = mapping
        return self._import_paths

    def resolve_call_path(self, func: ast.AST) -> Optional[str]:
        """Dotted origin of a callee expression, or None if unresolvable.

        ``np.random.shuffle`` resolves to ``numpy.random.shuffle`` when
        ``np`` was imported as numpy; a bare name resolves through the
        from-import map (falling back to the name itself for builtins).
        """
        chain: List[str] = []
        node = func
        while isinstance(node, ast.Attribute):
            chain.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        root = self.import_paths.get(node.id, node.id)
        chain.append(root)
        return ".".join(reversed(chain))


class Project:
    """All linted files, for rules that check cross-file invariants."""

    def __init__(self, files: Sequence[FileContext]) -> None:
        self.files = list(files)

    def find(self, suffix: str) -> Optional[FileContext]:
        """The file whose display path ends with ``suffix`` (posix)."""
        for ctx in self.files:
            if ctx.display_path.endswith(suffix):
                return ctx
        return None


class Rule:
    """Base class: subclasses set ``name``/``summary`` and override one
    of :meth:`check_file` or :meth:`check_project`."""

    name = "abstract"
    summary = ""

    def check_file(self, ctx: FileContext) -> Iterable[Finding]:
        return ()

    def check_project(self, project: Project) -> Iterable[Finding]:
        return ()


@dataclass
class LintReport:
    """Outcome of one lint run."""

    findings: List[Finding]
    files_checked: int
    suppressed: int = 0
    unused_suppressions: List[Finding] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.findings


def _excluded(display_path: str, excludes: Sequence[str]) -> bool:
    return any(fragment in display_path for fragment in excludes)


def collect_files(
    paths: Sequence[Path],
    root: Path,
    excludes: Sequence[str] = DEFAULT_EXCLUDES,
) -> List[FileContext]:
    """Parse every ``.py`` file under ``paths`` into a FileContext.

    ``root`` anchors display paths (findings print repo-relative posix
    paths). Unreadable or syntactically invalid files raise
    :class:`ConfigurationError` -- un-parseable source is itself a
    finding-worthy state, but nothing else can be checked.
    """
    contexts: List[FileContext] = []
    for base in paths:
        if base.is_file():
            candidates = [base]
        elif base.is_dir():
            candidates = sorted(base.rglob("*.py"))
        else:
            raise ConfigurationError(f"no such file or directory: {base}")
        for candidate in candidates:
            try:
                display = candidate.resolve().relative_to(root.resolve())
                display_path = display.as_posix()
            except ValueError:
                display_path = candidate.as_posix()
            if _excluded(display_path, excludes):
                continue
            source = candidate.read_text(encoding="utf-8")
            try:
                contexts.append(FileContext(candidate, display_path, source))
            except SyntaxError as exc:
                raise ConfigurationError(
                    f"cannot parse {display_path}: {exc}"
                ) from None
    return contexts


def run_rules(
    files: Sequence[FileContext],
    rules: Sequence[Rule],
    audit_suppressions: bool = True,
) -> LintReport:
    """Run ``rules`` over ``files``; apply and audit suppressions.

    ``audit_suppressions`` only reports stale inline ignores when every
    rule ran (a partial ``--select`` run cannot tell stale from
    not-yet-checked).
    """
    project = Project(files)
    by_file = {ctx.display_path: ctx for ctx in files}
    raw: List[Finding] = []
    for rule in rules:
        for ctx in files:
            raw.extend(rule.check_file(ctx))
        raw.extend(rule.check_project(project))

    findings: List[Finding] = []
    suppressed = 0
    used: Dict[Tuple[str, int], Set[str]] = {}
    file_used: Dict[str, Set[str]] = {}
    for finding in raw:
        ctx = by_file.get(finding.path)
        if ctx is not None:
            if finding.rule in ctx.file_ignores:
                suppressed += 1
                file_used.setdefault(finding.path, set()).add(finding.rule)
                continue
            inline = ctx.inline_ignores.get(finding.line, set())
            if finding.rule in inline:
                suppressed += 1
                used.setdefault((finding.path, finding.line), set()).add(
                    finding.rule
                )
                continue
        findings.append(finding)

    unused: List[Finding] = []
    if audit_suppressions:
        rule_names = {rule.name for rule in rules}
        for ctx in files:
            for lineno, names in sorted(ctx.inline_ignores.items()):
                for name in sorted(names):
                    if name not in rule_names:
                        unused.append(
                            Finding(
                                ctx.display_path,
                                lineno,
                                "unused-suppression",
                                f"unknown rule {name!r} in ignore comment",
                            )
                        )
                    elif name not in used.get(
                        (ctx.display_path, lineno), set()
                    ):
                        unused.append(
                            Finding(
                                ctx.display_path,
                                lineno,
                                "unused-suppression",
                                f"suppression for {name!r} silences nothing",
                            )
                        )
            for name, lineno in sorted(ctx.file_ignores.items()):
                if name not in rule_names:
                    unused.append(
                        Finding(
                            ctx.display_path,
                            lineno,
                            "unused-suppression",
                            f"unknown rule {name!r} in file-ignore comment",
                        )
                    )
                elif name not in file_used.get(ctx.display_path, set()):
                    unused.append(
                        Finding(
                            ctx.display_path,
                            lineno,
                            "unused-suppression",
                            f"file-ignore for {name!r} silences nothing",
                        )
                    )
        findings.extend(unused)

    findings.sort()
    return LintReport(
        findings=findings,
        files_checked=len(files),
        suppressed=suppressed,
        unused_suppressions=unused,
    )
