"""Command-line front end: ``python -m repro.lint`` / ``repro-lint``.

Exit codes follow the experiments CLI convention: 0 clean, 1 findings,
2 usage or configuration errors (one-line message on stderr).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from repro.common.errors import ConfigurationError
from repro.lint.engine import (
    DEFAULT_EXCLUDES,
    LintReport,
    collect_files,
    run_rules,
)
from repro.lint.rules import rule_summaries, rules_by_name

#: What a bare invocation lints, relative to the repo root.
DEFAULT_PATHS = ("src", "tests", "benchmarks")


def _repo_root(start: Path) -> Path:
    """The nearest ancestor containing ``src/repro`` (or ``start``)."""
    for candidate in (start, *start.parents):
        if (candidate / "src" / "repro").is_dir():
            return candidate
    return start


def _select_rules(
    select: Optional[str], ignore: Optional[str]
) -> List[str]:
    registry = rules_by_name()
    if select:
        names = [name.strip() for name in select.split(",") if name.strip()]
    else:
        names = list(registry)
    for name in names:
        if name not in registry:
            raise ConfigurationError(
                f"unknown rule {name!r}; known: {', '.join(sorted(registry))}"
            )
    if ignore:
        dropped = {
            name.strip() for name in ignore.split(",") if name.strip()
        }
        for name in dropped:
            if name not in registry:
                raise ConfigurationError(
                    f"unknown rule {name!r}; known: "
                    f"{', '.join(sorted(registry))}"
                )
        names = [name for name in names if name not in dropped]
    return names


def run_lint(
    paths: Sequence[str],
    root: Optional[Path] = None,
    select: Optional[str] = None,
    ignore: Optional[str] = None,
) -> LintReport:
    """Library entry point: lint ``paths`` and return the report."""
    anchor = root if root is not None else _repo_root(Path.cwd())
    resolved = [
        path if path.is_absolute() else anchor / path
        for path in (Path(p) for p in paths)
    ]
    names = _select_rules(select, ignore)
    registry = rules_by_name()
    files = collect_files(resolved, anchor, DEFAULT_EXCLUDES)
    return run_rules(
        files,
        [registry[name] for name in names],
        audit_suppressions=select is None and ignore is None,
    )


def _print_rules() -> None:
    print("rules:")
    for name, summary in rule_summaries().items():
        print(f"  {name}")
        print(f"      {summary}")
    print()
    print("suppress one line:   # repro-lint: ignore[rule-a,rule-b]")
    print("suppress one file:   # repro-lint: file-ignore[rule-a]")
    print("stale suppressions are reported as unused-suppression findings")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description=(
            "Determinism, concurrency and schema static analysis for "
            "this repository (AST-based; no third-party tools needed)."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help=f"files or directories to lint (default: {' '.join(DEFAULT_PATHS)})",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help=(
            "treat unused-suppression audit findings as fatal too "
            "(CI mode); without it they are printed but do not fail "
            "the run"
        ),
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="describe every rule and the suppression syntax, then exit",
    )
    parser.add_argument(
        "--select",
        metavar="RULES",
        help="comma-separated rule names to run (default: all)",
    )
    parser.add_argument(
        "--ignore",
        metavar="RULES",
        help="comma-separated rule names to skip",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="finding output format (default: text)",
    )
    parser.add_argument(
        "--root",
        metavar="DIR",
        help="repository root (default: auto-detected from cwd)",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.list_rules:
        _print_rules()
        return 0
    try:
        root = Path(args.root).resolve() if args.root else None
        report = run_lint(
            args.paths or list(DEFAULT_PATHS),
            root=root,
            select=args.select,
            ignore=args.ignore,
        )
    except ConfigurationError as exc:
        print(f"repro-lint: {exc}", file=sys.stderr)
        return 2
    fatal = [
        finding
        for finding in report.findings
        if args.strict or finding.rule != "unused-suppression"
    ]
    if args.format == "json":
        payload = {
            "files_checked": report.files_checked,
            "suppressed": report.suppressed,
            "findings": [
                {
                    "path": finding.path,
                    "line": finding.line,
                    "rule": finding.rule,
                    "message": finding.message,
                }
                for finding in report.findings
            ],
        }
        print(json.dumps(payload, indent=2))
    else:
        for finding in report.findings:
            print(finding.render())
        suffix = (
            f", {report.suppressed} suppressed" if report.suppressed else ""
        )
        print(
            f"repro-lint: {len(report.findings)} finding(s) in "
            f"{report.files_checked} file(s){suffix}"
        )
    return 1 if fatal else 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
