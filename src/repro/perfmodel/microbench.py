"""Micro-benchmark drivers for Tables 6 and 7.

The paper's protocol (section 5.6): warm the cache until eviction and
shadow queues are full, then measure. The worst case is an all-miss
workload (unique keys): every GET performs a shadow lookup and every
insertion causes evictions and shadow traffic.

Each measurement replays the same request stream through a baseline
engine (stock first-come-first-serve, no shadow queues) and through the
algorithm engine, then compares model-predicted per-request costs. The
same drivers also time real wall-clock throughput so pytest-benchmark can
report measured (not just modeled) slowdowns.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

from repro.cache.engines import Engine, FirstComeFirstServeEngine
from repro.cache.slabs import SlabGeometry
from repro.cache.stats import OP_GET, OpCounter
from repro.core.engine import CliffhangerEngine, HillClimbEngine
from repro.perfmodel.costmodel import CostModel, overhead_percent
from repro.workloads.compiled import GLOBAL_TRACE_CACHE, CompiledTrace
from repro.workloads.facebook import UniqueKeyStream, FacebookETCStream

EngineFactory = Callable[[str, float, SlabGeometry], Engine]


@dataclass
class MicroBenchResult:
    """One engine's replay of one micro workload."""

    engine_name: str
    gets: int
    sets: int
    hits: int
    ops: OpCounter
    wall_seconds: float

    @property
    def requests(self) -> int:
        return self.gets + self.sets

    def model_cost(self, model: CostModel) -> float:
        return model.request_cost(self.ops, self.gets, self.sets)

    def wall_throughput(self) -> float:
        return self.requests / self.wall_seconds if self.wall_seconds else 0.0


def _replay(
    engine: Engine, trace: CompiledTrace, warmup: int
) -> MicroBenchResult:
    """Warm up (uncounted), then replay counting ops and wall time.

    Runs the allocation-free fast path so measured wall times reflect
    engine work, not ``Request``/``AccessOutcome`` churn.
    """
    warm = trace.slice(0, warmup)
    measured = trace.slice(warmup)
    process = engine.process_fast
    for args in zip(
        warm.keys, warm.op_codes, warm.slab_classes,
        warm.chunk_bytes, warm.item_bytes,
    ):
        process(*args)
    engine.ops = OpCounter()  # discard warmup operation counts
    gets = sets = hits = 0
    started = time.perf_counter()
    for key, op, class_index, chunk, item_bytes in zip(
        measured.keys, measured.op_codes, measured.slab_classes,
        measured.chunk_bytes, measured.item_bytes,
    ):
        code = process(key, op, class_index, chunk, item_bytes)
        if op == OP_GET:
            gets += 1
            hits += code & 1
        else:
            sets += 1
    wall = time.perf_counter() - started
    return MicroBenchResult(
        engine_name=type(engine).__name__,
        gets=gets,
        sets=sets,
        hits=hits,
        ops=engine.ops,
        wall_seconds=wall,
    )


def _compiled_stream(
    stream, cache_key: str, num_requests: int, geometry: SlabGeometry
) -> CompiledTrace:
    """Compile (and cache) a micro-benchmark stream."""
    return GLOBAL_TRACE_CACHE.get_or_compile(
        cache_key,
        lambda: stream.generate(num_requests, 100.0),
        geometry,
    )


def _engines(fill_on_miss: bool) -> Dict[str, EngineFactory]:
    """Engine factories for the micro-benchmarks.

    ``fill_on_miss=False`` reproduces the paper's measurement protocol
    for the *miss* path (a real client issues the fill as its own SET,
    so GET cost must not absorb insertion work); the *hit* path needs
    fills enabled so the skewed stream actually establishes residency.
    """
    return {
        "default": lambda app, b, g: FirstComeFirstServeEngine(
            app, b, g, fill_on_miss=fill_on_miss
        ),
        "hill-climbing": lambda app, b, g: HillClimbEngine(
            app, b, g, fill_on_miss=fill_on_miss
        ),
        "cliffhanger": lambda app, b, g: CliffhangerEngine(
            app, b, g, fill_on_miss=fill_on_miss
        ),
    }


def measure_latency_overhead(
    num_requests: int = 30_000,
    budget_bytes: float = None,
    get_fraction: float = 0.967,
    all_miss: bool = True,
    model: CostModel = CostModel(),
    seed: int = 0,
) -> Dict[str, Dict[str, float]]:
    """Table 6: % latency overhead vs the default engine.

    Returns ``{algorithm: {"get": pct, "set": pct}}``. With
    ``all_miss=True`` the stream uses unique keys (the paper's worst
    case); otherwise a skewed ETC stream measures the hit path.
    """
    geometry = SlabGeometry.default()
    if budget_bytes is None:
        if all_miss:
            # Worst case: keep the cache full so every operation pays
            # eviction and shadow-queue costs -- budget well below the
            # stream's footprint.
            budget_bytes = max(256 << 10, num_requests * 75)
        else:
            # Hit path: the working set must be resident, so hits (and
            # re-SETs of resident keys) pay no eviction work.
            budget_bytes = max(4 << 20, num_requests * 300)
    if all_miss:
        stream = UniqueKeyStream(
            app="micro", get_fraction=get_fraction, seed=seed
        )
        kind = f"unique-gf{get_fraction!r}"
    else:
        stream = FacebookETCStream(
            app="micro",
            num_keys=max(1000, num_requests // 50),
            get_fraction=get_fraction,
            seed=seed,
        )
        kind = f"etc-k{max(1000, num_requests // 50)}-gf{get_fraction!r}"
    warmup = num_requests // 4
    total = num_requests + warmup
    compiled = _compiled_stream(
        stream, f"micro-{kind}-seed{seed}-n{total}", total, geometry
    )

    # Split costs by op type: replay GET-only and SET-only variants so
    # per-op overheads are attributable (the aggregate mix would blur
    # them).
    def only(op: str) -> CompiledTrace:
        return compiled.with_op(op)

    factories = _engines(fill_on_miss=not all_miss)
    overheads: Dict[str, Dict[str, float]] = {}
    baseline_costs: Dict[str, float] = {}
    for op in ("get", "set"):
        base = _replay(
            factories["default"]("micro", budget_bytes, geometry),
            only(op),
            warmup,
        )
        baseline_costs[op] = base.model_cost(model)
    for name, factory in factories.items():
        if name == "default":
            continue
        overheads[name] = {}
        for op in ("get", "set"):
            engine = factory("micro", budget_bytes, geometry)
            result = _replay(engine, only(op), warmup)
            overheads[name][op] = overhead_percent(
                baseline_costs[op], result.model_cost(model)
            )
    return overheads


def measure_throughput_slowdown(
    mixes: Tuple[Tuple[float, float], ...] = (
        (0.967, 0.033),
        (0.5, 0.5),
        (0.1, 0.9),
    ),
    num_requests: int = 30_000,
    budget_bytes: float = None,
    model: CostModel = CostModel(),
    seed: int = 0,
) -> List[Dict[str, float]]:
    """Table 7: throughput slowdown per GET/SET mix (cache full, all
    unique keys so the CPU-bound worst case is exercised).

    Returns one row per mix: ``{"get_pct", "set_pct", "slowdown_pct",
    "wall_slowdown_pct"}``. The paper reports hill climbing and
    Cliffhanger as identical here; we report Cliffhanger.
    """
    geometry = SlabGeometry.default()
    if budget_bytes is None:
        budget_bytes = max(256 << 10, num_requests * 75)
    rows: List[Dict[str, float]] = []
    warmup = num_requests // 4
    for get_fraction, set_fraction in mixes:
        stream = UniqueKeyStream(
            app="micro", get_fraction=get_fraction, seed=seed
        )
        total = num_requests + warmup
        compiled = _compiled_stream(
            stream,
            f"micro-unique-gf{get_fraction!r}-seed{seed}-n{total}",
            total,
            geometry,
        )
        base = _replay(
            FirstComeFirstServeEngine(
                "micro", budget_bytes, geometry, fill_on_miss=False
            ),
            compiled,
            warmup,
        )
        cliff = _replay(
            CliffhangerEngine(
                "micro", budget_bytes, geometry, fill_on_miss=False
            ),
            compiled,
            warmup,
        )
        base_throughput = model.throughput(base.ops, base.gets, base.sets)
        cliff_throughput = model.throughput(
            cliff.ops, cliff.gets, cliff.sets
        )
        slowdown = max(
            0.0, (1.0 - cliff_throughput / base_throughput) * 100.0
        )
        wall_slowdown = max(
            0.0,
            (1.0 - cliff.wall_throughput() / base.wall_throughput())
            * 100.0
            if base.wall_throughput()
            else 0.0,
        )
        rows.append(
            {
                "get_pct": get_fraction * 100.0,
                "set_pct": set_fraction * 100.0,
                "slowdown_pct": slowdown,
                "wall_slowdown_pct": wall_slowdown,
            }
        )
    return rows
