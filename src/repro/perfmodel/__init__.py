"""Latency/throughput cost model for the micro-benchmarks.

The paper measures Cliffhanger's C implementation on a Xeon with mutilate
(Tables 6-7). Without that testbed, this package substitutes a
per-primitive cost model: engines count their primitive data-structure
operations (:class:`repro.cache.stats.OpCounter`) and the model converts
counts into average per-request costs, from which relative overheads --
the quantity the paper actually reports -- are derived. The pytest
benchmarks additionally measure real wall-clock throughput of the Python
engines for a sanity check on the same ratios.
"""

from repro.perfmodel.costmodel import CostModel, overhead_percent
from repro.perfmodel.microbench import (
    MicroBenchResult,
    measure_latency_overhead,
    measure_throughput_slowdown,
)

__all__ = [
    "CostModel",
    "overhead_percent",
    "MicroBenchResult",
    "measure_latency_overhead",
    "measure_throughput_slowdown",
]
