"""Per-primitive operation costs.

Costs are in abstract microseconds, loosely calibrated to a memcached
server (hash lookup and LRU pointer splice well under a microsecond; the
base request cost dominated by network/protocol handling). Their absolute
values are irrelevant to the reproduction -- Tables 6 and 7 report
*relative* overheads, which depend only on the ratio between the extra
shadow-queue work and the base request cost, and the defaults are chosen
so the baseline mix lands in the paper's low-single-digit-percent regime.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ConfigurationError
from repro.cache.stats import OpCounter


@dataclass(frozen=True)
class CostModel:
    """Microseconds charged per primitive operation.

    ``base_get``/``base_set`` cover request parsing, network and protocol
    work every request pays regardless of the allocation algorithm.
    """

    base_get: float = 8.0
    base_set: float = 10.0
    hash_lookup: float = 0.25
    promote: float = 0.15
    insert: float = 0.45
    evict: float = 0.35
    shadow_lookup: float = 0.25
    shadow_insert: float = 0.30
    shadow_evict: float = 0.25
    route: float = 0.08

    def __post_init__(self) -> None:
        for field_name in (
            "base_get",
            "base_set",
            "hash_lookup",
            "promote",
            "insert",
            "evict",
            "shadow_lookup",
            "shadow_insert",
            "shadow_evict",
            "route",
        ):
            if getattr(self, field_name) < 0:
                raise ConfigurationError(f"negative cost for {field_name}")

    # ------------------------------------------------------------------

    def mechanism_cost(self, ops: OpCounter) -> float:
        """Total data-structure microseconds for an operation batch."""
        return (
            ops.hash_lookups * self.hash_lookup
            + ops.promotes * self.promote
            + ops.inserts * self.insert
            + ops.evictions * self.evict
            + ops.shadow_lookups * self.shadow_lookup
            + ops.shadow_inserts * self.shadow_insert
            + ops.shadow_evictions * self.shadow_evict
            + ops.routes * self.route
        )

    def request_cost(
        self, ops: OpCounter, gets: int, sets: int
    ) -> float:
        """Average microseconds per request for a replayed workload."""
        requests = gets + sets
        if requests <= 0:
            raise ConfigurationError("need at least one request")
        base = gets * self.base_get + sets * self.base_set
        return (base + self.mechanism_cost(ops)) / requests

    def throughput(self, ops: OpCounter, gets: int, sets: int) -> float:
        """Requests per second implied by the average request cost."""
        return 1e6 / self.request_cost(ops, gets, sets)


def overhead_percent(baseline_cost: float, algorithm_cost: float) -> float:
    """Latency overhead of ``algorithm`` relative to ``baseline``, in %.

    Negative results are clamped to zero: the algorithms can only add
    work, so an apparent speedup is measurement noise.
    """
    if baseline_cost <= 0:
        raise ConfigurationError("baseline cost must be positive")
    return max(0.0, (algorithm_cost - baseline_cost) / baseline_cost * 100.0)
