"""Cache allocation algorithms that work from hit-rate curves.

These are the paper's baselines and comparators:

* :mod:`repro.allocation.base` -- the allocator interface and plan type.
* :mod:`repro.allocation.dynacache` -- the Dynacache solver (Eq. 1):
  greedy marginal-utility allocation that *assumes concave curves*, fed by
  Mimir-estimated stack distances. Inherits both failure modes the paper
  describes (cliff blindness and estimation error).
* :mod:`repro.allocation.lookahead` -- UCP's LookAhead (Qureshi & Patt),
  which scans past cliffs but requires the whole curve.
* :mod:`repro.allocation.talus` -- Talus partition planning with oracle
  curve knowledge (the non-incremental ancestor of cliff scaling).
* :mod:`repro.allocation.static` -- trivial uniform/proportional plans.

Cliffhanger itself is *not* here: it never materializes hit-rate curves
and lives in :mod:`repro.core`.
"""

from repro.allocation.base import AllocationPlan, Allocator
from repro.allocation.dynacache import DynacacheSolver
from repro.allocation.lookahead import LookAheadAllocator
from repro.allocation.static import proportional_plan, uniform_plan
from repro.allocation.talus import TalusPartition, plan_talus_partition

__all__ = [
    "AllocationPlan",
    "Allocator",
    "DynacacheSolver",
    "LookAheadAllocator",
    "proportional_plan",
    "uniform_plan",
    "TalusPartition",
    "plan_talus_partition",
]
