"""Talus partition planning with oracle curve knowledge (paper section 4.2).

Talus (Beckmann & Sanchez, HPCA 2015) removes a performance cliff by
splitting one queue into two smaller queues and hash-partitioning the
request stream between them. If the operating point ``S`` lies on a convex
region bracketed by hull anchors ``L < S < R``, then routing a fraction
``rho`` of requests to a left queue of physical size ``L * rho`` and the
rest to a right queue of size ``R * (1 - rho)``, with::

    rho = (R - S) / ((R - S) + (S - L))

makes the left queue *behave like* a queue of size L and the right like a
queue of size R (each sees a thinned stream, so stack distances shrink by
the same factor), and the combined hit rate is the linear interpolation of
the curve at L and R -- a point on the concave hull.

The paper's worked example (Figure 4): S = 8000, anchors (2000, 13500)
give rho ~ 0.478, physical queues of 957 and 7043 items. This module
reproduces those numbers exactly (see ``tests/allocation/test_talus.py``).

Cliffhanger's cliff-scaling algorithm is the *incremental* version of this
plan: it discovers L and R with shadow-queue pointers instead of reading
them off a profiled curve.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.common.errors import AllocationError
from repro.profiling.hrc import HitRateCurve


@dataclass(frozen=True)
class TalusPartition:
    """A concrete partitioning decision for one queue.

    Attributes:
        size: The physical operating point S (total size of both queues).
        left_anchor: Simulated size L of the left queue (cliff bottom).
        right_anchor: Simulated size R of the right queue (cliff top).
        left_fraction: Fraction rho of requests routed to the left queue.
        left_size: Physical size of the left queue, ``L * rho``.
        right_size: Physical size of the right queue, ``R * (1 - rho)``.
        expected_hit_rate: Hull-interpolated hit rate at S.
    """

    size: float
    left_anchor: float
    right_anchor: float
    left_fraction: float
    left_size: float
    right_size: float
    expected_hit_rate: float

    def __post_init__(self) -> None:
        if not (self.left_anchor <= self.size <= self.right_anchor):
            raise AllocationError(
                f"operating point {self.size} outside anchors "
                f"[{self.left_anchor}, {self.right_anchor}]"
            )
        if not 0.0 <= self.left_fraction <= 1.0:
            raise AllocationError(
                f"left_fraction {self.left_fraction} outside [0, 1]"
            )
        total = self.left_size + self.right_size
        if abs(total - self.size) > 1e-6 * max(1.0, self.size):
            raise AllocationError(
                f"partition sizes {self.left_size} + {self.right_size} "
                f"!= operating point {self.size}"
            )


def compute_ratio(size: float, left_anchor: float, right_anchor: float) -> float:
    """The paper's Algorithm 3 (COMPUTERATIO).

    ``ratio = distanceRight / (distanceRight + distanceLeft)`` when both
    distances are positive, else 0.5 (no cliff detected: even split).
    """
    distance_right = right_anchor - size
    distance_left = size - left_anchor
    if distance_right > 0 and distance_left > 0:
        return distance_right / (distance_right + distance_left)
    return 0.5


def plan_talus_partition(
    curve: HitRateCurve,
    size: float,
    tolerance: float = 0.01,
) -> Optional[TalusPartition]:
    """Plan a Talus split of a queue of ``size`` given its full curve.

    Returns None when ``size`` does not sit inside a performance cliff
    (Talus then leaves the queue alone -- equivalently an even split,
    which behaves identically to the unsplit queue, section 4.2).
    """
    anchors = curve.hull_anchors_for(size, tolerance=tolerance)
    if anchors is None:
        return None
    left_anchor, right_anchor = anchors
    ratio = compute_ratio(size, left_anchor, right_anchor)
    expected = (
        ratio * curve.hit_rate(left_anchor)
        + (1.0 - ratio) * curve.hit_rate(right_anchor)
    )
    return TalusPartition(
        size=size,
        left_anchor=left_anchor,
        right_anchor=right_anchor,
        left_fraction=ratio,
        left_size=left_anchor * ratio,
        right_size=right_anchor * (1.0 - ratio),
        expected_hit_rate=expected,
    )
