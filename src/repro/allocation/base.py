"""Allocator interface.

An allocator solves (an approximation of) the paper's Equation 1::

    maximize   sum_i  w_i * f_i * h_i(m_i)
    subject to sum_i  m_i <= M

given per-queue hit-rate curves ``h_i`` and GET frequencies ``f_i``. The
queues may be slab classes of one application or whole applications
(section 3.3); the size unit just has to be consistent across curves,
frequencies and the budget.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Dict, Hashable, Mapping, Optional

from repro.common.errors import AllocationError
from repro.profiling.hrc import HitRateCurve

QueueId = Hashable


@dataclass
class AllocationPlan:
    """The output of an allocator.

    Attributes:
        allocations: Size (bytes or items) granted per queue.
        expected_hit_rates: The hit rate each queue's curve predicts at
            its granted size.
        expected_overall_hit_rate: Frequency-weighted overall prediction.
    """

    allocations: Dict[QueueId, float]
    expected_hit_rates: Dict[QueueId, float] = field(default_factory=dict)
    expected_overall_hit_rate: float = 0.0

    @property
    def total(self) -> float:
        return sum(self.allocations.values())

    def describe(self) -> str:
        lines = ["queue        alloc       exp.hitrate"]
        for queue_id in sorted(self.allocations, key=str):
            rate = self.expected_hit_rates.get(queue_id, float("nan"))
            lines.append(
                f"{str(queue_id):<12} {self.allocations[queue_id]:>10.0f} "
                f"{rate:>10.4f}"
            )
        lines.append(
            f"overall expected hit rate: "
            f"{self.expected_overall_hit_rate:.4f}"
        )
        return "\n".join(lines)


class Allocator(abc.ABC):
    """Base class for curve-driven allocators."""

    @abc.abstractmethod
    def allocate(
        self,
        curves: Mapping[QueueId, HitRateCurve],
        frequencies: Mapping[QueueId, float],
        total: float,
        weights: Optional[Mapping[QueueId, float]] = None,
    ) -> AllocationPlan:
        """Produce an allocation of ``total`` size units across queues.

        ``frequencies`` are GET counts (the ``f_i`` of Eq. 1) and
        ``weights`` the optional operator priorities ``w_i`` (default 1).
        """

    # ------------------------------------------------------------------

    @staticmethod
    def _validate(
        curves: Mapping[QueueId, HitRateCurve],
        frequencies: Mapping[QueueId, float],
        total: float,
    ) -> None:
        if not curves:
            raise AllocationError("no queues to allocate to")
        if total <= 0:
            raise AllocationError(f"budget must be positive, got {total}")
        missing = set(curves) - set(frequencies)
        if missing:
            raise AllocationError(
                f"queues without frequencies: {sorted(missing, key=str)}"
            )
        negative = [q for q, f in frequencies.items() if f < 0]
        if negative:
            raise AllocationError(
                f"negative frequencies for {sorted(negative, key=str)}"
            )

    @staticmethod
    def _finish_plan(
        allocations: Dict[QueueId, float],
        curves: Mapping[QueueId, HitRateCurve],
        frequencies: Mapping[QueueId, float],
        weights: Optional[Mapping[QueueId, float]],
    ) -> AllocationPlan:
        rates = {
            queue_id: curves[queue_id].hit_rate(size)
            for queue_id, size in allocations.items()
        }
        weight_of = (lambda q: weights.get(q, 1.0)) if weights else (
            lambda q: 1.0
        )
        numerator = sum(
            weight_of(q) * frequencies[q] * rates[q] for q in allocations
        )
        denominator = sum(
            weight_of(q) * frequencies[q] for q in allocations
        )
        overall = numerator / denominator if denominator else 0.0
        return AllocationPlan(
            allocations=allocations,
            expected_hit_rates=rates,
            expected_overall_hit_rate=overall,
        )
