"""The LookAhead allocator (Qureshi & Patt, MICRO 2006; paper section 6.2).

LookAhead is utility-based cache partitioning's answer to non-convexity:
instead of the *local* gradient it considers, for every queue, the maximum
*average* marginal utility over every possible expansion -- so a cliff
whose far side pays for the whole climb is taken in one stride. It needs
the entire hit-rate curve (which is exactly the cost Cliffhanger avoids),
making it the natural oracle-style comparator for cliff scaling.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Tuple

from repro.allocation.base import AllocationPlan, Allocator, QueueId
from repro.common.errors import AllocationError
from repro.profiling.hrc import HitRateCurve


class LookAheadAllocator(Allocator):
    """Chunked LookAhead over full hit-rate curves."""

    def __init__(self, granularity: float, minimum: float = 0.0) -> None:
        if granularity <= 0:
            raise AllocationError(
                f"granularity must be positive, got {granularity}"
            )
        if minimum < 0:
            raise AllocationError(f"minimum must be >= 0, got {minimum}")
        self.granularity = granularity
        self.minimum = minimum

    def _best_stride(
        self,
        curve: HitRateCurve,
        frequency: float,
        weight: float,
        current: float,
        remaining: float,
    ) -> Tuple[float, float]:
        """Max average marginal utility over all strides <= remaining.

        Returns ``(utility_per_unit, stride)``; (0, 0) if no stride helps.
        """
        base = curve.hit_rate(current)
        best_utility, best_stride = 0.0, 0.0
        steps = int(remaining // self.granularity)
        for k in range(1, steps + 1):
            stride = k * self.granularity
            gain = curve.hit_rate(current + stride) - base
            utility = weight * frequency * gain / stride
            if utility > best_utility + 1e-15:
                best_utility, best_stride = utility, stride
        return best_utility, best_stride

    def allocate(
        self,
        curves: Mapping[QueueId, HitRateCurve],
        frequencies: Mapping[QueueId, float],
        total: float,
        weights: Optional[Mapping[QueueId, float]] = None,
    ) -> AllocationPlan:
        self._validate(curves, frequencies, total)
        queue_ids = list(curves)
        if self.minimum * len(queue_ids) > total:
            raise AllocationError(
                f"minimum {self.minimum} x {len(queue_ids)} queues exceeds "
                f"budget {total}"
            )
        allocations: Dict[QueueId, float] = {
            queue_id: self.minimum for queue_id in queue_ids
        }
        remaining = total - self.minimum * len(queue_ids)
        weight_of = (lambda q: weights.get(q, 1.0)) if weights else (
            lambda q: 1.0
        )
        while remaining >= self.granularity:
            best: Tuple[float, float, Optional[QueueId]] = (0.0, 0.0, None)
            for queue_id in queue_ids:
                utility, stride = self._best_stride(
                    curves[queue_id],
                    frequencies[queue_id],
                    weight_of(queue_id),
                    allocations[queue_id],
                    remaining,
                )
                if utility > best[0] + 1e-15:
                    best = (utility, stride, queue_id)
            if best[2] is None:
                break
            allocations[best[2]] += best[1]
            remaining -= best[1]
        if remaining > 0 and queue_ids:
            share = remaining / len(queue_ids)
            for queue_id in queue_ids:
                allocations[queue_id] += share
        return self._finish_plan(allocations, curves, frequencies, weights)
