"""Trivial static plans used as sanity baselines and initializers."""

from __future__ import annotations

from typing import Dict, Hashable, Mapping, Sequence

from repro.common.errors import AllocationError


def uniform_plan(
    queue_ids: Sequence[Hashable], total: float
) -> Dict[Hashable, float]:
    """Split ``total`` evenly across queues."""
    if not queue_ids:
        raise AllocationError("no queues")
    if total <= 0:
        raise AllocationError(f"budget must be positive, got {total}")
    share = total / len(queue_ids)
    return {queue_id: share for queue_id in queue_ids}


def proportional_plan(
    demand: Mapping[Hashable, float], total: float
) -> Dict[Hashable, float]:
    """Split ``total`` proportionally to per-queue demand (e.g. byte
    arrival volume), which is roughly what first-come-first-serve
    converges to under steady load."""
    if not demand:
        raise AllocationError("no queues")
    if total <= 0:
        raise AllocationError(f"budget must be positive, got {total}")
    denominator = sum(demand.values())
    if denominator <= 0:
        return uniform_plan(list(demand), total)
    return {
        queue_id: total * amount / denominator
        for queue_id, amount in demand.items()
    }
