"""The Dynacache solver (paper section 2.1, Equation 1).

Dynacache estimates stack distances with the Mimir bucket algorithm and
solves Equation 1 *under the assumption that every hit-rate curve is
concave*. For concave curves, greedy marginal-utility allocation is exactly
optimal (the classic water-filling argument: equalize ``f_i h'_i(m_i)``),
so the solver is implemented as chunked greedy ascent.

Both paper-documented failure modes are preserved by construction:

* **Performance cliffs** (section 3.5): on a convex region the local
  marginal utility underestimates what lies past the cliff, so the greedy
  ascent never pays the entry cost and starves the queue -- this is how
  "the solver ... significantly reduces [Application 19's] hit rate from
  99.5% to 74.7%".
* **Estimation error** (section 3.1): when fed Mimir-estimated curves the
  bucket resolution smears fine structure, so sparse queues are
  mis-allocated.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional

from repro.allocation.base import AllocationPlan, Allocator, QueueId
from repro.common.errors import AllocationError
from repro.profiling.hrc import HitRateCurve


class DynacacheSolver(Allocator):
    """Greedy marginal-utility solver for concave hit-rate curves.

    Args:
        granularity: Allocation step size, in the curves' size unit. The
            paper's solver works at slab-page granularity; experiments use
            one chunk or a small multiple.
        minimum: Floor given to every queue before greedy ascent starts
            (0 reproduces the solver's willingness to fully starve a
            queue, as in Table 1's application 6 class 2 under default /
            class 0 under the plan).
    """

    def __init__(self, granularity: float, minimum: float = 0.0) -> None:
        if granularity <= 0:
            raise AllocationError(
                f"granularity must be positive, got {granularity}"
            )
        if minimum < 0:
            raise AllocationError(f"minimum must be >= 0, got {minimum}")
        self.granularity = granularity
        self.minimum = minimum

    def allocate(
        self,
        curves: Mapping[QueueId, HitRateCurve],
        frequencies: Mapping[QueueId, float],
        total: float,
        weights: Optional[Mapping[QueueId, float]] = None,
    ) -> AllocationPlan:
        self._validate(curves, frequencies, total)
        queue_ids = list(curves)
        if self.minimum * len(queue_ids) > total:
            raise AllocationError(
                f"minimum {self.minimum} x {len(queue_ids)} queues exceeds "
                f"budget {total}"
            )
        allocations: Dict[QueueId, float] = {
            queue_id: self.minimum for queue_id in queue_ids
        }
        remaining = total - self.minimum * len(queue_ids)
        weight_of = (lambda q: weights.get(q, 1.0)) if weights else (
            lambda q: 1.0
        )
        step = self.granularity

        def marginal(queue_id: QueueId) -> float:
            size = allocations[queue_id]
            curve = curves[queue_id]
            gain = curve.hit_rate(size + step) - curve.hit_rate(size)
            return weight_of(queue_id) * frequencies[queue_id] * gain

        # Greedy ascent: hand out one step at a time to the steepest
        # queue. A heap would be asymptotically nicer but marginals change
        # after every grant only for the winner, so we just recompute the
        # winner's entry; queue counts here are tens, not thousands.
        marginals = {queue_id: marginal(queue_id) for queue_id in queue_ids}
        while remaining >= step:
            winner = max(queue_ids, key=lambda q: (marginals[q], str(q)))
            if marginals[winner] <= 0.0:
                break  # every curve is locally flat: solver is done
            allocations[winner] += step
            remaining -= step
            marginals[winner] = marginal(winner)
        # Budget left once every *estimated* curve looks flat is spread in
        # proportion to what the greedy ascent already granted. This
        # mirrors a concave solver's behaviour -- and preserves its
        # paper-documented failure: a queue whose estimated gradient was
        # flat because its true curve is a cliff received nothing during
        # the ascent and therefore receives (almost) nothing now, so the
        # solver "falls off" cliffs it cannot see (section 3.5,
        # application 19). An even spread here would accidentally rescue
        # those queues.
        if remaining > 0 and queue_ids:
            granted = sum(allocations.values())
            if granted > 0:
                for queue_id in queue_ids:
                    allocations[queue_id] += (
                        remaining * allocations[queue_id] / granted
                    )
            else:
                share = remaining / len(queue_ids)
                for queue_id in queue_ids:
                    allocations[queue_id] += share
        return self._finish_plan(allocations, curves, frequencies, weights)
