"""Fast Zipfian popularity sampling.

Web-cache key popularity is heavy-tailed; the standard model (used by the
Facebook SIGMETRICS study and by mutilate) is a Zipf distribution over a
fixed key universe: the rank-``r`` key is requested with probability
proportional to ``1 / r**alpha``. Sampling is vectorized through an
inverse-CDF table (numpy ``searchsorted``), which makes generating
multi-million-request traces cheap.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.common.errors import ConfigurationError


class ZipfSampler:
    """Samples 0-based ranks with ``P(r) ~ 1 / (r + 1)**alpha``.

    Args:
        num_keys: Size of the key universe.
        alpha: Skew; 0 is uniform, ~1 matches typical web workloads.
        rng: Optional ``numpy.random.Generator`` (created from ``seed``
            otherwise).
        seed: Seed when ``rng`` is not supplied.
    """

    def __init__(
        self,
        num_keys: int,
        alpha: float,
        rng: Optional[np.random.Generator] = None,
        seed: int = 0,
    ) -> None:
        if num_keys < 1:
            raise ConfigurationError(f"num_keys must be >= 1, got {num_keys}")
        if alpha < 0:
            raise ConfigurationError(f"alpha must be >= 0, got {alpha}")
        self.num_keys = num_keys
        self.alpha = alpha
        self.rng = rng if rng is not None else np.random.default_rng(seed)
        weights = 1.0 / np.power(
            np.arange(1, num_keys + 1, dtype=float), alpha
        )
        self._cdf = np.cumsum(weights)
        self._cdf /= self._cdf[-1]

    def sample(self, count: int = 1) -> np.ndarray:
        """Draw ``count`` ranks (0-based ints, shape ``(count,)``)."""
        if count < 0:
            raise ConfigurationError(f"count must be >= 0, got {count}")
        uniforms = self.rng.random(count)
        return np.searchsorted(self._cdf, uniforms, side="left")

    def sample_one(self) -> int:
        return int(self.sample(1)[0])

    def probability(self, rank: int) -> float:
        """P(rank); useful for analytic checks in tests."""
        if not 0 <= rank < self.num_keys:
            raise ConfigurationError(f"rank {rank} out of range")
        lower = self._cdf[rank - 1] if rank > 0 else 0.0
        return float(self._cdf[rank] - lower)
