"""Facebook-style micro-benchmark workloads (paper sections 5.1, 5.6).

The paper stresses its implementation with mutilate, "a load generator
that simulates traffic from the 2012 Facebook study". Two streams stand in
for it:

* :class:`FacebookETCStream` -- the ETC pool model from Atikoglu et al.:
  short keys (16-45 B), generalized-Pareto values, Zipf popularity, and
  the production GET/SET mix (96.7% / 3.3%, Table 7 row 1).
* :class:`UniqueKeyStream` -- the paper's worst case for overhead
  measurement: "a synthetic trace where all keys are unique and all
  queries miss the cache" (section 5.6), with a configurable GET/SET mix
  for Table 7's sweep.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.common.errors import ConfigurationError
from repro.common.hashing import stable_hash_u64
from repro.workloads.generators import RequestStream, _timestamps
from repro.workloads.sizes import GeneralizedParetoSize, SizeModel
from repro.workloads.trace import Request
from repro.workloads.zipf import ZipfSampler

#: The production GET fraction the paper quotes (Table 7, first row).
FACEBOOK_GET_FRACTION = 0.967


def _etc_key_size(key: str) -> int:
    """ETC key sizes cluster in 16-45 bytes (Atikoglu et al., Fig. 2)."""
    return 16 + stable_hash_u64(key, salt=211) % 30


@dataclass
class FacebookETCStream(RequestStream):
    """Zipf-popular requests with ETC key/value size distributions."""

    app: str = "etc"
    num_keys: int = 200_000
    alpha: float = 0.95
    get_fraction: float = FACEBOOK_GET_FRACTION
    seed: int = 0

    def __post_init__(self) -> None:
        if not 0.0 <= self.get_fraction <= 1.0:
            raise ConfigurationError(
                f"get_fraction must be in [0, 1]: {self.get_fraction}"
            )
        self._sizes: SizeModel = GeneralizedParetoSize()

    def generate(
        self, num_requests: int, duration: float, start_time: float = 0.0
    ) -> Iterator[Request]:
        rng = np.random.default_rng(self.seed)
        sampler = ZipfSampler(self.num_keys, self.alpha, rng=rng)
        ranks = sampler.sample(num_requests)
        is_get = rng.random(num_requests) < self.get_fraction
        times = _timestamps(num_requests, duration, start_time)
        for i in range(num_requests):
            key = f"{self.app}:fb:{ranks[i]}"
            yield Request(
                time=float(times[i]),
                app=self.app,
                key=key,
                op="get" if is_get[i] else "set",
                value_size=self._sizes.size_of(key),
                key_size=_etc_key_size(key),
            )


@dataclass
class UniqueKeyStream(RequestStream):
    """Every key distinct: the all-miss worst case of section 5.6.

    Every GET misses and every operation allocates, evicts and touches
    the shadow queues, maximizing Cliffhanger's overhead.
    """

    app: str = "worstcase"
    get_fraction: float = FACEBOOK_GET_FRACTION
    seed: int = 0

    def __post_init__(self) -> None:
        if not 0.0 <= self.get_fraction <= 1.0:
            raise ConfigurationError(
                f"get_fraction must be in [0, 1]: {self.get_fraction}"
            )
        self._sizes: SizeModel = GeneralizedParetoSize()

    def generate(
        self, num_requests: int, duration: float, start_time: float = 0.0
    ) -> Iterator[Request]:
        rng = np.random.default_rng(self.seed)
        is_get = rng.random(num_requests) < self.get_fraction
        times = _timestamps(num_requests, duration, start_time)
        for i in range(num_requests):
            key = f"{self.app}:u:{self.seed}:{i}"
            yield Request(
                time=float(times[i]),
                app=self.app,
                key=key,
                op="get" if is_get[i] else "set",
                value_size=self._sizes.size_of(key),
                key_size=_etc_key_size(key),
            )
