"""The synthetic 20-application "Memcachier-like" trace.

The paper's evaluation replays a proprietary week-long trace of the top 20
applications of Memcachier. This module synthesizes a stand-in with the
same *structure* (DESIGN.md, substitution 1):

* per-application memory reservations and request shares;
* per-application slab-class footprints (size mixes) chosen to reproduce
  the paper's allocation pathologies -- e.g. application 4's and 6's
  large-item classes crowding out hot small-item classes (Table 1);
* performance cliffs in the six applications the paper stars
  (1, 7, 10, 11, 18, 19) by blending sequential scans into otherwise
  concave Zipf workloads (sections 3.5, Figure 3);
* phase changes (popularity bursts moving between slab classes) in
  applications 5, 9 and 19, which reward incremental algorithms over the
  week-long-profile solver (sections 5.2-5.4, Figure 8).

Reservations are *calibrated analytically*: given a Zipf component we
compute the cache size whose popularity mass equals the target default
hit rate, then set the reservation around it. Absolute hit rates will not
match Memcachier's (different universe), but the orderings the paper
reports -- who has headroom, where the solver fails, where cliffs bite --
are reproduced by construction. ``scale`` shrinks key universes,
reservations and request counts together, which approximately preserves
those relationships at a fraction of the replay cost.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Tuple

import numpy as np

from repro.common.constants import ITEM_OVERHEAD_BYTES
from repro.common.errors import ConfigurationError
from repro.cache.slabs import SlabGeometry
from repro.workloads.generators import (
    Component,
    MixtureStream,
    Phase,
    RequestStream,
    ReuseDistanceStream,
    ZipfStream,
)
from repro.workloads.sizes import FixedSize
from repro.workloads.trace import Request, merge_by_time

#: Simulated trace duration: one week, like the paper's trace.
WEEK_SECONDS = 7 * 24 * 3600.0

#: Total requests across all applications at scale=1.0.
BASE_TOTAL_REQUESTS = 2_000_000

#: Average key length of generated keys ("app07:z:12345" ~ 14 bytes),
#: matching the Memcachier average the paper reports (section 5.7).
_GEOMETRY = SlabGeometry.default()


def value_size_for_class(class_index: int, key_bytes: int = 14) -> int:
    """A value size that lands items squarely in ``class_index``."""
    chunk = _GEOMETRY.chunk_size(class_index)
    value = int(chunk * 0.75) - key_bytes - ITEM_OVERHEAD_BYTES
    return max(1, value)


def zipf_cache_for_hit_rate(
    num_keys: int, alpha: float, target_hit_rate: float
) -> int:
    """Smallest key count whose Zipf popularity mass >= the target.

    An LRU holding the hottest C keys of a Zipf(alpha) stream hits with
    probability ~ mass(top C); inverting that gives the cache size a
    desired default hit rate needs. Used to place reservations relative
    to working sets.
    """
    if not 0.0 < target_hit_rate <= 1.0:
        raise ConfigurationError(
            f"target hit rate must be in (0, 1]: {target_hit_rate}"
        )
    weights = 1.0 / np.power(np.arange(1, num_keys + 1, dtype=float), alpha)
    mass = np.cumsum(weights)
    mass /= mass[-1]
    return int(np.searchsorted(mass, target_hit_rate)) + 1


@dataclass(frozen=True)
class AppSpec:
    """Static description of one synthetic application.

    ``factory(scale, seed)`` returns the request stream and the
    reservation in bytes for that scale. ``min_requests`` floors the
    app's request count regardless of scale: cliff applications need
    enough requests for their reuse-distance cycles to reach steady
    state (roughly ``cliff_center x refs_per_key x 3``), and the key
    universes themselves are floored at small scales.
    """

    index: int
    share: float
    has_cliff: bool
    summary: str
    factory: Callable[[float, int], Tuple[RequestStream, float]]
    min_requests: int = 1000

    @property
    def name(self) -> str:
        return f"app{self.index:02d}"


def _keys(scale: float, base: int, minimum: int = 200) -> int:
    return max(minimum, int(base * scale))


def _chunk_bytes(class_index: int, items: float) -> float:
    return _GEOMETRY.chunk_size(class_index) * items


# ---------------------------------------------------------------------------
# Application factories. Index comments give the paper behaviour each one
# is shaped to echo.
# ---------------------------------------------------------------------------


def _plain_zipf_app(
    index: int,
    base_keys: int,
    alpha: float,
    class_index: int,
    target_default_hit_rate: float,
    reservation_slack: float = 1.0,
) -> Callable[[float, int], Tuple[RequestStream, float]]:
    """A single-class concave application."""

    def factory(scale: float, seed: int) -> Tuple[RequestStream, float]:
        name = f"app{index:02d}"
        num_keys = _keys(scale, base_keys)
        stream = ZipfStream(
            app=name,
            num_keys=num_keys,
            alpha=alpha,
            size_model=FixedSize(value_size_for_class(class_index)),
            seed=seed,
        )
        hot = zipf_cache_for_hit_rate(
            num_keys, alpha, target_default_hit_rate
        )
        reservation = _chunk_bytes(class_index, hot * reservation_slack)
        return stream, reservation

    return factory


def _cliff_app(
    index: int,
    base_hot_keys: int,
    base_scan_keys: int,
    alpha: float,
    class_index: int,
    scan_weight: float,
    reservation_fraction_of_cliff: float,
    second_class: int = None,
    second_weight: float = 0.0,
    burst_second: bool = False,
) -> Callable[[float, int], Tuple[RequestStream, float]]:
    """Zipf head + normally-distributed reuse distances: a smooth cliff.

    The cliff component's hit-rate curve is a sigmoid centered at the
    reuse-distance mean (see
    :class:`~repro.workloads.generators.ReuseDistanceStream`).
    ``reservation_fraction_of_cliff`` places the default allocation
    relative to the cliff top: < 1 leaves the queue stuck inside the
    convex ramp (where default LRU scores near zero on the cliff share
    and cliff scaling recovers the concave hull), > 1 gives the default
    scheme the full cliff (where a concave-assuming solver then *takes
    memory away* and falls off it, the Application 19 failure).
    """

    def factory(scale: float, seed: int) -> Tuple[RequestStream, float]:
        name = f"app{index:02d}"
        cliff_center = _keys(scale, base_scan_keys, minimum=150)
        # The zipf head must saturate well below the ramp so the curve
        # keeps a visible flat shoulder followed by a convex climb (the
        # Figure 3 shape); a head as wide as the ramp blurs the cliff
        # into a concave curve. base_hot_keys only sizes the optional
        # second (sink) class.
        hot_keys = max(60, cliff_center // 4)
        size_model = FixedSize(value_size_for_class(class_index))
        head_weight = max(0.1, 1.0 - scan_weight - second_weight)
        components = [
            Component(
                ZipfStream(
                    app=name,
                    num_keys=hot_keys,
                    alpha=alpha,
                    size_model=size_model,
                    namespace="z",
                    seed=seed,
                ),
                weight=head_weight,
            ),
            Component(
                ReuseDistanceStream(
                    app=name,
                    mean_items=cliff_center,
                    sigma_items=max(8, cliff_center // 5),
                    size_model=size_model,
                    refs_per_key=9,
                    namespace="s",
                    seed=seed + 7,
                ),
                weight=scan_weight,
            ),
        ]
        # reservation_fraction_of_cliff < 1 places the queue inside the
        # ramp (~fraction x center items once the head is resident);
        # > 1 covers the cliff.
        reservation = _chunk_bytes(
            class_index,
            hot_keys * 0.5
            + cliff_center * reservation_fraction_of_cliff,
        )
        if second_class is not None and second_weight > 0:
            # The second class is a concave "sink": low skew over a large
            # universe keeps its estimated gradient positive across the
            # whole budget, so a concave-assuming solver pours the
            # reservation into it and starves the cliff class -- the
            # paper's application 18/19 failure.
            second_keys = _keys(scale, base_hot_keys)
            phases = (
                (Phase(0.0, 0.75, 0.15), Phase(0.75, 1.0, 6.0))
                if burst_second
                else ()
            )
            components.append(
                Component(
                    ZipfStream(
                        app=name,
                        num_keys=second_keys,
                        alpha=0.5,
                        size_model=FixedSize(
                            value_size_for_class(second_class)
                        ),
                        namespace="b",
                        seed=seed + 1,
                    ),
                    weight=second_weight,
                    phases=phases,
                )
            )
            reservation += _chunk_bytes(second_class, second_keys * 0.25)
        return MixtureStream(name, components, seed=seed), reservation

    return factory


def _imbalanced_classes_app(
    index: int,
    classes: List[Tuple[int, float, int, float]],
    reservation_fraction: float,
) -> Callable[[float, int], Tuple[RequestStream, float]]:
    """Multiple slab classes with mismatched value: the Table 1 shape.

    ``classes`` rows are ``(class_index, get_share, base_keys, alpha)``.
    Large low-reuse classes generate high *byte* arrival volume, so the
    first-come-first-serve allocation hands them the memory while hot
    small classes starve -- which is precisely what the solver and
    Cliffhanger then fix.
    """

    def factory(scale: float, seed: int) -> Tuple[RequestStream, float]:
        name = f"app{index:02d}"
        components = []
        ideal_bytes = 0.0
        for position, (class_index, share, base_keys, alpha) in enumerate(
            classes
        ):
            num_keys = _keys(scale, base_keys)
            components.append(
                Component(
                    ZipfStream(
                        app=name,
                        num_keys=num_keys,
                        alpha=alpha,
                        size_model=FixedSize(
                            value_size_for_class(class_index)
                        ),
                        namespace=f"c{class_index}",
                        seed=seed + position,
                    ),
                    weight=share,
                )
            )
            hot = zipf_cache_for_hit_rate(num_keys, alpha, 0.9)
            ideal_bytes += _chunk_bytes(class_index, hot)
        reservation = ideal_bytes * reservation_fraction
        return MixtureStream(name, components, seed=seed), reservation

    return factory


def _phased_app(
    index: int,
    base_keys: int,
    alpha: float,
    classes: List[int],
    reservation_fraction: float,
) -> Callable[[float, int], Tuple[RequestStream, float]]:
    """Popularity rotates across slab classes over the week (Figure 8)."""

    def factory(scale: float, seed: int) -> Tuple[RequestStream, float]:
        name = f"app{index:02d}"
        num_phases = len(classes)
        components = []
        ideal_bytes = 0.0
        for position, class_index in enumerate(classes):
            num_keys = _keys(scale, base_keys)
            start = position / num_phases
            end = (position + 1) / num_phases
            components.append(
                Component(
                    ZipfStream(
                        app=name,
                        num_keys=num_keys,
                        alpha=alpha,
                        size_model=FixedSize(
                            value_size_for_class(class_index)
                        ),
                        namespace=f"p{class_index}",
                        seed=seed + position,
                    ),
                    weight=1.0,
                    phases=(Phase(start, min(end, 1.0), 8.0),),
                )
            )
            hot = zipf_cache_for_hit_rate(num_keys, alpha, 0.95)
            ideal_bytes += _chunk_bytes(class_index, hot)
        reservation = ideal_bytes * reservation_fraction
        return MixtureStream(name, components, seed=seed), reservation

    return factory


def _churn_app(
    index: int,
    base_keys: int,
    alpha: float,
    class_index: int,
    reservation_fraction: float,
) -> Callable[[float, int], Tuple[RequestStream, float]]:
    """Key universe rotates mid-week: week-long profiles mislead the
    solver, incremental adaptation (Cliffhanger) keeps up (the
    application 9 / 18 behaviour of section 5.2)."""

    def factory(scale: float, seed: int) -> Tuple[RequestStream, float]:
        name = f"app{index:02d}"
        num_keys = _keys(scale, base_keys)
        size_model = FixedSize(value_size_for_class(class_index))
        halves = []
        for half, (start, end) in enumerate(((0.0, 0.5), (0.5, 1.0))):
            halves.append(
                Component(
                    ZipfStream(
                        app=name,
                        num_keys=num_keys,
                        alpha=alpha,
                        size_model=size_model,
                        namespace=f"g{half}",
                        seed=seed + half,
                    ),
                    weight=0.02,
                    phases=(Phase(start, end, 50.0),),
                )
            )
        hot = zipf_cache_for_hit_rate(num_keys, alpha, 0.9)
        reservation = _chunk_bytes(class_index, hot) * reservation_fraction
        return MixtureStream(name, halves, seed=seed), reservation

    return factory


def _app19(scale: float, seed: int) -> Tuple[RequestStream, float]:
    """Application 19: performance cliffs in *both* slab classes.

    Class 2 carries a steady cliff (center ~13500 items, echoing the
    paper's Figure 4 curve); class 3 carries a second cliff whose traffic
    bursts in the last quarter of the week ("a long period where the
    application sends requests belonging to Slab Class 0, and then sends
    a burst of requests belonging to Slab Class 1", section 5.4). The
    default reservation covers both cliffs, so the week-long default hit
    rate is high -- and a concave-assuming solver, seeing flat estimated
    gradients below the cliffs, strips the memory away and falls off
    them.
    """
    name = "app19"
    # Cliff centers sized so the app's request share sustains ~3 full
    # reuse generations (center x (refs+1) x 3 requests); the paper's
    # absolute 13500-item cliff is out of reach of a scaled replay.
    center_a = _keys(scale, 2_000, minimum=250)
    center_b = _keys(scale, 800, minimum=120)
    sink_keys = _keys(scale, 30_000, minimum=2_000)
    size_a = FixedSize(value_size_for_class(2))
    size_b = FixedSize(value_size_for_class(3))
    components = [
        # Cliff in slab class 2 (the paper's slab 0 / Figure 4 curve),
        # with a small concave zipf head so the estimated gradient is
        # positive below the cliff -- the solver funds the head, stalls
        # at the flat shoulder, and never pays for the ramp.
        Component(
            ReuseDistanceStream(
                app=name,
                mean_items=center_a,
                sigma_items=max(10, center_a // 5),
                size_model=size_a,
                refs_per_key=9,
                namespace="s",
                seed=seed + 7,
            ),
            weight=0.57,
        ),
        Component(
            ZipfStream(
                app=name,
                num_keys=max(100, center_a // 8),
                alpha=1.0,
                size_model=size_a,
                namespace="z",
                seed=seed,
            ),
            weight=0.10,
        ),
        # Cliff in slab class 3 (the paper's slab 1), bursting in the
        # last quarter of the week (section 5.4).
        Component(
            ReuseDistanceStream(
                app=name,
                mean_items=center_b,
                sigma_items=max(12, center_b // 3),
                size_model=size_b,
                refs_per_key=9,
                namespace="t",
                seed=seed + 8,
            ),
            weight=0.18,
            phases=(Phase(0.0, 0.75, 0.4), Phase(0.75, 1.0, 2.8)),
        ),
        # Concave sink: low-skew traffic over a large class-5 universe.
        # Its gradient stays positive across the whole reservation, so
        # the concave solver drains the cliff classes into it.
        Component(
            ZipfStream(
                app=name,
                num_keys=sink_keys,
                alpha=0.5,
                size_model=FixedSize(value_size_for_class(5)),
                namespace="u",
                seed=seed + 9,
            ),
            weight=0.15,
        ),
    ]
    reservation = (
        _chunk_bytes(2, center_a * 1.35)
        + _chunk_bytes(3, center_b * 1.35)
        + _chunk_bytes(5, sink_keys * 0.12)
    )
    return MixtureStream(name, components, seed=seed), reservation


#: The 20 applications. Shares echo a head-heavy tenant distribution and
#: are normalized at build time. Asterisked (cliff) apps: 1, 7, 10, 11,
#: 18, 19 -- matching Figure 2's annotation.
APP_SPECS: List[AppSpec] = [
    AppSpec(1, 0.26, True, "large, mid hit rate, cliff",
            _cliff_app(1, 60_000, 12_000, 0.9, 3, 0.60, 0.72),
            min_requests=15_000),
    AppSpec(2, 0.12, False, "low hit rate, flat popularity, under-provisioned",
            _plain_zipf_app(2, 150_000, 0.55, 4, 0.275)),
    AppSpec(3, 0.10, False, "very high hit rate, two classes (Fig 1 slab 9)",
            _imbalanced_classes_app(
                3, [(2, 0.90, 20_000, 1.15), (9, 0.10, 1_200, 1.1)], 1.15)),
    AppSpec(4, 0.09, False, "big class crowds small class (Table 1)",
            _imbalanced_classes_app(
                4, [(6, 0.09, 40_000, 0.35), (1, 0.91, 25_000, 1.05)], 0.50)),
    AppSpec(5, 0.08, False, "multi-class with weekly phase drift (Fig 8)",
            _phased_app(5, 12_000, 1.2, [4, 5, 6, 7, 8, 9], 0.8)),
    AppSpec(6, 0.05, False, "severe class imbalance (Table 1: 92.6% -> 0%)",
            _imbalanced_classes_app(
                6,
                [(0, 0.01, 2_000, 1.0), (2, 0.70, 30_000, 1.1),
                 (8, 0.29, 12_000, 0.30)],
                0.40)),
    AppSpec(7, 0.045, True, "cliff, moderately provisioned",
            _cliff_app(7, 30_000, 2_200, 0.95, 2, 0.60, 0.75),
            min_requests=12_000),
    AppSpec(8, 0.04, False, "healthy zipf",
            _plain_zipf_app(8, 40_000, 1.0, 3, 0.90)),
    AppSpec(9, 0.038, False, "mid-week churn: solver misled",
            _churn_app(9, 30_000, 1.0, 2, 0.9)),
    AppSpec(10, 0.035, True, "cliff",
            _cliff_app(10, 25_000, 1_700, 0.9, 4, 0.55, 0.70),
            min_requests=10_000),
    AppSpec(11, 0.03, True, "cliff in slab class 6 (Fig 3)",
            _cliff_app(11, 18_000, 1_400, 0.85, 6, 0.60, 0.72),
            min_requests=10_000),
    AppSpec(12, 0.028, False, "healthy zipf",
            _plain_zipf_app(12, 25_000, 1.05, 2, 0.95)),
    AppSpec(13, 0.026, False, "healthy zipf, solver == cliffhanger",
            _plain_zipf_app(13, 20_000, 1.1, 3, 0.93)),
    AppSpec(14, 0.024, False, "imbalanced classes: solver cuts misses >65%",
            _imbalanced_classes_app(
                14, [(1, 0.75, 20_000, 1.1), (8, 0.25, 8_000, 0.35)], 0.45)),
    AppSpec(15, 0.022, False, "healthy zipf",
            _plain_zipf_app(15, 15_000, 1.1, 2, 0.96)),
    AppSpec(16, 0.020, False, "imbalanced classes: solver cuts misses >65%",
            _imbalanced_classes_app(
                16, [(2, 0.80, 22_000, 1.05), (9, 0.20, 6_000, 0.3)], 0.45)),
    AppSpec(17, 0.018, False, "three imbalanced classes",
            _imbalanced_classes_app(
                17,
                [(1, 0.55, 15_000, 1.1), (4, 0.30, 12_000, 0.9),
                 (9, 0.15, 5_000, 0.3)],
                0.50)),
    AppSpec(18, 0.016, True, "cliff; solver increases misses 13.6x",
            _cliff_app(18, 10_000, 800, 1.0, 3, 0.5, 1.25,
                       second_class=5, second_weight=0.3),
            min_requests=9_000),
    AppSpec(19, 0.04, True,
            "two cliff classes; solver drops 99.5% -> 74.7% (Fig 4, Tab 4)",
            lambda scale, seed: _app19(scale, seed),
            min_requests=20_000),
    AppSpec(20, 0.012, False, "healthy zipf",
            _plain_zipf_app(20, 12_000, 0.95, 3, 0.92)),
]


@dataclass
class MemcachierTrace:
    """A built trace: lazily-merged requests plus per-app metadata."""

    scale: float
    seed: int
    total_requests: int
    reservations: Dict[str, float]
    requests_per_app: Dict[str, int]
    specs: Dict[str, AppSpec]
    _streams: Dict[str, RequestStream]

    def requests(self) -> Iterator[Request]:
        """Yield the merged, time-ordered trace (regenerable)."""
        per_app = [
            self._streams[spec.name].generate(
                self.requests_per_app[spec.name], WEEK_SECONDS
            )
            for spec in self.specs.values()
        ]
        return merge_by_time(per_app)

    def app_requests(self, app: str) -> Iterator[Request]:
        """Yield one application's stream only."""
        return self._streams[app].generate(
            self.requests_per_app[app], WEEK_SECONDS
        )

    @property
    def app_names(self) -> List[str]:
        return [spec.name for spec in self.specs.values()]


def build_memcachier_trace(
    scale: float = 1.0,
    seed: int = 0,
    apps: List[int] = None,
    total_requests: int = None,
) -> MemcachierTrace:
    """Construct the synthetic trace.

    Args:
        scale: Scales key universes, reservations and request counts
            together (1.0 ~ 2M requests; benchmarks use ~0.02-0.05).
        seed: Master seed; every application derives its own.
        apps: Optional subset of application indices (1-based), e.g.
            ``[3, 4, 5]`` for Table 2.
        total_requests: Override the scaled request budget.
    """
    if scale <= 0:
        raise ConfigurationError(f"scale must be positive, got {scale}")
    chosen = [
        spec
        for spec in APP_SPECS
        if apps is None or spec.index in set(apps)
    ]
    if not chosen:
        raise ConfigurationError(f"no applications selected from {apps}")
    budget = total_requests or int(BASE_TOTAL_REQUESTS * scale)
    share_total = sum(spec.share for spec in chosen)
    streams: Dict[str, RequestStream] = {}
    reservations: Dict[str, float] = {}
    counts: Dict[str, int] = {}
    for spec in chosen:
        stream, reservation = spec.factory(scale, seed + spec.index * 1000)
        streams[spec.name] = stream
        reservations[spec.name] = max(reservation, 64 * 1024)
        counts[spec.name] = max(
            spec.min_requests, int(budget * spec.share / share_total)
        )
    return MemcachierTrace(
        scale=scale,
        seed=seed,
        total_requests=sum(counts.values()),
        reservations=reservations,
        requests_per_app=counts,
        specs={spec.name: spec for spec in chosen},
        _streams=streams,
    )
