"""Deterministic per-key item-size models.

Trace replay requires that a key always has the same value size (the
simulator classifies requests into slab classes by size, and a key that
flapped between classes would create phantom misses). Every model here
derives the size from a stable hash of the key, so repeated requests --
and repeated *runs* -- agree.

The generalized Pareto model reproduces the value-size distribution
measured at Facebook (Atikoglu et al., SIGMETRICS 2012), which the paper's
micro-benchmarks use via mutilate (section 5.1/5.6).
"""

from __future__ import annotations

import abc
import math
from statistics import NormalDist
from typing import Sequence, Tuple

from repro.common.errors import ConfigurationError
from repro.common.hashing import unit_interval_hash

#: Memcached's largest storable value in the default geometry; all models
#: clamp to it so generated items always fit a slab class.
_MAX_VALUE_BYTES = (1 << 20) - 4096


class SizeModel(abc.ABC):
    """Maps a key to its (stable) value size in bytes."""

    @abc.abstractmethod
    def size_of(self, key: str) -> int:
        """Value size for ``key`` -- deterministic across calls."""

    @staticmethod
    def _clamp(size: float) -> int:
        return int(max(1, min(_MAX_VALUE_BYTES, round(size))))


class FixedSize(SizeModel):
    """Every key has the same value size (single slab class)."""

    def __init__(self, size: int) -> None:
        if size < 1:
            raise ConfigurationError(f"size must be >= 1, got {size}")
        self.size = self._clamp(size)

    def size_of(self, key: str) -> int:
        return self.size


class UniformSize(SizeModel):
    """Value sizes uniform in ``[low, high]`` (hash-derived)."""

    def __init__(self, low: int, high: int, salt: int = 101) -> None:
        if not 1 <= low <= high:
            raise ConfigurationError(f"bad range [{low}, {high}]")
        self.low, self.high, self.salt = low, high, salt

    def size_of(self, key: str) -> int:
        u = unit_interval_hash(key, self.salt)
        return self._clamp(self.low + u * (self.high - self.low))


class LogNormalSize(SizeModel):
    """Log-normally distributed value sizes around a median."""

    def __init__(self, median: int, sigma: float = 0.8, salt: int = 103) -> None:
        if median < 1:
            raise ConfigurationError(f"median must be >= 1, got {median}")
        if sigma <= 0:
            raise ConfigurationError(f"sigma must be positive, got {sigma}")
        self.median, self.sigma, self.salt = median, sigma, salt
        self._normal = NormalDist(mu=math.log(median), sigma=sigma)

    def size_of(self, key: str) -> int:
        u = unit_interval_hash(key, self.salt)
        # Guard the inverse CDF's open interval.
        u = min(max(u, 1e-12), 1.0 - 1e-12)
        return self._clamp(math.exp(self._normal.inv_cdf(u)))


class GeneralizedParetoSize(SizeModel):
    """Facebook ETC value sizes: GP(location=0, scale=214.476, shape=0.348).

    Inverse CDF: ``x = scale/shape * ((1 - u)**(-shape) - 1)``. Parameters
    from Atikoglu et al., Table 3 (ETC pool), the distribution mutilate
    replays.
    """

    def __init__(
        self,
        scale: float = 214.476,
        shape: float = 0.348468,
        minimum: int = 1,
        salt: int = 107,
    ) -> None:
        if scale <= 0 or shape <= 0:
            raise ConfigurationError("scale and shape must be positive")
        self.scale, self.shape = scale, shape
        self.minimum, self.salt = minimum, salt

    def size_of(self, key: str) -> int:
        u = unit_interval_hash(key, self.salt)
        u = min(u, 1.0 - 1e-12)
        x = self.scale / self.shape * ((1.0 - u) ** (-self.shape) - 1.0)
        return self._clamp(max(self.minimum, x))


class MixtureSize(SizeModel):
    """Each key is assigned (by hash) to one of several size models.

    This is how multi-slab-class applications are synthesized: e.g. 70%
    of keys small and 30% large reproduces the "large requests take up too
    much space at the expense of smaller requests" pathology of Table 1.
    """

    def __init__(
        self,
        components: Sequence[Tuple[float, SizeModel]],
        salt: int = 109,
    ) -> None:
        if not components:
            raise ConfigurationError("mixture needs at least one component")
        total = sum(weight for weight, _ in components)
        if total <= 0:
            raise ConfigurationError("mixture weights must sum > 0")
        self.salt = salt
        self._thresholds = []
        acc = 0.0
        for weight, model in components:
            if weight < 0:
                raise ConfigurationError("negative mixture weight")
            acc += weight / total
            self._thresholds.append((acc, model))

    def size_of(self, key: str) -> int:
        u = unit_interval_hash(key, self.salt)
        for threshold, model in self._thresholds:
            if u <= threshold:
                return model.size_of(key)
        return self._thresholds[-1][1].size_of(key)
