"""Compiled traces: struct-of-arrays request streams plus a trace cache.

Replaying a trace of :class:`~repro.workloads.trace.Request` objects pays
Python's worst per-request taxes: a frozen-dataclass construction with
``__post_init__`` validation, a ``CacheItem`` allocation to classify the
item, and (for generated traces) the whole generator pipeline re-run on
every experiment. A :class:`CompiledTrace` pays all of those costs exactly
once, at *compile* time:

* keys and app names are interned (every request holds a reference to a
  shared string, plus an integer id for serialization);
* ops become integer codes (:data:`repro.cache.stats.OP_GET` etc.);
* the slab class, chunk size and item byte size of every request are
  precomputed from the :class:`~repro.cache.slabs.SlabGeometry`, so the
  replay loop never builds a ``CacheItem``;
* validation (unknown op, negative size, oversized item) is hoisted out of
  the replay loop entirely -- a compiled trace is valid by construction.

The resulting arrays feed :meth:`repro.cache.server.CacheServer.
replay_compiled` and the profiler fast paths. :class:`TraceCache` stores
compiled traces on disk (``.npz``) and in process memory so the ~17
experiment runners stop regenerating identical Memcachier/Zipf traces from
scratch.
"""

from __future__ import annotations

import hashlib
import os
import tempfile
import zlib
from collections import OrderedDict
from pathlib import Path
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Union

import numpy as np

from repro.cache.slabs import SlabGeometry
from repro.cache.stats import OP_CODES, OP_NAMES
from repro.common.constants import (
    DEFAULT_PLAN_CACHE_ENTRIES,
    ITEM_OVERHEAD_BYTES,
)
from repro.common.errors import TraceFormatError
from repro.workloads.trace import Request

#: Bump when the on-disk layout changes; stale files are recompiled.
_DISK_FORMAT_VERSION = 1


def save_npz_atomic(path: Union[str, Path], payload: Dict[str, np.ndarray]) -> Path:
    """Write an ``.npz`` atomically (tmp file + rename), creating parents.

    Shared by compiled traces and routing plans so concurrent sweep
    workers never observe a half-written cache file.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(dir=str(path.parent), suffix=".npz.tmp")
    try:
        with os.fdopen(fd, "wb") as handle:
            np.savez(handle, **payload)
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    return path


class CompiledTrace:
    """A validated, struct-of-arrays representation of one trace.

    All per-request columns are plain Python lists (fastest to index from
    the interpreter loop); ``keys`` holds interned string references so the
    replay path passes the exact same key objects the uncompiled replay
    would, byte for byte.
    """

    __slots__ = (
        "geometry",
        "times",
        "app_ids",
        "app_table",
        "key_ids",
        "key_table",
        "keys",
        "op_codes",
        "value_sizes",
        "key_sizes",
        "slab_classes",
        "chunk_bytes",
        "item_bytes",
        "_routing_digest",
        "_replay_columns",
    )

    def __init__(
        self,
        geometry: SlabGeometry,
        times: List[float],
        app_ids: List[int],
        app_table: List[str],
        key_ids: List[int],
        key_table: List[str],
        op_codes: List[int],
        value_sizes: List[int],
        key_sizes: List[int],
        slab_classes: List[int],
    ) -> None:
        self.geometry = geometry
        self.times = times
        self.app_ids = app_ids
        self.app_table = app_table
        self.key_ids = key_ids
        self.key_table = key_table
        self.op_codes = op_codes
        self.value_sizes = value_sizes
        self.key_sizes = key_sizes
        self.slab_classes = slab_classes
        # Derived hot columns.
        self.keys = [key_table[i] for i in key_ids]
        chunk_of = geometry.chunk_sizes
        self.chunk_bytes = [chunk_of[c] for c in slab_classes]
        self.item_bytes = [
            key_sizes[i] + value_sizes[i] for i in range(len(key_ids))
        ]
        self._routing_digest: Optional[str] = None
        self._replay_columns = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def compile(
        cls,
        requests: Iterable[Request],
        geometry: Optional[SlabGeometry] = None,
    ) -> "CompiledTrace":
        """Compile any request iterable, validating each record once."""
        geometry = geometry or SlabGeometry.default()
        times: List[float] = []
        app_ids: List[int] = []
        app_index: Dict[str, int] = {}
        app_table: List[str] = []
        key_ids: List[int] = []
        key_index: Dict[str, int] = {}
        key_table: List[str] = []
        op_codes: List[int] = []
        value_sizes: List[int] = []
        key_sizes: List[int] = []
        slab_classes: List[int] = []
        class_for_size = geometry.class_for_size
        for request in requests:
            op = OP_CODES.get(request.op)
            if op is None:
                raise TraceFormatError(f"unknown op {request.op!r}")
            if request.value_size < 0:
                raise TraceFormatError(
                    f"value_size must be >= 0, got {request.value_size}"
                )
            app_id = app_index.get(request.app)
            if app_id is None:
                app_id = app_index[request.app] = len(app_table)
                app_table.append(request.app)
            key = request.key
            key_id = key_index.get(key)
            if key_id is None:
                key_id = key_index[key] = len(key_table)
                key_table.append(key)
            key_size = (
                request.key_size if request.key_size >= 0 else len(key)
            )
            times.append(request.time)
            app_ids.append(app_id)
            key_ids.append(key_id)
            op_codes.append(op)
            value_sizes.append(request.value_size)
            key_sizes.append(key_size)
            slab_classes.append(
                class_for_size(key_size + request.value_size + ITEM_OVERHEAD_BYTES)
            )
        return cls(
            geometry,
            times,
            app_ids,
            app_table,
            key_ids,
            key_table,
            op_codes,
            value_sizes,
            key_sizes,
            slab_classes,
        )

    # ------------------------------------------------------------------
    # Introspection / adapters
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.key_ids)

    @property
    def app_names(self) -> List[str]:
        return list(self.app_table)

    def replay_columns(self):
        """Numpy mirrors of the five replay-hot columns, built lazily.

        ``(keys, op_codes, slab_classes, chunk_bytes, item_bytes)`` --
        keys as an object array (holding the same interned string
        references), the rest as integer arrays. The partitioned cluster
        replay gathers per-(shard, app) runs out of these with C-speed
        fancy indexing instead of Python-level list comprehensions;
        built once per trace instance and reused by every replay.
        """
        if self._replay_columns is None:
            self._replay_columns = (
                np.asarray(self.keys, dtype=object),
                np.asarray(self.op_codes, dtype=np.int8),
                np.asarray(self.slab_classes, dtype=np.int16),
                np.asarray(self.chunk_bytes, dtype=np.int64),
                np.asarray(self.item_bytes, dtype=np.int64),
            )
        return self._replay_columns

    def routing_digest(self) -> str:
        """128-bit digest of the routed key sequence.

        Covers exactly what cluster routing depends on -- the key string
        at every request position (key table + key-id column) -- and
        nothing else, so the same stream replayed under different
        budgets/schemes shares one cached
        :class:`~repro.cluster.routing.RoutingPlan`. Computed once per
        trace instance.
        """
        if self._routing_digest is None:
            digest = hashlib.sha256()
            digest.update(len(self.key_table).to_bytes(8, "little"))
            encoded = [key.encode("utf-8") for key in self.key_table]
            # Length-prefix the table so key boundaries are unambiguous
            # (a plain join could collide on keys containing the
            # separator).
            digest.update(
                np.fromiter(
                    (len(blob) for blob in encoded),
                    dtype=np.int64,
                    count=len(encoded),
                ).tobytes()
            )
            digest.update(b"".join(encoded))
            digest.update(
                np.asarray(self.key_ids, dtype=np.int64).tobytes()
            )
            self._routing_digest = digest.hexdigest()[:32]
        return self._routing_digest

    def iter_requests(self) -> Iterator[Request]:
        """Re-expand into :class:`Request` objects (compat adapter)."""
        op_names = OP_NAMES
        for i in range(len(self.key_ids)):
            yield Request(
                time=self.times[i],
                app=self.app_table[self.app_ids[i]],
                key=self.keys[i],
                op=op_names[self.op_codes[i]],
                value_size=self.value_sizes[i],
                key_size=self.key_sizes[i],
            )

    def select_apps(self, apps: Iterable[str]) -> "CompiledTrace":
        """Subtrace containing only ``apps``, in original order.

        Because the merged trace is a stable interleaving of per-app
        streams, the filtered subsequence is exactly the merge of the
        chosen apps' streams.
        """
        wanted = set(apps)
        chosen = {
            app_id
            for app_id, name in enumerate(self.app_table)
            if name in wanted
        }
        indices = [
            i for i, app_id in enumerate(self.app_ids) if app_id in chosen
        ]
        return self._subset(indices)

    def for_app(self, app: str) -> "CompiledTrace":
        return self.select_apps([app])

    def slice(self, start: int, stop: Optional[int] = None) -> "CompiledTrace":
        """Contiguous sub-trace (e.g. warmup/measure splits)."""
        n = len(self)
        stop = n if stop is None else min(stop, n)
        return self._subset(range(min(start, stop), stop))

    def with_op(self, op: str) -> "CompiledTrace":
        """Copy with every request's op replaced (micro-benchmark splits).

        Slab classes are size-derived, so they are unaffected.
        """
        code = OP_CODES[op]
        clone = self._subset(range(len(self)))
        clone.op_codes = [code] * len(self)
        return clone

    def _subset(self, indices) -> "CompiledTrace":
        """Sub-trace at ``indices`` (ascending), bypassing ``__init__``.

        The derived hot columns (``keys``, ``chunk_bytes``,
        ``item_bytes``) are picked directly instead of being recomputed,
        and the app/key tables are *shared* with the parent (they are
        treated as immutable everywhere), keeping ``select_apps`` /
        ``slice`` subsetting cheap.
        """
        pick = indices
        clone = CompiledTrace.__new__(CompiledTrace)
        clone.geometry = self.geometry
        clone.times = [self.times[i] for i in pick]
        clone.app_ids = [self.app_ids[i] for i in pick]
        clone.app_table = self.app_table
        clone.key_ids = [self.key_ids[i] for i in pick]
        clone.key_table = self.key_table
        clone.op_codes = [self.op_codes[i] for i in pick]
        clone.value_sizes = [self.value_sizes[i] for i in pick]
        clone.key_sizes = [self.key_sizes[i] for i in pick]
        clone.slab_classes = [self.slab_classes[i] for i in pick]
        clone.keys = [self.keys[i] for i in pick]
        clone.chunk_bytes = [self.chunk_bytes[i] for i in pick]
        clone.item_bytes = [self.item_bytes[i] for i in pick]
        clone._routing_digest = None
        clone._replay_columns = None
        return clone

    # ------------------------------------------------------------------
    # Disk format
    # ------------------------------------------------------------------

    def save(self, path: Union[str, Path]) -> Path:
        """Serialize to ``.npz``. Written atomically (tmp file + rename)."""
        payload = {
            "version": np.array([_DISK_FORMAT_VERSION]),
            "chunk_sizes": np.array(self.geometry.chunk_sizes, dtype=np.int64),
            "times": np.array(self.times, dtype=np.float64),
            "app_ids": np.array(self.app_ids, dtype=np.int32),
            "app_table": np.array(self.app_table, dtype=np.str_),
            "key_ids": np.array(self.key_ids, dtype=np.int64),
            "key_table": np.array(self.key_table, dtype=np.str_),
            "op_codes": np.array(self.op_codes, dtype=np.int8),
            "value_sizes": np.array(self.value_sizes, dtype=np.int64),
            "key_sizes": np.array(self.key_sizes, dtype=np.int64),
            "slab_classes": np.array(self.slab_classes, dtype=np.int16),
        }
        return save_npz_atomic(path, payload)

    @classmethod
    def load(cls, path: Union[str, Path]) -> "CompiledTrace":
        with np.load(path, allow_pickle=False) as data:
            if int(data["version"][0]) != _DISK_FORMAT_VERSION:
                raise TraceFormatError(
                    f"{path}: unsupported compiled-trace version"
                )
            geometry = SlabGeometry(
                tuple(int(c) for c in data["chunk_sizes"])
            )
            return cls(
                geometry,
                data["times"].tolist(),
                data["app_ids"].tolist(),
                data["app_table"].tolist(),
                data["key_ids"].tolist(),
                data["key_table"].tolist(),
                data["op_codes"].tolist(),
                data["value_sizes"].tolist(),
                data["key_sizes"].tolist(),
                data["slab_classes"].tolist(),
            )


# ---------------------------------------------------------------------------
# Shared-memory replay columns (zero-copy hand-off to replay workers)
# ---------------------------------------------------------------------------

#: Every numeric column one shared segment carries, in layout order.
#: ``scratch_shard_ids`` is a parent-writable routing column the fault
#: replay re-points workers at when the live set changes; the others are
#: immutable for the segment's lifetime.
_SHARED_FIELDS = (
    ("op_codes", np.int8),
    ("slab_classes", np.int16),
    ("chunk_bytes", np.int64),
    ("item_bytes", np.int64),
    ("app_ids", np.int32),
    ("key_ids", np.int64),
    ("shard_ids", np.int32),
    ("scratch_shard_ids", np.int32),
    ("key_lengths", np.int64),
    ("key_blob", np.uint8),
)

def _column_attr(name: str) -> str:
    """Attribute name for a shared field (key blob/lengths are private)."""
    return "_" + name if name in ("key_lengths", "key_blob") else name


#: Monotonic per-process counter for segment names. Names must be unique
#: per live segment but need no entropy (uuid/urandom are banned on the
#: replay path for determinism): pid + counter cannot collide with other
#: live segments from this or any concurrent process.
_SEGMENT_COUNTER = 0


def _next_segment_name() -> str:
    global _SEGMENT_COUNTER
    _SEGMENT_COUNTER += 1
    return f"repro-cols-{os.getpid()}-{_SEGMENT_COUNTER}"


class SharedTraceColumns:
    """One shared-memory segment holding a trace's replay columns.

    The parallel cluster replay ships each worker the *name* of this
    segment instead of pickling the trace: workers map the numeric
    columns zero-copy (``op_codes``, ``slab_classes``, ``chunk_bytes``,
    ``item_bytes``, ``app_ids``, the plan's ``shard_ids``) and rebuild
    only the interned key strings once, from a utf-8 blob + length
    column, because Python string objects cannot live in shared memory.

    ``scratch_shard_ids`` is the one mutable region: the fault-aware
    replay writes a new routing column there at a barrier (before
    releasing the next window, so workers never race the write) when a
    crash or restart changes where keys land.

    Lifecycle: the creating process calls :meth:`export` and eventually
    :meth:`unlink`; workers call :meth:`attach` with the picklable
    :attr:`meta` dict and :meth:`close` when done. Only the creator
    unlinks -- the segment disappears from ``/dev/shm`` once unlinked
    and closed everywhere.
    """

    def __init__(self, shm, meta, owner):
        self._shm = shm
        self.meta = meta
        self.owner = owner
        self.length = meta["length"]
        views = {}
        for name, offset, dtype_name, count in meta["fields"]:
            views[name] = np.ndarray(
                (count,),
                dtype=np.dtype(dtype_name),
                buffer=shm.buf,
                offset=offset,
            )
        self.op_codes = views["op_codes"]
        self.slab_classes = views["slab_classes"]
        self.chunk_bytes = views["chunk_bytes"]
        self.item_bytes = views["item_bytes"]
        self.app_ids = views["app_ids"]
        self.key_ids = views["key_ids"]
        self.shard_ids = views["shard_ids"]
        self.scratch_shard_ids = views["scratch_shard_ids"]
        self._key_lengths = views["key_lengths"]
        self._key_blob = views["key_blob"]
        self._keys = None

    @classmethod
    def export(cls, trace: CompiledTrace, shard_ids) -> "SharedTraceColumns":
        """Create a segment from ``trace`` plus the plan's shard column."""
        from multiprocessing import shared_memory

        _, op_codes, slab_classes, chunk_bytes, item_bytes = (
            trace.replay_columns()
        )
        encoded = [key.encode("utf-8") for key in trace.key_table]
        blob = b"".join(encoded)
        arrays = {
            "op_codes": op_codes,
            "slab_classes": slab_classes,
            "chunk_bytes": chunk_bytes,
            "item_bytes": item_bytes,
            "app_ids": np.asarray(trace.app_ids, dtype=np.int32),
            "key_ids": np.asarray(trace.key_ids, dtype=np.int64),
            "shard_ids": np.ascontiguousarray(shard_ids, dtype=np.int32),
            "scratch_shard_ids": np.ascontiguousarray(
                shard_ids, dtype=np.int32
            ),
            "key_lengths": np.fromiter(
                (len(piece) for piece in encoded),
                dtype=np.int64,
                count=len(encoded),
            ),
            "key_blob": np.frombuffer(blob, dtype=np.uint8),
        }
        if len(arrays["shard_ids"]) != len(trace):
            raise TraceFormatError(
                f"shard column covers {len(arrays['shard_ids'])} "
                f"request(s); trace has {len(trace)}"
            )
        fields = []
        offset = 0
        for name, dtype in _SHARED_FIELDS:
            dtype = np.dtype(dtype)
            offset = -(-offset // 8) * 8  # 8-byte align every column
            fields.append((name, offset, dtype.name, len(arrays[name])))
            offset += len(arrays[name]) * dtype.itemsize
        total = max(offset, 1)
        while True:
            try:
                shm = shared_memory.SharedMemory(
                    name=_next_segment_name(), create=True, size=total
                )
                break
            except FileExistsError:
                continue  # stale name from a recycled pid: try the next
        meta = {
            "name": shm.name,
            "length": len(trace),
            "fields": fields,
        }
        columns = cls(shm, meta, owner=True)
        for name, _ in _SHARED_FIELDS:
            getattr(columns, _column_attr(name))[:] = arrays[name]
        return columns

    @classmethod
    def attach(cls, meta) -> "SharedTraceColumns":
        """Map an existing segment from its picklable ``meta`` dict."""
        from multiprocessing import shared_memory

        return cls(
            shared_memory.SharedMemory(name=meta["name"]), meta, owner=False
        )

    def keys(self) -> np.ndarray:
        """The per-request key object column, rebuilt once per process.

        Decodes the interned key table from the shared blob, then
        gathers per-request references -- the only non-zero-copy column,
        and the reason attach cost is O(unique keys), not O(requests).
        """
        if self._keys is None:
            lengths = self._key_lengths
            blob = self._key_blob.tobytes()
            table = []
            cursor = 0
            for size in lengths.tolist():
                table.append(blob[cursor : cursor + size].decode("utf-8"))
                cursor += size
            table_column = np.empty(len(table), dtype=object)
            table_column[:] = table
            self._keys = table_column[self.key_ids]
        return self._keys

    def close(self) -> None:
        """Drop this mapping (both sides call this; owner also unlinks).

        All numpy views are released first; if the caller still holds a
        live slice of one, the munmap is deferred to process exit rather
        than raising -- workers exit right after closing anyway.
        """
        for name, _ in _SHARED_FIELDS:
            setattr(self, _column_attr(name), None)
        self._keys = None
        try:
            self._shm.close()
        except BufferError:
            pass

    def unlink(self) -> None:
        """Remove the segment name (creator only); idempotent."""
        if not self.owner:
            return
        try:
            self._shm.unlink()
        except FileNotFoundError:
            pass


# ---------------------------------------------------------------------------
# Trace cache (in-process LRU + on-disk .npz store)
# ---------------------------------------------------------------------------


def _default_cache_dir() -> Optional[Path]:
    configured = os.environ.get("REPRO_TRACE_CACHE")
    if configured is not None:
        if configured.strip().lower() in ("", "0", "off", "none"):
            return None
        return Path(configured)
    return Path.home() / ".cache" / "cliffhanger-repro" / "traces"


class TraceCache:
    """Two-level cache of compiled traces keyed by a descriptive string.

    Level 1 is a bounded in-process LRU (compiled traces are large; a
    handful covers one experiment run). Level 2 is a directory of ``.npz``
    files shared between processes and runs; set ``REPRO_TRACE_CACHE=off``
    to disable it (e.g. for hermetic tests).

    The same two levels also store
    :class:`~repro.cluster.routing.RoutingPlan` columns
    (:meth:`get_or_build_plan`): plans are derived per (trace, ring)
    pair, far smaller than traces, and reused by every scenario of a
    sweep that shares the pair. With the on-disk level off, plans still
    cache in process memory.
    """

    def __init__(
        self,
        directory: Union[str, Path, None] = None,
        memory_entries: int = 4,
        plan_entries: int = DEFAULT_PLAN_CACHE_ENTRIES,
    ) -> None:
        self.directory = Path(directory) if directory else _default_cache_dir()
        self.memory_entries = memory_entries
        self.plan_entries = plan_entries
        self._memory: "OrderedDict[str, CompiledTrace]" = OrderedDict()
        self._plan_memory: "OrderedDict[str, object]" = OrderedDict()

    def _path_for(self, key: str, suffix: str = "npz") -> Optional[Path]:
        if self.directory is None:
            return None
        safe = "".join(
            ch if ch.isalnum() or ch in "._-" else "_" for ch in key
        )
        return self.directory / f"{safe}.v{_DISK_FORMAT_VERSION}.{suffix}"

    def get_or_compile(
        self,
        key: str,
        factory: Callable[[], Iterable[Request]],
        geometry: Optional[SlabGeometry] = None,
    ) -> CompiledTrace:
        """Return the compiled trace for ``key``, compiling on first use.

        ``key`` must encode every parameter the factory depends on
        (scale, seed, app subset, ...); the geometry is appended here so
        the same stream compiled under two slab ladders can never
        collide. Changing the *code* of a generator warrants a
        :data:`_DISK_FORMAT_VERSION` bump, which invalidates the whole
        on-disk store.
        """
        geometry_tag = "x".join(
            str(c) for c in (geometry or SlabGeometry.default()).chunk_sizes
        )
        key = f"{key}-geo{zlib.crc32(geometry_tag.encode('ascii')):08x}"
        cached = self._memory.get(key)
        if cached is not None:
            self._memory.move_to_end(key)
            return cached
        path = self._path_for(key)
        if path is not None and path.exists():
            try:
                compiled = CompiledTrace.load(path)
            except Exception:
                compiled = None  # corrupt/stale: fall through to recompile
            if compiled is not None:
                self._remember(key, compiled)
                return compiled
        compiled = CompiledTrace.compile(factory(), geometry)
        if path is not None:
            try:
                compiled.save(path)
            except OSError:
                pass  # read-only cache dir: stay in-memory only
        self._remember(key, compiled)
        return compiled

    def get_or_build_plan(self, key: str, factory):
        """Return the :class:`~repro.cluster.routing.RoutingPlan` cached
        under ``key``, building (and persisting) it on first use.

        ``key`` must encode everything the plan depends on -- the
        trace's routing digest plus every ring/replication parameter
        (see :func:`repro.cluster.routing.plan_cache_key`).
        """
        from repro.cluster.routing import RoutingPlan

        cached = self._plan_memory.get(key)
        if cached is not None:
            self._plan_memory.move_to_end(key)
            return cached
        path = self._path_for(key, suffix="plan.npz")
        if path is not None and path.exists():
            try:
                plan = RoutingPlan.load(path)
            except Exception:
                plan = None  # corrupt/stale: fall through to rebuild
            if plan is not None:
                self._remember_plan(key, plan)
                return plan
        plan = factory()
        self.store_plan(key, plan)
        return plan

    def store_plan(self, key: str, plan) -> None:
        """Put ``plan`` in both cache levels under ``key``, overwriting
        whatever is there (also the self-heal path for stale or corrupt
        disk entries detected by the caller)."""
        path = self._path_for(key, suffix="plan.npz")
        if path is not None:
            try:
                plan.save(path)
            except OSError:
                pass  # read-only cache dir: stay in-memory only
        self._remember_plan(key, plan)

    def _remember(self, key: str, compiled: CompiledTrace) -> None:
        self._memory[key] = compiled
        self._memory.move_to_end(key)
        while len(self._memory) > self.memory_entries:
            self._memory.popitem(last=False)

    def _remember_plan(self, key: str, plan) -> None:
        self._plan_memory[key] = plan
        self._plan_memory.move_to_end(key)
        while len(self._plan_memory) > self.plan_entries:
            self._plan_memory.popitem(last=False)

    def clear_memory(self) -> None:
        self._memory.clear()
        self._plan_memory.clear()


#: Process-wide cache instance used by the experiment harness.
GLOBAL_TRACE_CACHE = TraceCache()
