"""Workload generation and trace handling.

The Memcachier trace the paper analyzes is proprietary, so this package
provides the synthetic equivalents (see DESIGN.md, substitution 1):

* :mod:`repro.workloads.trace` -- the request record, trace I/O and
  merging.
* :mod:`repro.workloads.zipf` -- fast Zipf(ian) key popularity sampling.
* :mod:`repro.workloads.generators` -- composable request-stream
  generators: Zipf working sets, sequential scans (which carve performance
  cliffs into LRU hit-rate curves), phase changes and mixtures.
* :mod:`repro.workloads.sizes` -- per-key deterministic item-size models.
* :mod:`repro.workloads.memcachier` -- the synthetic 20-application
  "Memcachier-like" trace with per-app profiles tuned to echo the paper's
  hit-rate landscape (including the six cliff applications).
* :mod:`repro.workloads.facebook` -- Facebook ETC-style key/value/op
  distributions (Atikoglu et al., SIGMETRICS 2012) used by the
  micro-benchmarks, standing in for the mutilate load generator.
"""

from repro.workloads.trace import Request, load_jsonl, merge_by_time, save_jsonl
from repro.workloads.zipf import ZipfSampler

__all__ = [
    "Request",
    "load_jsonl",
    "save_jsonl",
    "merge_by_time",
    "ZipfSampler",
]
