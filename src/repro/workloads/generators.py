"""Composable request-stream generators.

Each generator produces a time-ordered iterator of
:class:`~repro.workloads.trace.Request` for one application. The two
primitives matter to the paper in different ways:

* :class:`ZipfStream` -- skewed reuse: concave hit-rate curves, the
  regime where plain hill climbing is provably near-optimal (section 4.1).
* :class:`ScanStream` -- cyclic sequential scans: the canonical
  performance-cliff generator ("Cliffs occur, for example, with
  sequential accesses under LRU ... increasing the cache size from 9 MB
  to 10 MB will increase the hit rate from 0% to 100%", section 3.5).

:class:`MixtureStream` interleaves components with (optionally
time-varying) weights, which is how the synthetic Memcachier applications
mix a hot Zipf head with a scanned corpus to carve a cliff into an
otherwise concave curve, and how the phase changes of sections 5.3-5.4
(popularity bursts shifting between slab classes) are produced.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.common.errors import ConfigurationError
from repro.workloads.sizes import SizeModel
from repro.workloads.trace import Request
from repro.workloads.zipf import ZipfSampler


class RequestStream(abc.ABC):
    """A finite, time-ordered request stream for one application."""

    @abc.abstractmethod
    def generate(
        self, num_requests: int, duration: float, start_time: float = 0.0
    ) -> Iterator[Request]:
        """Yield ``num_requests`` requests spread over ``duration``
        seconds starting at ``start_time``."""


def _timestamps(
    num_requests: int, duration: float, start_time: float
) -> np.ndarray:
    if num_requests < 0:
        raise ConfigurationError("num_requests must be >= 0")
    if duration <= 0:
        raise ConfigurationError("duration must be positive")
    step = duration / max(1, num_requests)
    return start_time + step * np.arange(num_requests)


@dataclass
class ZipfStream(RequestStream):
    """Zipf-popular GETs (with an optional SET fraction) over a fixed
    key universe."""

    app: str
    num_keys: int
    alpha: float
    size_model: SizeModel
    namespace: str = "z"
    set_fraction: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        if not 0.0 <= self.set_fraction <= 1.0:
            raise ConfigurationError(
                f"set_fraction must be in [0, 1]: {self.set_fraction}"
            )

    def generate(
        self, num_requests: int, duration: float, start_time: float = 0.0
    ) -> Iterator[Request]:
        rng = np.random.default_rng(self.seed)
        sampler = ZipfSampler(self.num_keys, self.alpha, rng=rng)
        ranks = sampler.sample(num_requests)
        is_set = rng.random(num_requests) < self.set_fraction
        times = _timestamps(num_requests, duration, start_time)
        for i in range(num_requests):
            key = f"{self.app}:{self.namespace}:{ranks[i]}"
            yield Request(
                time=float(times[i]),
                app=self.app,
                key=key,
                op="set" if is_set[i] else "get",
                value_size=self.size_model.size_of(key),
            )


@dataclass
class ScanStream(RequestStream):
    """A cyclic sequential scan over ``num_keys`` keys.

    Under LRU this is the adversarial pattern: with fewer than
    ``num_keys`` cache slots the hit rate is ~0, with ``num_keys`` slots
    it is ~1 -- a cliff exactly at the scan length.
    """

    app: str
    num_keys: int
    size_model: SizeModel
    namespace: str = "s"
    start_offset: int = 0
    seed: int = 0  # unused; kept for interface uniformity

    def generate(
        self, num_requests: int, duration: float, start_time: float = 0.0
    ) -> Iterator[Request]:
        times = _timestamps(num_requests, duration, start_time)
        position = self.start_offset % max(1, self.num_keys)
        for i in range(num_requests):
            key = f"{self.app}:{self.namespace}:{position}"
            position = (position + 1) % self.num_keys
            yield Request(
                time=float(times[i]),
                app=self.app,
                key=key,
                op="get",
                value_size=self.size_model.size_of(key),
            )


@dataclass
class ReuseDistanceStream(RequestStream):
    """Requests with normally distributed reuse distances: a smooth cliff.

    Every key is re-referenced ``refs_per_key`` times at a fixed per-key
    interval ``D ~ N(mean_items, sigma_items)`` (in requests). Because new
    keys are introduced whenever no re-reference is due, roughly every key
    touched inside a window of ``D`` requests is distinct, so the *stack
    distance* of each re-reference is ~``D`` items. The hit-rate curve is
    therefore the Gaussian CDF scaled by ``refs_per_key/(refs_per_key+1)``:
    flat near zero, a smooth **convex ramp** (the performance cliff)
    centered at ``mean_items``, then a plateau -- the Figure 3 shape.

    A pure cyclic scan also has a cliff, but its stack distances are a
    delta spike, which Cliffhanger's finite probes can never observe from
    a distance; this stream is the probe-discoverable cliff that real web
    workloads (and the paper's traces) exhibit.
    """

    app: str
    mean_items: int
    sigma_items: int
    size_model: SizeModel
    refs_per_key: int = 9
    namespace: str = "r"
    seed: int = 0

    def __post_init__(self) -> None:
        if self.mean_items < 2 or self.sigma_items < 1:
            raise ConfigurationError(
                "mean_items must be >= 2 and sigma_items >= 1"
            )
        if self.refs_per_key < 1:
            raise ConfigurationError("refs_per_key must be >= 1")

    def generate(
        self, num_requests: int, duration: float, start_time: float = 0.0
    ) -> Iterator[Request]:
        from collections import deque

        rng = np.random.default_rng(self.seed)
        times = _timestamps(num_requests, duration, start_time)
        # step -> list of (key_index, remaining_refs, interval); entries
        # falling due move to `ready`, which is drained one per request
        # (multiple keys due the same step queue up briefly -- the jitter
        # this adds to reuse distances is << sigma).
        due: dict = {}
        ready: deque = deque()
        head = 0

        def schedule(step: int, entry) -> None:
            bucket = due.get(step)
            if bucket is None:
                due[step] = [entry]
            else:
                bucket.append(entry)

        for i in range(num_requests):
            bucket = due.pop(i, None)
            if bucket:
                ready.extend(bucket)
            if ready:
                index, remaining, interval = ready.popleft()
                if remaining > 1:
                    schedule(i + interval, (index, remaining - 1, interval))
            else:
                index = head
                head += 1
                interval = max(
                    2, int(rng.normal(self.mean_items, self.sigma_items))
                )
                schedule(i + interval, (index, self.refs_per_key, interval))
            key = f"{self.app}:{self.namespace}:{index}"
            yield Request(
                time=float(times[i]),
                app=self.app,
                key=key,
                op="get",
                value_size=self.size_model.size_of(key),
            )


@dataclass(frozen=True)
class Phase:
    """A time window (fractions of the trace) scaling a component's
    weight; models the request bursts of sections 5.3-5.4."""

    start_fraction: float
    end_fraction: float
    multiplier: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.start_fraction < self.end_fraction <= 1.0:
            raise ConfigurationError(
                f"bad phase window [{self.start_fraction}, "
                f"{self.end_fraction}]"
            )
        if self.multiplier < 0:
            raise ConfigurationError("phase multiplier must be >= 0")


@dataclass
class Component:
    """One weighted member of a :class:`MixtureStream`."""

    stream: RequestStream
    weight: float
    phases: Tuple[Phase, ...] = ()

    def weight_at(self, trace_fraction: float) -> float:
        for phase in self.phases:
            if phase.start_fraction <= trace_fraction < phase.end_fraction:
                return self.weight * phase.multiplier
        return self.weight


@dataclass
class MixtureStream(RequestStream):
    """Interleaves component streams with (time-varying) weights.

    Component sub-streams are pre-generated densely and consumed on
    demand, so a component that only bursts briefly still walks its own
    key sequence coherently (a scan stays sequential).
    """

    app: str
    components: List[Component] = field(default_factory=list)
    seed: int = 0

    def generate(
        self, num_requests: int, duration: float, start_time: float = 0.0
    ) -> Iterator[Request]:
        if not self.components:
            raise ConfigurationError("mixture has no components")
        rng = np.random.default_rng(self.seed)
        iterators = [
            iter(
                component.stream.generate(
                    num_requests, duration, start_time
                )
            )
            for component in self.components
        ]
        times = _timestamps(num_requests, duration, start_time)
        uniforms = rng.random(num_requests)
        for i in range(num_requests):
            fraction = i / max(1, num_requests - 1)
            weights = np.array(
                [c.weight_at(fraction) for c in self.components]
            )
            total = weights.sum()
            if total <= 0:
                weights = np.ones(len(self.components))
                total = float(len(self.components))
            chosen = int(np.searchsorted(
                np.cumsum(weights / total), uniforms[i], side="left"
            ))
            chosen = min(chosen, len(iterators) - 1)
            try:
                request = next(iterators[chosen])
            except StopIteration:  # pragma: no cover - dense pre-generation
                continue
            # Re-stamp with the mixture's own clock so output is ordered.
            yield Request(
                time=float(times[i]),
                app=request.app,
                key=request.key,
                op=request.op,
                value_size=request.value_size,
                key_size=request.key_size,
            )
