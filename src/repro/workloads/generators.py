"""Composable request-stream generators.

Each generator produces a time-ordered iterator of
:class:`~repro.workloads.trace.Request` for one application. The two
primitives matter to the paper in different ways:

* :class:`ZipfStream` -- skewed reuse: concave hit-rate curves, the
  regime where plain hill climbing is provably near-optimal (section 4.1).
* :class:`ScanStream` -- cyclic sequential scans: the canonical
  performance-cliff generator ("Cliffs occur, for example, with
  sequential accesses under LRU ... increasing the cache size from 9 MB
  to 10 MB will increase the hit rate from 0% to 100%", section 3.5).

:class:`MixtureStream` interleaves components with (optionally
time-varying) weights, which is how the synthetic Memcachier applications
mix a hot Zipf head with a scanned corpus to carve a cliff into an
otherwise concave curve, and how the phase changes of sections 5.3-5.4
(popularity bursts shifting between slab classes) are produced.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Iterator, List, Sequence, Tuple

import numpy as np

from repro.common.errors import ConfigurationError
from repro.workloads.sizes import SizeModel
from repro.workloads.trace import Request
from repro.workloads.zipf import ZipfSampler


class RequestStream(abc.ABC):
    """A finite, time-ordered request stream for one application."""

    @abc.abstractmethod
    def generate(
        self, num_requests: int, duration: float, start_time: float = 0.0
    ) -> Iterator[Request]:
        """Yield ``num_requests`` requests spread over ``duration``
        seconds starting at ``start_time``."""


def _timestamps(
    num_requests: int, duration: float, start_time: float
) -> np.ndarray:
    if num_requests < 0:
        raise ConfigurationError("num_requests must be >= 0")
    if duration <= 0:
        raise ConfigurationError("duration must be positive")
    step = duration / max(1, num_requests)
    return start_time + step * np.arange(num_requests)


@dataclass
class ZipfStream(RequestStream):
    """Zipf-popular GETs (with an optional SET fraction) over a fixed
    key universe."""

    app: str
    num_keys: int
    alpha: float
    size_model: SizeModel
    namespace: str = "z"
    set_fraction: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        if not 0.0 <= self.set_fraction <= 1.0:
            raise ConfigurationError(
                f"set_fraction must be in [0, 1]: {self.set_fraction}"
            )

    def generate(
        self, num_requests: int, duration: float, start_time: float = 0.0
    ) -> Iterator[Request]:
        rng = np.random.default_rng(self.seed)
        sampler = ZipfSampler(self.num_keys, self.alpha, rng=rng)
        ranks = sampler.sample(num_requests)
        is_set = rng.random(num_requests) < self.set_fraction
        times = _timestamps(num_requests, duration, start_time)
        for i in range(num_requests):
            key = f"{self.app}:{self.namespace}:{ranks[i]}"
            yield Request(
                time=float(times[i]),
                app=self.app,
                key=key,
                op="set" if is_set[i] else "get",
                value_size=self.size_model.size_of(key),
            )


@dataclass(frozen=True)
class ZipfPhase:
    """One phase of a :class:`PhasedZipfStream`.

    From ``start_fraction`` of the stream onward (until the next phase),
    ranks are drawn Zipf(``alpha``) over ``num_keys`` keys shifted by
    ``key_offset`` in the app's key space -- ``key_offset`` is what
    moves the working set, ``alpha``/``num_keys`` what reshape it.
    """

    start_fraction: float
    alpha: float
    num_keys: int
    key_offset: int = 0

    def __post_init__(self) -> None:
        if not 0.0 <= self.start_fraction < 1.0:
            raise ConfigurationError(
                f"phase start_fraction must be in [0, 1), "
                f"got {self.start_fraction}"
            )
        if self.alpha < 0:
            raise ConfigurationError(f"alpha must be >= 0, got {self.alpha}")
        if self.num_keys < 1:
            raise ConfigurationError(
                f"num_keys must be >= 1, got {self.num_keys}"
            )
        if self.key_offset < 0:
            raise ConfigurationError(
                f"key_offset must be >= 0, got {self.key_offset}"
            )


@dataclass
class PhasedZipfStream(RequestStream):
    """A Zipf stream whose skew and working set shift at request offsets.

    Static traces cannot exercise the regimes the paper highlights --
    "applications 9 and 18 ... their hit rate curves change throughout
    the week" -- nor give a cluster layer time-varying per-shard skew.
    Each :class:`ZipfPhase` owns a contiguous request range; at a phase
    boundary the sampler switches alpha/universe instantly, the sharpest
    (hardest) version of a workload change.
    """

    app: str
    phases: Sequence[ZipfPhase]
    size_model: SizeModel
    namespace: str = "p"
    set_fraction: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        if not self.phases:
            raise ConfigurationError("phased stream needs at least one phase")
        starts = [phase.start_fraction for phase in self.phases]
        if starts != sorted(starts) or len(set(starts)) != len(starts):
            raise ConfigurationError(
                f"phase start_fractions must be strictly increasing: {starts}"
            )
        if starts[0] != 0.0:
            raise ConfigurationError(
                f"the first phase must start at 0.0, got {starts[0]}"
            )
        if not 0.0 <= self.set_fraction <= 1.0:
            raise ConfigurationError(
                f"set_fraction must be in [0, 1]: {self.set_fraction}"
            )

    def generate(
        self, num_requests: int, duration: float, start_time: float = 0.0
    ) -> Iterator[Request]:
        rng = np.random.default_rng(self.seed)
        times = _timestamps(num_requests, duration, start_time)
        bounds = [
            min(num_requests, int(round(phase.start_fraction * num_requests)))
            for phase in self.phases
        ] + [num_requests]
        ranks = np.zeros(num_requests, dtype=np.int64)
        offsets = np.zeros(num_requests, dtype=np.int64)
        for index, phase in enumerate(self.phases):
            lo, hi = bounds[index], bounds[index + 1]
            if hi <= lo:
                continue
            sampler = ZipfSampler(phase.num_keys, phase.alpha, rng=rng)
            ranks[lo:hi] = sampler.sample(hi - lo)
            offsets[lo:hi] = phase.key_offset
        is_set = rng.random(num_requests) < self.set_fraction
        for i in range(num_requests):
            key = f"{self.app}:{self.namespace}:{offsets[i] + ranks[i]}"
            yield Request(
                time=float(times[i]),
                app=self.app,
                key=key,
                op="set" if is_set[i] else "get",
                value_size=self.size_model.size_of(key),
            )


@dataclass
class FlashCrowdStream(RequestStream):
    """A base stream overlaid with a flash crowd.

    Inside the window ``[crowd_start, crowd_start + crowd_duration)``
    (trace fractions) each request is redirected with probability
    ``crowd_fraction`` to a tiny hot key set in its own namespace --
    the "everyone loads the same page" burst. Outside the window the
    base stream passes through untouched, so the crowd's footprint is
    strictly time-local. Because the crowd keys all hash to a handful of
    cluster shards, this is the canonical hot-shard generator.
    """

    app: str
    base: RequestStream
    size_model: SizeModel
    crowd_keys: int = 8
    crowd_fraction: float = 0.8
    crowd_start: float = 0.4
    crowd_duration: float = 0.2
    crowd_alpha: float = 1.2
    namespace: str = "flash"
    seed: int = 0

    def __post_init__(self) -> None:
        if self.crowd_keys < 1:
            raise ConfigurationError(
                f"crowd_keys must be >= 1, got {self.crowd_keys}"
            )
        if not 0.0 <= self.crowd_fraction <= 1.0:
            raise ConfigurationError(
                f"crowd_fraction must be in [0, 1]: {self.crowd_fraction}"
            )
        if not 0.0 <= self.crowd_start < 1.0:
            raise ConfigurationError(
                f"crowd_start must be in [0, 1): {self.crowd_start}"
            )
        if (
            self.crowd_duration <= 0
            or self.crowd_start + self.crowd_duration > 1.0
        ):
            raise ConfigurationError(
                f"crowd window [{self.crowd_start}, "
                f"{self.crowd_start + self.crowd_duration}] must fit in "
                f"[0, 1]"
            )

    def generate(
        self, num_requests: int, duration: float, start_time: float = 0.0
    ) -> Iterator[Request]:
        rng = np.random.default_rng(self.seed)
        coins = rng.random(num_requests)
        sampler = ZipfSampler(self.crowd_keys, self.crowd_alpha, rng=rng)
        crowd_ranks = sampler.sample(num_requests)
        times = _timestamps(num_requests, duration, start_time)
        window_lo = self.crowd_start
        window_hi = self.crowd_start + self.crowd_duration
        base_iter = iter(
            self.base.generate(num_requests, duration, start_time)
        )
        for i in range(num_requests):
            request = next(base_iter)
            fraction = i / max(1, num_requests - 1)
            if (
                window_lo <= fraction < window_hi
                and coins[i] < self.crowd_fraction
            ):
                key = f"{self.app}:{self.namespace}:{crowd_ranks[i]}"
                yield Request(
                    time=float(times[i]),
                    app=self.app,
                    key=key,
                    op=request.op,
                    value_size=self.size_model.size_of(key),
                )
            else:
                yield request


@dataclass
class ScanStream(RequestStream):
    """A cyclic sequential scan over ``num_keys`` keys.

    Under LRU this is the adversarial pattern: with fewer than
    ``num_keys`` cache slots the hit rate is ~0, with ``num_keys`` slots
    it is ~1 -- a cliff exactly at the scan length.
    """

    app: str
    num_keys: int
    size_model: SizeModel
    namespace: str = "s"
    start_offset: int = 0
    seed: int = 0  # unused; kept for interface uniformity

    def generate(
        self, num_requests: int, duration: float, start_time: float = 0.0
    ) -> Iterator[Request]:
        times = _timestamps(num_requests, duration, start_time)
        position = self.start_offset % max(1, self.num_keys)
        for i in range(num_requests):
            key = f"{self.app}:{self.namespace}:{position}"
            position = (position + 1) % self.num_keys
            yield Request(
                time=float(times[i]),
                app=self.app,
                key=key,
                op="get",
                value_size=self.size_model.size_of(key),
            )


@dataclass
class ReuseDistanceStream(RequestStream):
    """Requests with normally distributed reuse distances: a smooth cliff.

    Every key is re-referenced ``refs_per_key`` times at a fixed per-key
    interval ``D ~ N(mean_items, sigma_items)`` (in requests). Because new
    keys are introduced whenever no re-reference is due, roughly every key
    touched inside a window of ``D`` requests is distinct, so the *stack
    distance* of each re-reference is ~``D`` items. The hit-rate curve is
    therefore the Gaussian CDF scaled by ``refs_per_key/(refs_per_key+1)``:
    flat near zero, a smooth **convex ramp** (the performance cliff)
    centered at ``mean_items``, then a plateau -- the Figure 3 shape.

    A pure cyclic scan also has a cliff, but its stack distances are a
    delta spike, which Cliffhanger's finite probes can never observe from
    a distance; this stream is the probe-discoverable cliff that real web
    workloads (and the paper's traces) exhibit.
    """

    app: str
    mean_items: int
    sigma_items: int
    size_model: SizeModel
    refs_per_key: int = 9
    namespace: str = "r"
    seed: int = 0

    def __post_init__(self) -> None:
        if self.mean_items < 2 or self.sigma_items < 1:
            raise ConfigurationError(
                "mean_items must be >= 2 and sigma_items >= 1"
            )
        if self.refs_per_key < 1:
            raise ConfigurationError("refs_per_key must be >= 1")

    def generate(
        self, num_requests: int, duration: float, start_time: float = 0.0
    ) -> Iterator[Request]:
        from collections import deque

        rng = np.random.default_rng(self.seed)
        times = _timestamps(num_requests, duration, start_time)
        # step -> list of (key_index, remaining_refs, interval); entries
        # falling due move to `ready`, which is drained one per request
        # (multiple keys due the same step queue up briefly -- the jitter
        # this adds to reuse distances is << sigma).
        due: dict = {}
        ready: deque = deque()
        head = 0

        def schedule(step: int, entry) -> None:
            bucket = due.get(step)
            if bucket is None:
                due[step] = [entry]
            else:
                bucket.append(entry)

        for i in range(num_requests):
            bucket = due.pop(i, None)
            if bucket:
                ready.extend(bucket)
            if ready:
                index, remaining, interval = ready.popleft()
                if remaining > 1:
                    schedule(i + interval, (index, remaining - 1, interval))
            else:
                index = head
                head += 1
                interval = max(
                    2, int(rng.normal(self.mean_items, self.sigma_items))
                )
                schedule(i + interval, (index, self.refs_per_key, interval))
            key = f"{self.app}:{self.namespace}:{index}"
            yield Request(
                time=float(times[i]),
                app=self.app,
                key=key,
                op="get",
                value_size=self.size_model.size_of(key),
            )


@dataclass(frozen=True)
class Phase:
    """A time window (fractions of the trace) scaling a component's
    weight; models the request bursts of sections 5.3-5.4."""

    start_fraction: float
    end_fraction: float
    multiplier: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.start_fraction < self.end_fraction <= 1.0:
            raise ConfigurationError(
                f"bad phase window [{self.start_fraction}, "
                f"{self.end_fraction}]"
            )
        if self.multiplier < 0:
            raise ConfigurationError("phase multiplier must be >= 0")


@dataclass
class Component:
    """One weighted member of a :class:`MixtureStream`."""

    stream: RequestStream
    weight: float
    phases: Tuple[Phase, ...] = ()

    def weight_at(self, trace_fraction: float) -> float:
        for phase in self.phases:
            if phase.start_fraction <= trace_fraction < phase.end_fraction:
                return self.weight * phase.multiplier
        return self.weight


@dataclass
class MixtureStream(RequestStream):
    """Interleaves component streams with (time-varying) weights.

    Component sub-streams are pre-generated densely and consumed on
    demand, so a component that only bursts briefly still walks its own
    key sequence coherently (a scan stays sequential).
    """

    app: str
    components: List[Component] = field(default_factory=list)
    seed: int = 0

    def generate(
        self, num_requests: int, duration: float, start_time: float = 0.0
    ) -> Iterator[Request]:
        if not self.components:
            raise ConfigurationError("mixture has no components")
        rng = np.random.default_rng(self.seed)
        iterators = [
            iter(
                component.stream.generate(
                    num_requests, duration, start_time
                )
            )
            for component in self.components
        ]
        times = _timestamps(num_requests, duration, start_time)
        uniforms = rng.random(num_requests)
        for i in range(num_requests):
            fraction = i / max(1, num_requests - 1)
            weights = np.array(
                [c.weight_at(fraction) for c in self.components]
            )
            total = weights.sum()
            if total <= 0:
                weights = np.ones(len(self.components))
                total = float(len(self.components))
            chosen = int(np.searchsorted(
                np.cumsum(weights / total), uniforms[i], side="left"
            ))
            chosen = min(chosen, len(iterators) - 1)
            try:
                request = next(iterators[chosen])
            except StopIteration:  # pragma: no cover - dense pre-generation
                continue
            # Re-stamp with the mixture's own clock so output is ordered.
            yield Request(
                time=float(times[i]),
                app=request.app,
                key=request.key,
                op=request.op,
                value_size=request.value_size,
                key_size=request.key_size,
            )
