"""The request record and trace I/O.

A trace is any iterable of :class:`Request` objects ordered by time. The
JSONL format exists so that generated traces can be cached on disk and
shared between experiments; generators can equally be consumed lazily
without ever materializing a file.
"""

from __future__ import annotations

import heapq
import json
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import IO, Iterable, Iterator, List, Sequence, Union

from repro.common.errors import TraceFormatError

#: Operations understood by the simulator.
OPS = ("get", "set", "delete")


@dataclass(frozen=True)
class Request:
    """One cache request.

    Attributes:
        time: Simulated timestamp in seconds since trace start.
        app: Application identifier (tenant).
        key: The cache key (string).
        op: One of ``get``, ``set``, ``delete``.
        value_size: Size of the value in bytes. For GETs this is the size
            of the object the key refers to, which the simulator uses to
            fill the cache on a miss (the standard trace-replay
            convention).
        key_size: Size of the key in bytes; defaults to ``len(key)``.
    """

    time: float
    app: str
    key: str
    op: str
    value_size: int
    key_size: int = -1

    def __post_init__(self) -> None:
        if self.op not in OPS:
            raise TraceFormatError(f"unknown op {self.op!r}")
        if self.value_size < 0:
            raise TraceFormatError(
                f"value_size must be >= 0, got {self.value_size}"
            )
        if self.key_size < 0:
            object.__setattr__(self, "key_size", len(self.key))


def save_jsonl(requests: Iterable[Request], path: Union[str, Path]) -> int:
    """Write requests to a JSONL file; returns the number written."""
    count = 0
    with open(path, "w", encoding="utf-8") as handle:
        for request in requests:
            handle.write(json.dumps(asdict(request), separators=(",", ":")))
            handle.write("\n")
            count += 1
    return count


def load_jsonl(path: Union[str, Path]) -> Iterator[Request]:
    """Lazily read requests from a JSONL file."""
    with open(path, "r", encoding="utf-8") as handle:
        yield from _parse_lines(handle, str(path))


def _parse_lines(handle: IO[str], origin: str) -> Iterator[Request]:
    for lineno, line in enumerate(handle, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
            yield Request(**record)
        except (json.JSONDecodeError, TypeError, TraceFormatError) as exc:
            raise TraceFormatError(
                f"{origin}:{lineno}: bad trace record: {exc}"
            ) from exc


def merge_by_time(streams: Sequence[Iterable[Request]]) -> Iterator[Request]:
    """Merge independently-ordered per-app streams into one global trace.

    Each input stream must be internally time-ordered; the output is the
    time-ordered interleaving (stable across runs given identical inputs).
    """
    return heapq.merge(
        *streams, key=lambda request: (request.time, request.app)
    )


def take(trace: Iterable[Request], limit: int) -> List[Request]:
    """Materialize at most ``limit`` requests (testing convenience)."""
    out: List[Request] = []
    for request in trace:
        out.append(request)
        if len(out) >= limit:
            break
    return out
