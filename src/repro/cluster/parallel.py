"""Process-parallel partitioned replay over shared-memory trace columns.

Cliffhanger's no-coordination design (paper section 4.3) makes shards
fully independent between rebalance barriers, and the partitioned replay
already splits every window into per-(shard, app) runs -- so the
per-shard fast loops are embarrassingly parallel. This module fans them
out across worker processes:

* The trace's replay columns and the routing plan's ``shard_ids`` go
  into one :class:`~repro.workloads.compiled.SharedTraceColumns`
  segment; workers map the numeric columns zero-copy and rebuild only
  the interned key strings (once, from the shared utf-8 blob).
* Each worker owns a contiguous block of shards, builds those shards'
  engines cold through the cluster's registered factories, and replays
  its shards' runs of each window -- the same stable partition, the
  same per-run order, the same packed-outcome tallies as the serial
  loop.
* Rebalance epochs and fault barriers are synchronization points: the
  parent collects every worker's per-run tallies for the window,
  applies them to its own shard registries through
  ``record_code_bulk`` (order-free integer adds, flushed in the serial
  loop's run order), runs ``on_barrier``/``on_epoch``/``apply_events``
  against its own state, and only then releases the next window.

The parent's engines never process a request: they are empty
*bookkeeping mirrors*. Budget moves go through
:meth:`~repro.cluster.Cluster.scale_shard_budget`, which runs the same
proportional arithmetic on the parent's empty engines (so signals,
floors, and reports see the right budgets -- ``grow_budget`` and
``shrink_budget`` touch only ``budget_bytes`` floats, identical whether
the queues hold items or not) and forwards the command to the owning
worker, whose engines hold the actual items and report the real
eviction counts. Fault-time routing changes reach workers through the
segment's parent-writable scratch column, written strictly before the
window that uses it.

The result is bit-identical to the serial partitioned loop -- down to
per-shard per-(app, class) counters, rebalance timelines, and fault
records -- which the Hypothesis property tests pin down. The serial
path stays the default and the oracle.
"""

from __future__ import annotations

import traceback
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.cache.server import CacheServer
from repro.cache.slabs import SlabGeometry
from repro.cache.stats import OUTCOME_DEAD
from repro.cluster.cluster import Cluster, scale_engine_budgets
from repro.cluster.rebalance import epoch_windows
from repro.cluster.routing import LiveRouter, RoutingPlan
from repro.common.errors import ConfigurationError
from repro.common.mp import get_mp_context
from repro.workloads.compiled import SharedTraceColumns

#: One (shard, app_id, [(packed_code, count), ...]) tally per run.
Run = Tuple[int, int, List[Tuple[int, int]]]


def partition_shards(shards: int, workers: int) -> List[List[int]]:
    """Contiguous shard blocks, one per worker, sizes differing by <= 1.

    Contiguous (rather than round-robin) so a worker's runs stay close
    in the sorted composite order; deterministic so reruns assign
    identically.
    """
    workers = max(1, min(workers, shards))
    return [
        block.tolist()
        for block in np.array_split(np.arange(shards), workers)
    ]


def build_shard_servers(
    geometry: SlabGeometry,
    owned: Sequence[int],
    apps: Sequence[Tuple[str, float, Any]],
) -> Dict[int, CacheServer]:
    """Build one worker's servers: cold engines for its shards only.

    ``apps`` is ``(name, per-shard share, factory)`` in registration
    order -- the exact arguments the parent's
    :meth:`~repro.cluster.Cluster.add_app` called its factories with, so
    a worker's engine for shard ``s`` is identical to the one the serial
    replay would have used (factories are deterministic per shard).
    """
    servers: Dict[int, CacheServer] = {}
    for shard in owned:
        server = CacheServer(geometry)
        for app, share, factory in apps:
            engine = factory(shard, share)
            if engine.app != app:
                raise ConfigurationError(
                    f"engine factory for app {app!r} built an engine "
                    f"named {engine.app!r}"
                )
            server.add_app(engine)
        servers[shard] = server
    return servers


def window_runs(
    servers: Dict[int, CacheServer],
    app_table: Sequence[str],
    total_shards: int,
    keys: np.ndarray,
    op_codes: np.ndarray,
    slab_classes: np.ndarray,
    chunk_bytes: np.ndarray,
    item_bytes: np.ndarray,
    shard_column: np.ndarray,
    app_ids: np.ndarray,
    start: int,
    stop: int,
    dead: frozenset = frozenset(),
) -> List[Run]:
    """Replay one window's runs for the shards in ``servers``.

    The owned-shard restriction of :meth:`Cluster._replay_window`: the
    window is filtered to owned shards, stable-sorted by the same
    ``shard * num_apps + app`` composite (a stable sort of a subsequence
    preserves the original within-run order, so each run's request
    sequence is identical to the serial loop's), and each run is
    replayed with the hoisted ``process_fast`` fast loop. Instead of
    recording into registries, identical packed ``(code << 2) | op``
    outcomes are tallied per run and returned for the parent to flush --
    integer adds, so deferring them is bit-identical. Runs addressed to
    a ``dead`` owned shard (miss-through) tally ``OUTCOME_DEAD`` per op
    without touching an engine, exactly like the serial window.
    """
    owned_lookup = np.zeros(total_shards, dtype=bool)
    owned_lookup[list(servers)] = True
    window_shards = shard_column[start:stop]
    picks = np.flatnonzero(owned_lookup[window_shards])
    runs: List[Run] = []
    if len(picks) == 0:
        return runs
    num_apps = len(app_table)
    composite = (
        window_shards[picks].astype(np.int64) * num_apps
        + app_ids[start:stop][picks]
    )
    order = np.argsort(composite, kind="stable")
    sorted_runs = composite[order]
    run_bounds = np.flatnonzero(sorted_runs[1:] != sorted_runs[:-1]) + 1
    run_starts = np.concatenate(([0], run_bounds))
    run_stops = np.concatenate((run_bounds, [len(sorted_runs)]))
    sorted_picks = picks[order] + start
    for run_start, run_stop in zip(run_starts, run_stops):
        shard, app_id = divmod(int(sorted_runs[run_start]), num_apps)
        run_picks = sorted_picks[run_start:run_stop]
        if dead and shard in dead:
            ops, op_counts = np.unique(
                op_codes[run_picks], return_counts=True
            )
            runs.append(
                (
                    shard,
                    app_id,
                    [
                        ((OUTCOME_DEAD << 2) | op, count)
                        for op, count in zip(
                            ops.tolist(), op_counts.tolist()
                        )
                    ],
                )
            )
            continue
        engine = servers[shard].engines[app_table[app_id]]
        process = engine.process_fast
        counts: Dict[int, int] = {}
        for key, op, class_index, chunk, nbytes in zip(
            keys[run_picks].tolist(),
            op_codes[run_picks].tolist(),
            slab_classes[run_picks].tolist(),
            chunk_bytes[run_picks].tolist(),
            item_bytes[run_picks].tolist(),
        ):
            packed = (
                process(key, op, class_index, chunk, nbytes) << 2
            ) | op
            try:
                counts[packed] += 1
            except KeyError:
                counts[packed] = 1
        runs.append((shard, app_id, list(counts.items())))
    return runs


def apply_runs(
    cluster: Cluster, app_table: Sequence[str], runs: List[Run]
) -> None:
    """Flush worker tallies into the parent's shard registries.

    Sorted by the serial loop's composite run order before flushing, so
    registry keys are even *inserted* in the serial order -- counters
    are order-free integer adds, but keeping iteration order identical
    too means serialized reports cannot differ either.
    """
    num_apps = len(app_table)
    runs.sort(key=lambda run: run[0] * num_apps + run[1])
    servers = cluster.servers
    for shard, app_id, tallies in runs:
        record_bulk = servers[shard].stats.record_code_bulk
        app = app_table[app_id]
        for packed, count in tallies:
            record_bulk(app, packed & 3, packed >> 2, count)


def _worker_main(conn, payload: Dict[str, Any]) -> None:
    """Worker process entry: attach columns, build owned shards, serve
    commands until ``finish``. Any exception is shipped back as an
    ``("error", traceback)`` reply instead of dying silently."""
    columns = SharedTraceColumns.attach(payload["meta"])
    try:
        geometry = SlabGeometry(tuple(payload["chunk_sizes"]))
        apps = payload["apps"]
        servers = build_shard_servers(geometry, payload["owned"], apps)
        factories = {app: factory for app, _, factory in apps}
        app_table = payload["app_table"]
        total_shards = payload["total_shards"]
        keys = columns.keys()
        while True:
            message = conn.recv()
            command = message[0]
            try:
                if command == "window":
                    _, start, stop, use_scratch, dead = message
                    shard_column = (
                        columns.scratch_shard_ids
                        if use_scratch
                        else columns.shard_ids
                    )
                    runs = window_runs(
                        servers,
                        app_table,
                        total_shards,
                        keys,
                        columns.op_codes,
                        columns.slab_classes,
                        columns.chunk_bytes,
                        columns.item_bytes,
                        shard_column,
                        columns.app_ids,
                        start,
                        stop,
                        frozenset(dead),
                    )
                    conn.send(("ok", runs))
                elif command == "scale":
                    _, shard, target = message
                    conn.send(
                        (
                            "ok",
                            scale_engine_budgets(
                                servers[shard].engines.values(), target
                            ),
                        )
                    )
                elif command == "restart":
                    _, shard, budgets = message
                    server = servers[shard]
                    for app, budget in budgets.items():
                        if budget > 0:
                            server.replace_app(factories[app](shard, budget))
                    conn.send(("ok", None))
                else:  # "finish"
                    conn.send(
                        (
                            "ok",
                            {
                                shard: server.memory_in_use()
                                for shard, server in servers.items()
                            },
                        )
                    )
                    return
            except Exception:
                conn.send(("error", traceback.format_exc()))
                return
    finally:
        columns.close()
        conn.close()


class WorkerPool:
    """The parent's handle on one parallel replay's worker processes.

    Owns the shared-memory segment (created here, unlinked in
    :meth:`shutdown` -- workers only ever attach), one duplex pipe per
    worker, and the shard -> worker ownership map that
    :meth:`scale_shard` / :meth:`restart_shard` route commands with.
    """

    def __init__(
        self,
        cluster: Cluster,
        trace,
        plan: RoutingPlan,
        start_method: Optional[str] = None,
    ) -> None:
        context = get_mp_context(start_method)
        self.cluster = cluster
        self.app_table = list(trace.app_table)
        self.columns = SharedTraceColumns.export(trace, plan.shard_ids)
        self._scratch_mask: Optional[Tuple[bool, ...]] = None
        blocks = partition_shards(
            cluster.shards, cluster.config.parallel_workers
        )
        self.owner: Dict[int, int] = {}
        for worker, owned in enumerate(blocks):
            for shard in owned:
                self.owner[shard] = worker
        apps = [
            (app, cluster.app_shares[app], cluster.engine_factories[app])
            for app in cluster.engine_factories
        ]
        self.connections = []
        self.processes = []
        try:
            for owned in blocks:
                parent_end, child_end = context.Pipe()
                payload = {
                    "meta": self.columns.meta,
                    "chunk_sizes": cluster.geometry.chunk_sizes,
                    "owned": owned,
                    "apps": apps,
                    "app_table": self.app_table,
                    "total_shards": cluster.shards,
                }
                process = context.Process(
                    target=_worker_main,
                    args=(child_end, payload),
                    daemon=True,
                )
                process.start()
                child_end.close()
                self.connections.append(parent_end)
                self.processes.append(process)
        except BaseException:
            self.shutdown()
            raise

    # -- command plumbing ----------------------------------------------

    def _receive(self, worker: int):
        try:
            status, value = self.connections[worker].recv()
        except (EOFError, ConnectionResetError):
            raise RuntimeError(
                f"parallel replay worker {worker} died without replying"
            ) from None
        if status != "ok":
            raise RuntimeError(
                f"parallel replay worker {worker} failed:\n{value}"
            )
        return value

    def _call(self, worker: int, message):
        self.connections[worker].send(message)
        return self._receive(worker)

    # -- replay protocol -----------------------------------------------

    def set_scratch(
        self, column: np.ndarray, mask: Tuple[bool, ...]
    ) -> None:
        """Publish a fault-window routing column to the workers.

        Written before the window command is broadcast, so every worker
        observes the full column before touching it; memoized per live
        mask because schedules revisit live sets.
        """
        if mask != self._scratch_mask:
            self.columns.scratch_shard_ids[:] = column
            self._scratch_mask = mask

    def replay_window(
        self,
        start: int,
        stop: int,
        use_scratch: bool = False,
        dead: Tuple[int, ...] = (),
    ) -> None:
        """Replay ``[start, stop)`` on every worker and apply the merged
        tallies to the parent's registries (the barrier: this returns
        only when the whole window is done and accounted)."""
        for connection in self.connections:
            connection.send(("window", start, stop, use_scratch, dead))
        runs: List[Run] = []
        for worker in range(len(self.connections)):
            runs.extend(self._receive(worker))
        apply_runs(self.cluster, self.app_table, runs)

    def scale_shard(self, shard: int, target: float) -> int:
        """Forward a budget resize to the owning worker; returns the
        evictions its engines enforced."""
        return self._call(self.owner[shard], ("scale", shard, target))

    def restart_shard(self, shard: int, budgets: Dict[str, float]) -> None:
        """Forward a cold restart to the owning worker."""
        self._call(self.owner[shard], ("restart", shard, dict(budgets)))

    def finish(self) -> Dict[int, float]:
        """Collect per-shard used-bytes and let the workers exit."""
        for connection in self.connections:
            connection.send(("finish",))
        memory: Dict[int, float] = {}
        for worker in range(len(self.connections)):
            memory.update(self._receive(worker))
        return memory

    def shutdown(self) -> None:
        """Tear everything down; safe to call twice and mid-error."""
        for connection in self.connections:
            try:
                connection.close()
            except OSError:
                pass
        for process in self.processes:
            process.join(timeout=30)
            if process.is_alive():
                process.terminate()
                process.join(timeout=5)
        self.columns.close()
        self.columns.unlink()


def _require_fresh(cluster: Cluster) -> None:
    """Parallel replays must start cold: workers rebuild engines from
    factories, so state a warm parent holds (items, counters) would be
    silently dropped. Serial replays keep supporting warm reuse."""
    for shard, server in enumerate(cluster.servers):
        total = server.stats.total
        if total.gets or total.sets or server.memory_in_use() > 0:
            raise ConfigurationError(
                f"parallel replay requires a fresh cluster, but shard "
                f"{shard} already holds state; replay serially "
                f"(parallel_workers: 0) to reuse warm engines"
            )
        for app, engine in server.engines.items():
            if engine.budget_bytes != cluster.app_shares.get(app):
                raise ConfigurationError(
                    f"parallel replay requires unscaled budgets, but "
                    f"app {app!r} on shard {shard} holds "
                    f"{engine.budget_bytes} bytes (registered share: "
                    f"{cluster.app_shares.get(app)}); replay serially "
                    f"(parallel_workers: 0)"
                )


def replay_parallel(
    cluster: Cluster,
    trace,
    plan: Optional[RoutingPlan] = None,
    start_method: Optional[str] = None,
):
    """Drive one parallel replay: the windows/barriers of the serial
    partitioned paths, with the replay loops fanned out to workers.

    Control logic stays entirely in the parent -- the rebalancer and
    fault injector read the parent's registries (updated from worker
    tallies at each barrier) and the parent's engine budgets (updated by
    the same arithmetic the workers run) -- so decision sequences are
    bit-identical to the serial replay's.
    """
    cluster._check_geometry(trace)
    plan = cluster._resolve_plan(trace, plan)
    cluster._require_engines(trace)
    _require_fresh(cluster)
    pool = WorkerPool(cluster, trace, plan, start_method=start_method)
    cluster._parallel = pool
    cluster._parallel_memory = None
    try:
        injector = cluster.fault_injector
        rebalancer = cluster.rebalancer
        epoch_requests = (
            rebalancer.config.epoch_requests if rebalancer is not None else 0
        )
        if injector is not None:
            injector.begin(len(trace), epoch_requests)
            failover = injector.policy == "failover"
            router = (
                LiveRouter(
                    trace, cluster.ring, cluster.replication, base_plan=plan
                )
                if failover
                else None
            )
            all_live = (True,) * cluster.shards
            for start, stop in injector.windows():
                use_scratch = False
                dead: Tuple[int, ...] = ()
                if failover:
                    mask = tuple(bool(flag) for flag in injector.live)
                    if mask != all_live:
                        pool.set_scratch(
                            router.shard_ids(injector.live), mask
                        )
                        use_scratch = True
                else:
                    dead = tuple(sorted(injector.dead_shards()))
                pool.replay_window(start, stop, use_scratch, dead)
                injector.on_barrier(stop)
                if epoch_requests and stop % epoch_requests == 0:
                    rebalancer.on_epoch()
                injector.apply_events(stop)
        elif rebalancer is not None:
            for start, stop in epoch_windows(len(trace), epoch_requests):
                pool.replay_window(start, stop)
                if stop - start == epoch_requests:
                    rebalancer.on_epoch()
        else:
            if len(trace) > 0:
                pool.replay_window(0, len(trace))
        cluster._parallel_memory = pool.finish()
    finally:
        cluster._parallel = None
        pool.shutdown()
    return cluster.aggregate_stats()
