"""Vectorized routing plans: per-request shard ids computed in bulk.

The per-request cluster loop pays routing taxes Cliffhanger's
no-coordination design (paper section 4.3) does not require: shards are
fully independent between rebalance epochs, so *where* each request goes
is a pure function of the trace and the ring -- it can be computed once,
in bulk, and reused across every replay of the same (trace, ring) pair.

A :class:`RoutingPlan` is one ``shard_ids`` column for a whole compiled
trace:

* the primary shard per key comes from a bulk splitmix64 pass over the
  trace's ``key_table`` (numpy; bit-identical to
  :func:`repro.common.hashing.stable_hash_u64`), followed by one
  ``searchsorted`` against the ring's token column;
* for replication R > 1, the per-request replica is resolved ahead of
  time from the key's occurrence index (the round-robin "turn" the lazy
  per-key counters would have reached), so the precomputed choice is
  identical to the legacy loop's.

Plans are cached through :class:`~repro.workloads.compiled.TraceCache`
(:func:`get_routing_plan`), keyed by the trace's routing digest plus
every ring parameter, so sweeps over schemes/budgets re-route nothing.
"""

from __future__ import annotations

from pathlib import Path
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.common.errors import ConfigurationError, TraceFormatError
from repro.common.hashing import _splitmix64, stable_hash_u64

if TYPE_CHECKING:  # circular at runtime: compiled.py routes through us
    from repro.cluster.hashring import HashRing
    from repro.workloads.compiled import CompiledTrace, TraceCache

#: Bump when the on-disk plan layout (or the routing math) changes;
#: stale files are rebuilt.
PLAN_FORMAT_VERSION = 1

_FNV_OFFSET = np.uint64(0xCBF29CE484222325)
_FNV_PRIME = np.uint64(0x100000001B3)


def _splitmix64_array(x: np.ndarray) -> np.ndarray:
    """The splitmix64 finalizer over a uint64 array (wrapping mod 2^64)."""
    x = x + np.uint64(0x9E3779B97F4A7C15)
    x = (x ^ (x >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)
    x = (x ^ (x >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)
    return x ^ (x >> np.uint64(31))


def hash_keys_u64(keys: List[str], salt: int = 0) -> np.ndarray:
    """:func:`stable_hash_u64` over a column of string keys, vectorized.

    FNV-1a consumes one byte position per pass over the whole column
    (keys in one trace are short and near-uniform in length, so this is
    ~len(longest key) numpy passes), then one vectorized splitmix64
    finalizer. Bit-identical to the scalar helper by construction; the
    unit tests pin that down.
    """
    count = len(keys)
    if count == 0:
        return np.zeros(0, dtype=np.uint64)
    encoded = [key.encode("utf-8") for key in keys]
    lengths = np.fromiter(
        (len(blob) for blob in encoded), dtype=np.int64, count=count
    )
    flat = np.frombuffer(b"".join(encoded), dtype=np.uint8).astype(np.uint64)
    offsets = np.zeros(count, dtype=np.int64)
    np.cumsum(lengths[:-1], out=offsets[1:])
    seeds = np.full(count, _FNV_OFFSET, dtype=np.uint64)
    for position in range(int(lengths.max())):
        live = lengths > position
        seeds[live] = (
            seeds[live] ^ flat[offsets[live] + position]
        ) * _FNV_PRIME
    salt_mix = np.uint64(_splitmix64(salt & ((1 << 64) - 1)))
    return _splitmix64_array(seeds ^ salt_mix)


def occurrence_index(key_ids: np.ndarray) -> np.ndarray:
    """Per position, how many earlier positions hold the same key id.

    This is exactly the round-robin "turn" the legacy replay loop's lazy
    per-key counters would have reached at each request. Computed with a
    stable sort: within each key's group the original order survives, so
    ``arange - group_start`` is the occurrence count.
    """
    total = len(key_ids)
    if total == 0:
        return np.zeros(0, dtype=np.int64)
    order = np.argsort(key_ids, kind="stable")
    sorted_ids = key_ids[order]
    arange = np.arange(total, dtype=np.int64)
    is_start = np.ones(total, dtype=bool)
    is_start[1:] = sorted_ids[1:] != sorted_ids[:-1]
    group_start = np.maximum.accumulate(np.where(is_start, arange, 0))
    turns = np.empty(total, dtype=np.int64)
    turns[order] = arange - group_start
    return turns


def effective_replication(replication: int, shards: int) -> int:
    """The replication factor a ``shards``-wide ring actually runs at.

    Every consumer of a replication parameter -- plan construction, plan
    cache keys, :meth:`RoutingPlan.matches_ring`, and
    :class:`LiveRouter` -- must agree on how out-of-range values clamp,
    or a plan keyed/built at one effective value can be matched (or
    missed) at another. This is the single definition: at least one
    replica, at most one per shard.
    """
    return min(max(int(replication), 1), int(shards))


class RoutingPlan:
    """One precomputed ``shard_ids`` column for a (trace, ring) pair.

    ``shard_ids[i]`` is the shard that request ``i`` of the trace lands
    on -- replication round-robin already resolved. The replay
    (:meth:`repro.cluster.Cluster.replay_compiled`) stable-partitions
    this column into per-(shard, app) runs, keeping each run's positions
    in original trace order, which is what makes per-run replay
    bit-identical to the interleaved loop: shards share no state between
    rebalance barriers, and tenants on one shard share none either.
    """

    __slots__ = ("shards", "hash_seed", "virtual_nodes", "replication", "shard_ids")

    def __init__(
        self,
        shards: int,
        hash_seed: int,
        virtual_nodes: int,
        replication: int,
        shard_ids: np.ndarray,
    ) -> None:
        self.shards = int(shards)
        self.hash_seed = int(hash_seed)
        self.virtual_nodes = int(virtual_nodes)
        self.replication = int(replication)
        self.shard_ids = np.ascontiguousarray(shard_ids, dtype=np.int32)

    def __len__(self) -> int:
        return len(self.shard_ids)

    def matches_ring(self, ring: "HashRing", replication: int) -> bool:
        """Whether this plan was built for ``ring`` at ``replication``.

        Same-shape plans from differently-parameterized rings route
        every key differently, so the replay validates the full ring
        identity, not just the shard count.
        """
        return (
            self.shards == ring.shards
            and self.hash_seed == ring.seed
            and self.virtual_nodes == ring.virtual_nodes
            and self.replication
            == effective_replication(replication, ring.shards)
        )

    # ------------------------------------------------------------------
    # Disk format (the plan half of the two-level trace cache)
    # ------------------------------------------------------------------

    def save(self, path: Union[str, Path]) -> Path:
        """Serialize to ``.npz``, atomically (tmp file + rename)."""
        from repro.workloads.compiled import save_npz_atomic

        return save_npz_atomic(
            path,
            {
                "version": np.array([PLAN_FORMAT_VERSION]),
                "shards": np.array([self.shards]),
                "hash_seed": np.array([self.hash_seed]),
                "virtual_nodes": np.array([self.virtual_nodes]),
                "replication": np.array([self.replication]),
                "shard_ids": self.shard_ids,
            },
        )

    @classmethod
    def load(cls, path: Union[str, Path]) -> "RoutingPlan":
        """Deserialize, validating the shard column before trusting it.

        A corrupt or truncated file whose ``shard_ids`` fall outside
        ``[0, shards)`` would pass the caller's length and
        :meth:`matches_ring` checks and then misroute (or IndexError
        deep inside the replay gather), so the range check lives here:
        any violation raises :class:`TraceFormatError`, which the cache
        layer treats exactly like a stale entry -- rebuild and
        overwrite.
        """
        with np.load(path, allow_pickle=False) as data:
            if int(data["version"][0]) != PLAN_FORMAT_VERSION:
                raise TraceFormatError(
                    f"{path}: unsupported routing-plan version"
                )
            shards = int(data["shards"][0])
            replication = int(data["replication"][0])
            shard_ids = data["shard_ids"]
            if shards < 1:
                raise TraceFormatError(
                    f"{path}: routing plan declares {shards} shard(s)"
                )
            if not 1 <= replication <= shards:
                raise TraceFormatError(
                    f"{path}: routing plan replication {replication} "
                    f"outside [1, {shards}]"
                )
            if shard_ids.ndim != 1 or not np.issubdtype(
                shard_ids.dtype, np.integer
            ):
                raise TraceFormatError(
                    f"{path}: shard_ids must be a 1-d integer column, "
                    f"got shape {shard_ids.shape} dtype {shard_ids.dtype}"
                )
            if len(shard_ids) > 0:
                low = int(shard_ids.min())
                high = int(shard_ids.max())
                if low < 0 or high >= shards:
                    raise TraceFormatError(
                        f"{path}: shard_ids range [{low}, {high}] "
                        f"outside [0, {shards})"
                    )
            return cls(
                shards,
                int(data["hash_seed"][0]),
                int(data["virtual_nodes"][0]),
                replication,
                shard_ids,
            )


def ring_positions(trace: "CompiledTrace", ring: "HashRing") -> np.ndarray:
    """Per trace key, the ring position its hash bisects to.

    The shared first half of every bulk routing pass: one vectorized
    splitmix64 sweep over ``trace.key_table`` plus one ``searchsorted``
    against the ring's token column. ``positions[key_id]`` indexes the
    ring's ``token_table()``/``successor_table()`` rows.
    """
    key_table = trace.key_table
    if all(isinstance(key, str) for key in key_table):
        hashes = hash_keys_u64(key_table, salt=ring.seed)
    else:  # hand-built traces with exotic keys: scalar fallback
        hashes = np.fromiter(
            (stable_hash_u64(key, salt=ring.seed) for key in key_table),
            dtype=np.uint64,
            count=len(key_table),
        )
    tokens, _ = ring.token_table()
    token_column = np.asarray(tokens, dtype=np.uint64)
    # bisect_right then wrap-to-0 at the end of the ring == mod.
    return np.searchsorted(token_column, hashes, side="right") % len(
        token_column
    )


def build_routing_plan(
    trace: "CompiledTrace", ring: "HashRing", replication: int = 1
) -> RoutingPlan:
    """Route every request of a compiled trace through ``ring`` at once.

    Bit-identical to routing the trace through
    :meth:`~repro.cluster.hashring.HashRing.shard_for` /
    ``shards_for`` with lazy per-key round-robin counters starting at 0
    (what one ``Cluster.replay_compiled`` call does): the replica turn is
    the key's occurrence index in this trace.
    """
    if replication < 1:
        raise ConfigurationError(
            f"replication must be >= 1, got {replication}"
        )
    replication = effective_replication(replication, ring.shards)
    positions = ring_positions(trace, ring)
    key_ids = np.asarray(trace.key_ids, dtype=np.int64)
    if replication == 1:
        _, owners = ring.token_table()
        primary = np.asarray(owners, dtype=np.int32)[positions]
        shard_ids = primary[key_ids]
    else:
        successors = np.asarray(
            ring.successor_table(replication), dtype=np.int32
        )
        turns = occurrence_index(key_ids)
        shard_ids = successors[
            positions[key_ids], turns % np.int64(replication)
        ]
    return RoutingPlan(
        ring.shards, ring.seed, ring.virtual_nodes, replication, shard_ids
    )


class LiveRouter:
    """Per-live-set routing columns for the fault-aware failover replay.

    Crashing a shard changes where its keys land (next live successor)
    without moving anyone else's keys -- consistent hashing's whole
    point -- so the fault replay re-derives the routing column at every
    fault window instead of once per (trace, ring). This router shares
    the expensive, live-set-independent halves across windows: the
    per-key ring positions, the per-request round-robin turns, and the
    ring's full successor order. A window's column is then one
    table-filter plus one gather, memoized per live set (schedules
    revisit live sets -- crash/restart pairs return to all-live).

    The routing contract matches the per-request oracle exactly: a key's
    replica set is the first ``min(replication, live_count)`` *live*
    successors clockwise of its hash, and its round-robin turn is its
    occurrence index over the whole trace (counters do not reset at
    fault barriers).
    """

    def __init__(
        self,
        trace: "CompiledTrace",
        ring: "HashRing",
        replication: int,
        base_plan: Optional[RoutingPlan] = None,
    ) -> None:
        self.ring = ring
        self.replication = effective_replication(replication, ring.shards)
        self._trace = trace
        self._positions: Optional[np.ndarray] = None
        self._turns: Optional[np.ndarray] = None
        self._key_ids: Optional[np.ndarray] = None
        self._columns: Dict[Tuple[bool, ...], np.ndarray] = {}
        if base_plan is not None and len(base_plan) == len(trace):
            # The all-live column is the cached RoutingPlan; reuse it so
            # no-fault windows pay nothing the plain replay would not.
            self._columns[(True,) * ring.shards] = base_plan.shard_ids

    def _ensure_tables(self) -> None:
        if self._positions is not None:
            return
        trace = self._trace
        self._positions = ring_positions(trace, self.ring)
        self._key_ids = np.asarray(trace.key_ids, dtype=np.int64)
        self._turns = occurrence_index(self._key_ids)

    def shard_ids(self, live: Sequence[bool]) -> np.ndarray:
        """The full-trace shard column under ``live`` (memoized)."""
        mask = tuple(bool(flag) for flag in live)
        if len(mask) != self.ring.shards:
            raise ConfigurationError(
                f"live mask covers {len(mask)} shard(s); ring has "
                f"{self.ring.shards}"
            )
        column = self._columns.get(mask)
        if column is not None:
            return column
        self._ensure_tables()
        alive = sum(mask)
        effective = min(self.replication, alive)
        table = np.asarray(
            self.ring.live_successor_table(effective, mask), dtype=np.int32
        )
        if effective == 1:
            column = table[:, 0][self._positions][self._key_ids]
        else:
            column = table[
                self._positions[self._key_ids],
                self._turns % np.int64(effective),
            ]
        column = np.ascontiguousarray(column, dtype=np.int32)
        self._columns[mask] = column
        return column


def plan_cache_key(
    trace: "CompiledTrace", ring: "HashRing", replication: int
) -> str:
    """Cache key encoding everything the plan depends on: the routed key
    sequence (trace digest) and every ring/replication parameter.

    The replication component is the *effective* (clamped) value: plans
    built at ``replication > shards`` are identical to plans built at
    ``shards``, and keying them apart would store the same bytes twice
    while a key at the raw value could never match the clamped value
    recorded inside the plan file.
    """
    return (
        f"routing-{trace.routing_digest()}-s{ring.shards}-h{ring.seed}"
        f"-v{ring.virtual_nodes}"
        f"-r{effective_replication(replication, ring.shards)}"
        f"-p{PLAN_FORMAT_VERSION}"
    )


def get_routing_plan(
    trace: "CompiledTrace",
    ring: "HashRing",
    replication: int = 1,
    cache: Optional["TraceCache"] = None,
) -> RoutingPlan:
    """Fetch (or build and cache) the plan for ``(trace, ring)``.

    ``cache`` defaults to the process-wide
    :data:`~repro.workloads.compiled.GLOBAL_TRACE_CACHE`, so scenario
    sweeps -- including worker processes sharing the on-disk store --
    route each (trace, ring) pair exactly once. With
    ``REPRO_TRACE_CACHE=off`` the plan still caches in process memory,
    just not on disk.
    """
    if replication < 1:
        # Reject up front: with the cache key clamped, a warm cache
        # could otherwise serve replication=0 the r=1 plan while a cold
        # cache raised from the build -- behavior must not depend on
        # cache warmth.
        raise ConfigurationError(
            f"replication must be >= 1, got {replication}"
        )
    if cache is None:
        from repro.workloads.compiled import GLOBAL_TRACE_CACHE as cache
    key = plan_cache_key(trace, ring, replication)
    plan = cache.get_or_build_plan(
        key, lambda: build_routing_plan(trace, ring, replication)
    )
    if len(plan) != len(trace) or not plan.matches_ring(ring, replication):
        # A digest collision would be astronomically unlikely; a stale
        # or corrupt disk entry is not. Rebuild rather than misroute --
        # and overwrite the poisoned entry so the next fetch is a hit
        # again instead of re-detecting the mismatch forever.
        plan = build_routing_plan(trace, ring, replication)
        cache.store_plan(key, plan)
    return plan
