"""Multi-server simulation: N :class:`CacheServer` shards behind a ring.

Cliffhanger "runs on each memory cache server and does not require any
coordination between different servers" (paper section 4.3). The cluster
layer leans on exactly that: each shard hosts its own per-app engines
and optimizes locally; the only shared state is the consistent-hash ring
that routes keys. A :class:`Cluster` therefore composes the existing
single-server machinery unchanged -- a one-shard cluster replays
bit-identically to a bare :class:`CacheServer`.

Replication (``replication`` R > 1) spreads each key's requests
round-robin across its R successor shards on the ring. Every replica
fills its cache independently, so replication trades per-replica hit
rate for hot-shard load relief -- the standard "replicate the hot
partition" memcache deployment move.

Shard budgets start frozen at an even split. Attaching a
:class:`~repro.cluster.rebalance.Rebalancer` turns the split online:
every epoch the replay pauses to move budget credits between shards
(see :mod:`repro.cluster.rebalance`); with no rebalancer attached the
replay is bit-identical to the static path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.cache.engines import Engine
from repro.cache.server import CacheServer
from repro.cache.slabs import SlabGeometry
from repro.cache.stats import (
    OP_CODES,
    OUTCOME_DEAD,
    AccessOutcome,
    HitMissCounter,
    StatsRegistry,
)
from repro.common.constants import ITEM_OVERHEAD_BYTES
from repro.common.errors import CacheError, ConfigurationError
from repro.cluster.hashring import HashRing
from repro.cluster.rebalance import epoch_windows
from repro.cluster.routing import (
    LiveRouter,
    RoutingPlan,
    build_routing_plan,
    hash_keys_u64,
    occurrence_index,
)
from repro.workloads.trace import Request

#: Engine factory for one tenant: ``(shard_index, budget_share) -> Engine``.
EngineFactory = Callable[[int, float], Engine]


def scale_engine_budgets(engines, target: float) -> int:
    """Proportionally scale a shard's engine budgets to sum to ``target``.

    The single canonical implementation behind every shard resize --
    rebalance transfers, fault-time drains and reclaims, serial or
    parallel -- so the budget float arithmetic is identical everywhere
    it runs (the parallel replay re-executes it in the owning worker and
    relies on exact agreement with the parent's bookkeeping copy).
    Proportional scaling keeps the apps' relative shares on the shard
    intact; only the shard's total moves, mirroring how an operator
    resizes a memcache instance rather than one tenant on it. Returns
    the evictions the shrink enforced.
    """
    engines = list(engines)
    current = sum(engine.budget_bytes for engine in engines)
    if current <= 0:
        # A fully drained shard (min_shard_fraction == 0) has no
        # proportions left to scale; split the grant evenly across its
        # apps so a transfer's credit is never destroyed.
        if target > 0 and engines:
            share = target / len(engines)
            for engine in engines:
                engine.grow_budget(share - engine.budget_bytes)
        return 0
    evictions = 0
    scale = target / current
    for engine in engines:
        delta = engine.budget_bytes * (scale - 1.0)
        if delta >= 0:
            engine.grow_budget(delta)
        else:
            evictions += engine.shrink_budget(-delta)
    return evictions


@dataclass(frozen=True)
class ClusterConfig:
    """The serializable shape of a scenario's ``cluster`` block.

    ``replication`` is clamped to the shard count at construction, so a
    spec, the config built from it, and the replay's report always show
    the same effective value (and shard-count sweeps with a fixed
    replication stay valid at small shard counts).

    ``partitioned_replay`` (default ``True``) selects the
    routing-plan-driven replay: the whole trace is routed in one
    vectorized pass and each shard replays its stable sub-trace with the
    single-server fast loop (see :mod:`repro.cluster.routing`). Setting
    it to ``False`` keeps the legacy per-request routing loop -- bit-
    identical by construction, kept as the oracle the parity/property
    tests compare against (and as an escape hatch).

    ``parallel_workers`` (default ``0``) fans the partitioned replay's
    per-shard loops out across that many worker processes over
    shared-memory trace columns (see :mod:`repro.cluster.parallel`).
    ``0`` and ``1`` replay serially in-process; values above the shard
    count clamp to it, and a one-shard cluster always replays serially.
    Requires ``partitioned_replay`` (the per-request oracle is
    inherently sequential). The parallel path is bit-identical to the
    serial partitioned loop -- the property tests pin that down -- so
    this knob trades nothing but processes for wall-clock.
    """

    shards: int = 1
    hash_seed: int = 0
    replication: int = 1
    virtual_nodes: int = 64
    partitioned_replay: bool = True
    parallel_workers: int = 0

    def __post_init__(self) -> None:
        if not isinstance(self.partitioned_replay, bool):
            raise ConfigurationError(
                f"partitioned_replay must be a boolean, got "
                f"{self.partitioned_replay!r}"
            )
        if self.shards < 1:
            raise ConfigurationError(
                f"cluster needs at least one shard, got {self.shards}"
            )
        if self.replication < 1:
            raise ConfigurationError(
                f"replication must be >= 1, got {self.replication}"
            )
        if self.virtual_nodes < 1:
            raise ConfigurationError(
                f"virtual_nodes must be >= 1, got {self.virtual_nodes}"
            )
        if not isinstance(self.parallel_workers, int) or isinstance(
            self.parallel_workers, bool
        ):
            raise ConfigurationError(
                f"parallel_workers must be an integer, got "
                f"{self.parallel_workers!r}"
            )
        if self.parallel_workers < 0:
            raise ConfigurationError(
                f"parallel_workers must be >= 0, got "
                f"{self.parallel_workers}"
            )
        if self.parallel_workers > 1 and not self.partitioned_replay:
            raise ConfigurationError(
                "parallel_workers requires partitioned_replay: the "
                "per-request oracle loop is inherently sequential"
            )
        if self.replication > self.shards:
            object.__setattr__(self, "replication", self.shards)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "shards": self.shards,
            "hash_seed": self.hash_seed,
            "replication": self.replication,
            "virtual_nodes": self.virtual_nodes,
            "partitioned_replay": self.partitioned_replay,
            "parallel_workers": self.parallel_workers,
        }

    @classmethod
    def from_dict(cls, payload: Optional[Dict[str, Any]]) -> "ClusterConfig":
        if payload is None:
            return cls()
        if not isinstance(payload, dict):
            raise ConfigurationError(
                f"cluster block must be an object, got "
                f"{type(payload).__name__}"
            )
        known = {
            "shards",
            "hash_seed",
            "replication",
            "virtual_nodes",
            "partitioned_replay",
            "parallel_workers",
        }
        unknown = set(payload) - known
        if unknown:
            raise ConfigurationError(
                f"unknown cluster fields: {', '.join(sorted(unknown))}"
            )
        try:
            return cls(
                shards=int(payload.get("shards", 1)),
                hash_seed=int(payload.get("hash_seed", 0)),
                replication=int(payload.get("replication", 1)),
                virtual_nodes=int(payload.get("virtual_nodes", 64)),
                partitioned_replay=payload.get("partitioned_replay", True),
                parallel_workers=int(payload.get("parallel_workers", 0)),
            )
        except (TypeError, ValueError) as exc:
            raise ConfigurationError(f"bad cluster block: {exc}") from None


@dataclass
class ShardLoad:
    """One shard's share of a replay."""

    shard: int
    requests: int
    gets: int
    hit_rate: float
    memory_used_bytes: float

    def to_dict(self) -> Dict[str, Any]:
        return {
            "shard": self.shard,
            "requests": self.requests,
            "gets": self.gets,
            "hit_rate": self.hit_rate,
            "memory_used_bytes": self.memory_used_bytes,
        }


def render_cluster_report(payload: Dict[str, Any]) -> List[str]:
    """Plain-text lines for a cluster-report dict.

    The single formatter behind :meth:`ClusterReport.render` and
    :meth:`repro.sim.ScenarioResult.render`, so the two outputs cannot
    drift.
    """
    hot = set(payload["hot_shards"])
    lines = [
        f"cluster: {payload['shards']} shard(s), replication "
        f"{payload['replication']}, imbalance "
        f"{payload['imbalance']:.3f} (max/mean), hot shards: "
        f"{payload['hot_shards'] or 'none'}"
    ]
    for load in payload["shard_loads"]:
        mark = "  *hot*" if load["shard"] in hot else ""
        lines.append(
            f"  shard {load['shard']}: {load['requests']:,} requests, "
            f"hit rate {load['hit_rate']:.4f}, "
            f"{load['memory_used_bytes'] / (1 << 20):.2f} MB used{mark}"
        )
    rebalance = payload.get("rebalance")
    if rebalance is not None:
        lines.append(
            f"  rebalance ({rebalance['policy']}): "
            f"{rebalance['transfers']} transfer(s) of "
            f"{rebalance['credit_bytes'] / 1024:.0f} KB over "
            f"{rebalance['epochs']} epoch(s) of "
            f"{rebalance['epoch_requests']:,} requests"
        )
        lines.append(
            "  shard budgets now: "
            + ", ".join(
                f"{budget / (1 << 20):.2f} MB"
                for budget in rebalance["shard_budgets"]
            )
        )
    faults = payload.get("faults")
    if faults is not None:
        lines.append(
            f"  faults ({faults['policy']}): {len(faults['events'])} "
            f"event(s), {len(faults['crashes'])} crash(es), "
            f"{faults['dead_requests']:,} dead request(s), "
            f"{faults['fault_evictions']:,} fault eviction(s)"
        )
        for crash in faults["crashes"]:
            line = (
                f"    shard {crash['shard']} down @ {crash['crash_at']:,} "
                f"for {crash['downtime_requests']:,} request(s), "
                f"pre-fault hit rate {crash['pre_fault_hit_rate']:.4f}, "
                f"miss cost {crash['miss_cost']:.0f}"
            )
            if crash["recovered_at"] is not None:
                line += (
                    f", recovered @ {crash['recovered_at']:,} "
                    f"(ttr {crash['time_to_recover']:,} requests)"
                )
            elif crash["restart_at"] is not None:
                line += ", not recovered by trace end"
            lines.append(line)
    serve = payload.get("serve")
    if serve is not None:
        lines.append(
            f"  serve ({serve['arrivals']} arrivals, backpressure "
            f"{serve['backpressure']}, {serve['connections']} conn): "
            f"offered {serve['offered_rate']:,.0f} req/s, achieved "
            f"{serve['achieved_rate']:,.0f} req/s, shed {serve['shed']:,} "
            f"of {serve['requests']:,}"
        )
        latency = serve["latency_ms"]
        lines.append(
            f"    latency ms: p50 {latency['p50']:.2f}  "
            f"p95 {latency['p95']:.2f}  p99 {latency['p99']:.2f}  "
            f"p999 {latency['p999']:.2f}  max {latency['max']:.2f}"
        )
        depths = serve["queue_depth"]["depths"]
        if depths:
            lines.append(
                f"    queue depth: mean "
                f"{sum(depths) / len(depths):.1f}, max {max(depths)}"
            )
        retries = serve.get("retries", 0)
        hedges = serve.get("hedges", 0)
        timeouts = serve.get("timeouts", 0)
        shed_expired = serve.get("shed_expired", 0)
        if retries or hedges or timeouts or shed_expired:
            lines.append(
                f"    retries {retries:,}, hedges {hedges:,}, "
                f"timeouts {timeouts:,}, expired-in-queue "
                f"{shed_expired:,}"
            )
        serve_faults = serve.get("faults")
        if serve_faults is not None:
            timeline = serve_faults.get("latency_timeline", [])
            timed = [w for w in timeline if w["completed"]]
            if timed:
                worst = max(timed, key=lambda w: w["p99_ms"])
                lines.append(
                    f"    p99 timeline: worst window "
                    f"[{worst['start']:,}, {worst['stop']:,}) at "
                    f"{worst['p99_ms']:.2f} ms, final window "
                    f"{timed[-1]['p99_ms']:.2f} ms"
                )
    return lines


@dataclass
class ClusterReport:
    """Aggregated view of a cluster replay.

    ``imbalance`` is the max/mean per-shard request ratio (1.0 is a
    perfectly balanced cluster); ``hot_shards`` lists shards whose load
    exceeds ``hot_factor`` times the mean.
    """

    shards: int
    replication: int
    hit_rates: Dict[str, float]
    overall_hit_rate: float
    requests: int
    gets: int
    shard_loads: List[ShardLoad]
    imbalance: float
    hot_shards: List[int]
    #: :meth:`repro.cluster.rebalance.Rebalancer.to_dict` payload (config,
    #: transfer counts, per-epoch allocation timeline); None when the
    #: replay used the static split.
    rebalance: Optional[Dict[str, Any]] = None
    #: :meth:`repro.cluster.faults.FaultInjector.to_dict` payload
    #: (schedule, per-crash downtime/recovery metrics, hit-rate
    #: timeline); None when no fault injector was attached.
    faults: Optional[Dict[str, Any]] = None
    #: :meth:`repro.serve.ServeReport.to_dict` payload (offered/achieved
    #: rate, latency percentiles, shed count, queue-depth timeline);
    #: None when the replay was offline (no ``serve`` block).
    serve: Optional[Dict[str, Any]] = None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "shards": self.shards,
            "replication": self.replication,
            "hit_rates": dict(self.hit_rates),
            "overall_hit_rate": self.overall_hit_rate,
            "requests": self.requests,
            "gets": self.gets,
            "shard_loads": [load.to_dict() for load in self.shard_loads],
            "imbalance": self.imbalance,
            "hot_shards": list(self.hot_shards),
            "rebalance": (
                dict(self.rebalance) if self.rebalance is not None else None
            ),
            "faults": (
                dict(self.faults) if self.faults is not None else None
            ),
            "serve": (
                dict(self.serve) if self.serve is not None else None
            ),
        }

    def render(self) -> str:
        """Per-shard loads plus the balance summary."""
        return "\n".join(render_cluster_report(self.to_dict()))


class Cluster:
    """N shard servers, a hash ring, and aggregate reporting.

    Engines are registered per app through :meth:`add_app`, which splits
    the app's total budget evenly across shards (each shard is an
    independent server; no shard knows the others exist, per the paper's
    no-coordination design).
    """

    def __init__(
        self,
        config: ClusterConfig,
        geometry: Optional[SlabGeometry] = None,
    ) -> None:
        self.config = config
        self.geometry = geometry or SlabGeometry.default()
        #: Replica count (ClusterConfig already clamps it to the shard
        #: count).
        self.replication = config.replication
        self.ring = HashRing(
            config.shards,
            seed=config.hash_seed,
            virtual_nodes=config.virtual_nodes,
        )
        self.servers = [
            CacheServer(self.geometry) for _ in range(config.shards)
        ]
        #: Optional online rebalancer (see :meth:`attach_rebalancer`).
        self.rebalancer = None
        #: Optional fault injector (see :meth:`attach_faults`).
        self.fault_injector = None
        #: Per-app engine factories captured by :meth:`add_app`; the
        #: fault layer rebuilds restarted shards cold through these.
        self.engine_factories: Dict[str, EngineFactory] = {}
        #: Per-app per-shard budget shares captured by :meth:`add_app`
        #: (insertion order = registration order); the parallel replay's
        #: workers rebuild their shards' engines from these.
        self.app_shares: Dict[str, float] = {}
        #: Live :class:`~repro.cluster.parallel.WorkerPool` while a
        #: parallel replay is driving; :meth:`scale_shard_budget` and
        #: :meth:`restart_shard` forward through it to the owning worker.
        self._parallel = None
        #: Per-shard used-bytes reported by the workers at the end of a
        #: parallel replay (the parent's engines stay empty mirrors);
        #: consulted by :meth:`report` / :meth:`memory_in_use`.
        self._parallel_memory: Optional[Dict[int, float]] = None
        # Per-key round-robin counters for the object API (the compiled
        # replay keeps its own array-based counters).
        self._spread: Dict[object, int] = {}
        # Object-API routing memos: each key's ring position (live-set
        # independent, hashed at most once per cluster) and per-live-set
        # successor columns -- the same tables the bulk
        # RoutingPlan/LiveRouter machinery routes compiled traces with.
        self._key_positions: Dict[object, int] = {}
        self._successor_columns: Dict[Tuple[bool, ...], np.ndarray] = {}
        # Object-API request counter; with a rebalancer attached every
        # ``epoch_requests``-th call to process()/process_batch() hands
        # control to the rebalancer, like the replay loops do.
        self._object_requests = 0

    @property
    def shards(self) -> int:
        return len(self.servers)

    # ------------------------------------------------------------------

    def add_app(
        self, app: str, budget_bytes: float, make_engine: EngineFactory
    ) -> None:
        """Register a tenant on every shard with ``budget_bytes/shards``
        each; ``make_engine(shard, share)`` builds each shard's engine."""
        share = budget_bytes / len(self.servers)
        for shard, server in enumerate(self.servers):
            engine = make_engine(shard, share)
            if engine.app != app:
                raise ConfigurationError(
                    f"engine factory for app {app!r} built an engine "
                    f"named {engine.app!r}"
                )
            server.add_app(engine)
        self.engine_factories[app] = make_engine
        self.app_shares[app] = share

    # -- shard budgets (the canonical resize seam) ----------------------

    def shard_budget(self, shard: int) -> float:
        """One shard's reservation: the sum of its engines' budgets."""
        return sum(
            engine.budget_bytes
            for engine in self.servers[shard].engines.values()
        )

    def scale_shard_budget(self, shard: int, target: float) -> int:
        """Proportionally scale ``shard``'s engine budgets to ``target``.

        Every budget move -- rebalance transfers and fault-time
        drains/reclaims -- goes through here. Returns the evictions the
        shrink enforced (callers charge them to their own counters).
        During a parallel replay the parent's engines are empty
        bookkeeping mirrors: the same arithmetic runs both here (so
        parent-side signals, floors, and reports see the right budgets)
        and in the owning worker, whose engines hold the actual items
        and therefore report the real eviction count.
        """
        evictions = scale_engine_budgets(
            self.servers[shard].engines.values(), target
        )
        if self._parallel is not None:
            evictions += self._parallel.scale_shard(shard, target)
        return evictions

    def restart_shard(
        self, shard: int, budgets: Dict[str, float]
    ) -> None:
        """Cold-restart ``shard``: factory-fresh engines at ``budgets``
        (app -> bytes). A zero-budget engine was fully drained at crash
        time, so it is already cold and stays in place. In a parallel
        replay the owning worker rebuilds the same engines from the same
        factories."""
        server = self.servers[shard]
        for app, budget in budgets.items():
            if budget > 0:
                server.replace_app(self.engine_factories[app](shard, budget))
        if self._parallel is not None:
            self._parallel.restart_shard(shard, budgets)

    def attach_rebalancer(self, rebalancer) -> None:
        """Install a :class:`~repro.cluster.rebalance.Rebalancer`; the
        next :meth:`replay_compiled` takes the epoch-driven path and the
        cluster report grows a ``rebalance`` section."""
        self.rebalancer = rebalancer

    def attach_faults(self, injector) -> None:
        """Install a :class:`~repro.cluster.faults.FaultInjector`; the
        next :meth:`replay_compiled` takes the fault-aware path and the
        cluster report grows a ``faults`` section."""
        self.fault_injector = injector

    def live_mask(self) -> List[bool]:
        """Per-shard liveness (all live without a fault injector)."""
        if self.fault_injector is not None:
            return self.fault_injector.live
        return [True] * len(self.servers)

    @property
    def object_requests(self) -> int:
        """Requests processed through the object API (:meth:`process` /
        :meth:`process_batch`) -- the live server's virtual clock."""
        return self._object_requests

    # ------------------------------------------------------------------

    def _route_mask(self) -> Tuple[bool, ...]:
        """The live mask routing sees.

        ``failover`` masks crashed shards out of the successor walk;
        ``miss-through`` (and no injector at all) keeps the all-live
        walk and lets dead shards swallow their requests as tagged
        misses -- the same split the replay loops make.
        """
        injector = self.fault_injector
        if injector is not None and injector.policy == "failover":
            return tuple(bool(flag) for flag in injector.live)
        return (True,) * len(self.servers)

    def _successor_column(self, mask: Tuple[bool, ...]) -> np.ndarray:
        """Per ring position, the replica row under ``mask``.

        Memoized per live set, exactly like the columns
        :class:`~repro.cluster.routing.LiveRouter` builds for the bulk
        failover replay; the object API shares them so repeat requests
        never re-walk the ring. Rows have ``min(replication, alive)``
        entries (the tables clamp).
        """
        column = self._successor_columns.get(mask)
        if column is None:
            if all(mask):
                table = self.ring.successor_table(self.replication)
            else:
                table = self.ring.live_successor_table(self.replication, mask)
            column = np.asarray(table, dtype=np.int64)
            self._successor_columns[mask] = column
        return column

    def _position_of(self, key: object) -> int:
        position = self._key_positions.get(key)
        if position is None:
            position = self._key_positions[key] = self.ring.position_for(key)
        return position

    def route(self, key: object) -> int:
        """Shard index serving the next request for ``key``.

        With ``replication == 1`` this is the ring's primary; otherwise
        the key's requests round-robin across its replica set. Each key
        is hashed at most once per cluster: its ring position is
        memoized and looked up in the per-live-set successor columns the
        bulk routing plans already use, so a repeat request costs two
        dict hits instead of a hash plus a ring walk.
        """
        replicas = self._successor_column(self._route_mask())[
            self._position_of(key)
        ]
        if self.replication == 1:
            return int(replicas[0])
        turn = self._spread.get(key, 0)
        self._spread[key] = turn + 1
        return int(replicas[turn % len(replicas)])

    def _after_object_requests(self, count: int) -> None:
        """Advance the object-API request counter; with a rebalancer
        attached, fire the epoch barrier exactly where the replay loops
        would (after every ``epoch_requests``-th request), and with a
        *serving* fault injector
        (:meth:`~repro.cluster.faults.FaultInjector.begin_serving`) run
        its barrier hooks in replay order -- sampling, epoch, events.
        Callers that batch must split at epoch *and* fault barriers
        before calling this."""
        self._object_requests += count
        injector = self.fault_injector
        at_barrier = (
            injector is not None
            and injector.serving
            and injector.is_barrier(self._object_requests)
        )
        if at_barrier:
            injector.on_barrier(self._object_requests)
        rebalancer = self.rebalancer
        if rebalancer is not None:
            epoch = rebalancer.config.epoch_requests
            if epoch and self._object_requests % epoch == 0:
                rebalancer.on_epoch()
        if at_barrier:
            injector.apply_events(self._object_requests)

    def process(self, request: Request) -> AccessOutcome:
        """Route one request to its shard (object API).

        This is the per-request bit-exactness oracle
        :meth:`process_batch` is proven against. With a fault injector
        attached, a request routed to a dead shard (the ``miss-through``
        policy; ``failover`` routing never picks one) is recorded on
        that shard's registry as a tagged dead miss without reaching an
        engine. With a rebalancer attached, every ``epoch_requests``-th
        object-API request hands control to the rebalancer.
        """
        shard = self.route(request.key)
        server = self.servers[shard]
        injector = self.fault_injector
        if injector is not None and not injector.live[shard]:
            if request.app not in server.engines:
                raise ConfigurationError(
                    f"request for unknown app {request.app!r}"
                )
            outcome = AccessOutcome(
                hit=False, app=request.app, op=request.op, dead=True
            )
            server.stats.record(outcome)
        else:
            outcome = server.process(request)
        self._after_object_requests(1)
        return outcome

    # -- plan-backed batch object API ----------------------------------

    def process_batch(
        self,
        keys: Sequence[object],
        ops: Union[str, Sequence[object]],
        value_sizes: Union[int, Sequence[int]],
        apps: Union[str, Sequence[str]],
        key_sizes: Union[None, int, Sequence[int]] = None,
    ) -> np.ndarray:
        """Process many object-API requests in one vectorized pass.

        The serving hot path: routes the whole batch with the same bulk
        primitives the compiled replay uses (one vectorized hash +
        ``searchsorted`` for keys not yet memoized, precomputed
        successor columns, occurrence-index replica turns), then replays
        per-(shard, app) runs through ``process_fast`` with bulk stats
        flushes. Returns one packed outcome code per request (see
        :func:`repro.cache.stats.pack_outcome`), in request order.

        Bit-identical to calling :meth:`process` per request -- down to
        per-shard per-(app, class) counters, replica round-robin state,
        rebalance epoch barriers (the batch splits at epoch boundaries
        mid-batch) and fault handling -- except that per-request
        observers never fire; the property tests pin the parity down.

        ``ops`` entries are ``"get"``/``"set"``/``"delete"`` or their
        integer codes; ``ops``, ``value_sizes``, ``apps`` and
        ``key_sizes`` may each be a scalar broadcast across the batch.
        ``key_sizes`` defaults to each key's string length.
        """
        count = len(keys)
        op_column = self._batch_ops(ops, count)
        app_names, app_column = self._batch_apps(apps, count)
        engines = self.servers[0].engines
        for name in app_names:
            if name not in engines:
                raise ConfigurationError(f"request for unknown app {name!r}")
        class_column, chunk_column, item_column = self._batch_classes(
            keys, value_sizes, key_sizes, count
        )
        injector = self.fault_injector
        serving_faults = injector is not None and injector.serving
        if serving_faults:
            # The live mask can flip at a fault barrier mid-batch, so
            # routing must happen per window, after events apply; the
            # occurrence-index replica turns still advance through the
            # same global sequence because each window routes its slice
            # against the memoized counters.
            shard_column = np.empty(count, dtype=np.int64)
        else:
            shard_column = self._route_batch(keys, count)
        out = np.empty(count, dtype=np.int64)
        rebalancer = self.rebalancer
        epoch = (
            rebalancer.config.epoch_requests if rebalancer is not None else 0
        )
        start = 0
        while start < count:
            stop = count
            if epoch:
                into_epoch = self._object_requests % epoch
                stop = min(count, start + epoch - into_epoch)
            if serving_faults:
                barrier = injector.next_barrier(self._object_requests)
                if barrier is not None:
                    stop = min(
                        stop, start + barrier - self._object_requests
                    )
                shard_column[start:stop] = self._route_batch(
                    keys[start:stop], stop - start
                )
            self._process_batch_window(
                keys,
                op_column,
                class_column,
                chunk_column,
                item_column,
                app_names,
                app_column,
                shard_column,
                out,
                start,
                stop,
            )
            self._after_object_requests(stop - start)
            start = stop
        return out

    def _batch_ops(
        self, ops: Union[str, Sequence[object]], count: int
    ) -> np.ndarray:
        if isinstance(ops, (str, int)):
            ops = [ops] * count
        if len(ops) != count:
            raise ConfigurationError(
                f"process_batch got {count} key(s) but {len(ops)} op(s)"
            )
        column = np.empty(count, dtype=np.int64)
        for i, op in enumerate(ops):
            if isinstance(op, str):
                code = OP_CODES.get(op)
                if code is None:
                    raise ConfigurationError(f"unknown op {op!r}")
            else:
                code = int(op)
                if not 0 <= code < len(OP_CODES):
                    raise ConfigurationError(f"unknown op code {op!r}")
            column[i] = code
        return column

    def _batch_apps(
        self, apps: Union[str, Sequence[str]], count: int
    ) -> Tuple[List[str], np.ndarray]:
        if isinstance(apps, str):
            return [apps], np.zeros(count, dtype=np.int64)
        if len(apps) != count:
            raise ConfigurationError(
                f"process_batch got {count} key(s) but {len(apps)} app(s)"
            )
        ids: Dict[str, int] = {}
        names: List[str] = []
        column = np.empty(count, dtype=np.int64)
        for i, app in enumerate(apps):
            app_id = ids.get(app)
            if app_id is None:
                app_id = ids[app] = len(names)
                names.append(app)
            column[i] = app_id
        return names, column

    def _batch_classes(
        self,
        keys: Sequence[object],
        value_sizes: Union[int, Sequence[int]],
        key_sizes: Union[None, int, Sequence[int]],
        count: int,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Vectorized slab classification, mirroring
        :meth:`~repro.cache.slabs.SlabGeometry.class_for_size`'s
        ``bisect_left`` (and its :class:`CacheError` contract) exactly."""
        value_column = np.asarray(value_sizes, dtype=np.int64)
        if value_column.ndim == 0:
            value_column = np.full(count, int(value_column), dtype=np.int64)
        elif len(value_column) != count:
            raise ConfigurationError(
                f"process_batch got {count} key(s) but "
                f"{len(value_column)} value size(s)"
            )
        if np.any(value_column < 0):
            raise ConfigurationError("value sizes must be >= 0")
        if key_sizes is None:
            key_column = np.fromiter(
                (len(str(key)) for key in keys), dtype=np.int64, count=count
            )
        else:
            key_column = np.asarray(key_sizes, dtype=np.int64)
            if key_column.ndim == 0:
                key_column = np.full(count, int(key_column), dtype=np.int64)
            elif len(key_column) != count:
                raise ConfigurationError(
                    f"process_batch got {count} key(s) but "
                    f"{len(key_column)} key size(s)"
                )
        item_column = key_column + value_column + ITEM_OVERHEAD_BYTES
        ladder = np.asarray(self.geometry.chunk_sizes, dtype=np.int64)
        class_column = np.searchsorted(ladder, item_column, side="left")
        oversized = class_column >= len(ladder)
        if np.any(oversized):
            worst = int(item_column[oversized].max())
            raise CacheError(
                f"item of {worst}B exceeds largest chunk {int(ladder[-1])}B"
            )
        return class_column, ladder[class_column], item_column

    def _route_batch(self, keys: Sequence[object], count: int) -> np.ndarray:
        """Shard per request, resolved in bulk.

        Keys already routed through :meth:`route` (or an earlier batch)
        reuse their memoized ring positions; the rest are hashed in one
        vectorized pass. Replica turns are each key's memoized counter
        plus its occurrence index within the batch -- exactly the
        sequence per-request :meth:`route` calls would have produced --
        and the counters advance past the batch.
        """
        column = self._successor_column(self._route_mask())
        unique_ids: Dict[object, int] = {}
        unique_keys: List[object] = []
        key_ids = np.empty(count, dtype=np.int64)
        for i, key in enumerate(keys):
            key_id = unique_ids.get(key)
            if key_id is None:
                key_id = unique_ids[key] = len(unique_keys)
                unique_keys.append(key)
            key_ids[i] = key_id
        memo = self._key_positions
        unique_positions = np.empty(len(unique_keys), dtype=np.int64)
        missing: List[int] = []
        for key_id, key in enumerate(unique_keys):
            position = memo.get(key)
            if position is None:
                missing.append(key_id)
            else:
                unique_positions[key_id] = position
        if missing:
            missing_keys = [unique_keys[key_id] for key_id in missing]
            if all(isinstance(key, str) for key in missing_keys):
                tokens, _ = self.ring.token_table()
                token_column = np.asarray(tokens, dtype=np.uint64)
                hashes = hash_keys_u64(missing_keys, salt=self.ring.seed)
                found = np.searchsorted(
                    token_column, hashes, side="right"
                ) % len(token_column)
                positions_found = found.tolist()
            else:  # exotic keys: scalar fallback
                positions_found = [
                    self.ring.position_for(key) for key in missing_keys
                ]
            for key_id, position in zip(missing, positions_found):
                unique_positions[key_id] = position
                memo[unique_keys[key_id]] = position
        positions = unique_positions[key_ids]
        if self.replication == 1:
            return column[positions, 0]
        spread = self._spread
        base = np.fromiter(
            (spread.get(key, 0) for key in unique_keys),
            dtype=np.int64,
            count=len(unique_keys),
        )
        turns = occurrence_index(key_ids) + base[key_ids]
        occurrences = np.bincount(key_ids, minlength=len(unique_keys))
        for key_id, key in enumerate(unique_keys):
            spread[key] = int(base[key_id] + occurrences[key_id])
        return column[positions, turns % column.shape[1]]

    def _process_batch_window(
        self,
        keys: Sequence[object],
        op_column: np.ndarray,
        class_column: np.ndarray,
        chunk_column: np.ndarray,
        item_column: np.ndarray,
        app_names: List[str],
        app_column: np.ndarray,
        shard_column: np.ndarray,
        out: np.ndarray,
        start: int,
        stop: int,
    ) -> None:
        """Process batch positions ``[start, stop)`` as per-(shard, app)
        runs -- the :meth:`_replay_window` pattern, plus a per-request
        outcome column. Requests for a dead shard (``miss-through``)
        record tagged dead misses and never reach an engine."""
        num_apps = len(app_names)
        window = shard_column[start:stop] * num_apps + app_column[start:stop]
        order = np.argsort(window, kind="stable")
        sorted_runs = window[order]
        run_bounds = np.flatnonzero(sorted_runs[1:] != sorted_runs[:-1]) + 1
        run_starts = np.concatenate(([0], run_bounds))
        run_stops = np.concatenate((run_bounds, [len(sorted_runs)]))
        injector = self.fault_injector
        live = injector.live if injector is not None else None
        for run_start, run_stop in zip(run_starts, run_stops):
            if run_start == run_stop:
                continue  # empty window
            shard, app_id = divmod(int(sorted_runs[run_start]), num_apps)
            picks = order[run_start:run_stop]
            if start:
                picks = picks + start
            server = self.servers[shard]
            app = app_names[app_id]
            record_bulk = server.stats.record_code_bulk
            if live is not None and not live[shard]:
                out[picks] = OUTCOME_DEAD
                run_ops, op_counts = np.unique(
                    op_column[picks], return_counts=True
                )
                for op, op_count in zip(
                    run_ops.tolist(), op_counts.tolist()
                ):
                    record_bulk(app, op, OUTCOME_DEAD, op_count)
                continue
            engine = server.engines[app]
            process = engine.process_fast
            codes = np.empty(len(picks), dtype=np.int64)
            counts: Dict[int, int] = {}
            position = 0
            for pick, op, class_index, chunk, nbytes in zip(
                picks.tolist(),
                op_column[picks].tolist(),
                class_column[picks].tolist(),
                chunk_column[picks].tolist(),
                item_column[picks].tolist(),
            ):
                code = process(keys[pick], op, class_index, chunk, nbytes)
                codes[position] = code
                position += 1
                packed = (code << 2) | op
                try:
                    counts[packed] += 1
                except KeyError:
                    counts[packed] = 1
            out[picks] = codes
            for packed, packed_count in counts.items():
                record_bulk(app, packed & 3, packed >> 2, packed_count)

    def replay_compiled(
        self, trace, plan: Optional[RoutingPlan] = None
    ) -> StatsRegistry:
        """Replay a compiled trace across the shards.

        Per-shard stats land in each shard server's own registry; the
        returned registry is the cluster-wide aggregate. A one-shard
        cluster without a rebalancer delegates to
        :meth:`CacheServer.replay_compiled` unchanged, which is what the
        parity tests pin down.

        By default the replay is *partitioned*: a vectorized
        :class:`~repro.cluster.routing.RoutingPlan` (built here, or
        passed in by callers that cache plans across replays) assigns
        every request its shard up front, and each shard then replays
        its stable sub-trace through the single-server fast loop.
        Shards share no state between rebalance barriers, so the result
        is bit-identical to the legacy per-request routing loop -- which
        ``config.partitioned_replay == False`` keeps selectable as the
        oracle. With a rebalancer attached, partitioning happens within
        each epoch window so :meth:`Rebalancer.on_epoch` barriers land
        exactly where the per-request loop puts them.
        """
        partitioned = self.config.partitioned_replay
        if (
            partitioned
            and self.config.parallel_workers > 1
            and len(self.servers) > 1
        ):
            from repro.cluster.parallel import replay_parallel

            return replay_parallel(self, trace, plan)
        if self.fault_injector is not None:
            if partitioned:
                return self._replay_faults_partitioned(trace, plan)
            return self._replay_faults_per_request(trace)
        if self.rebalancer is not None:
            if partitioned:
                return self._replay_epochs_partitioned(trace, plan)
            return self._replay_with_epochs(trace)
        if len(self.servers) == 1:
            self.servers[0].replay_compiled(trace)
            return self.aggregate_stats()
        self._check_geometry(trace)
        if partitioned:
            return self._replay_partitioned(trace, plan)
        return self._replay_per_request(trace)

    # -- shared replay guards ------------------------------------------

    def _check_geometry(self, trace) -> None:
        if trace.geometry.chunk_sizes != self.geometry.chunk_sizes:
            raise ConfigurationError(
                "compiled trace was built for a different slab geometry "
                f"({trace.geometry.chunk_sizes} vs "
                f"{self.geometry.chunk_sizes}); recompile it"
            )

    def _resolve_plan(self, trace, plan: Optional[RoutingPlan]) -> RoutingPlan:
        """Validate a caller-supplied plan, or build one for this replay.

        Building here goes straight through
        :func:`~repro.cluster.routing.build_routing_plan` -- no cache
        side effects, so ad-hoc :class:`Cluster` users stay hermetic;
        the scenario layer passes cached plans in.
        """
        if plan is None:
            return build_routing_plan(trace, self.ring, self.replication)
        if len(plan) != len(trace) or not plan.matches_ring(
            self.ring, self.replication
        ):
            raise ConfigurationError(
                f"routing plan mismatch: plan covers {len(plan)} requests "
                f"on {plan.shards} shard(s) (hash_seed {plan.hash_seed}, "
                f"{plan.virtual_nodes} vnodes, replication "
                f"{plan.replication}); replay needs {len(trace)} requests "
                f"on this cluster's ring ({len(self.servers)} shard(s), "
                f"hash_seed {self.ring.seed}, {self.ring.virtual_nodes} "
                f"vnodes, replication {self.replication})"
            )
        return plan

    def _require_engines(self, trace) -> None:
        """Raise like the per-request loop would for apps that have
        requests in ``trace`` but no registered engine (partitioned
        replays fail fast instead of mid-shard)."""
        engines = self.servers[0].engines
        for app_id in np.unique(np.asarray(trace.app_ids, dtype=np.int64)):
            name = trace.app_table[app_id]
            if name not in engines:
                raise ConfigurationError(
                    f"request for unknown app {name!r}"
                )

    # -- partitioned fast paths ----------------------------------------

    def _replay_partitioned(
        self, trace, plan: Optional[RoutingPlan]
    ) -> StatsRegistry:
        """The static fast path: one stable partition, then each shard
        replays per-(shard, app) runs through the flat loop in
        :meth:`_replay_window` (no replication branch, no per-request
        ring lookups, no nested engine-list indexing)."""
        plan = self._resolve_plan(trace, plan)
        self._require_engines(trace)
        app_column = np.asarray(trace.app_ids, dtype=np.int64)
        self._replay_window(trace, plan.shard_ids, app_column, 0, len(trace))
        return self.aggregate_stats()

    def _replay_epochs_partitioned(
        self, trace, plan: Optional[RoutingPlan]
    ) -> StatsRegistry:
        """The rebalancing fast path: partition within each epoch window,
        replay every shard's slice of the window with the flat loop,
        then hand control to the rebalancer exactly where the
        per-request loop would (after every ``epoch_requests``-th
        request; a trailing partial window ends without a barrier).
        Shards exchange no state inside a window, so per-window
        partitioning preserves bit-identical results."""
        self._check_geometry(trace)
        plan = self._resolve_plan(trace, plan)
        self._require_engines(trace)
        rebalancer = self.rebalancer
        epoch_requests = rebalancer.config.epoch_requests
        app_column = np.asarray(trace.app_ids, dtype=np.int64)
        for start, stop in epoch_windows(len(trace), epoch_requests):
            self._replay_window(
                trace, plan.shard_ids, app_column, start, stop
            )
            if stop - start == epoch_requests:
                rebalancer.on_epoch()
        return self.aggregate_stats()

    def _replay_faults_partitioned(
        self, trace, plan: Optional[RoutingPlan]
    ) -> StatsRegistry:
        """The fault-aware fast path: partition and replay between the
        injector's merged barriers (fault offsets, rebalance epochs, and
        the metric sampling grid), re-deriving the routing column per
        live set under the ``failover`` policy (``miss-through`` keeps
        the base plan and tags dead-shard runs). The barrier protocol --
        sample, then epoch, then events -- matches
        :meth:`_replay_faults_per_request` exactly, which the property
        tests pin down."""
        self._check_geometry(trace)
        plan = self._resolve_plan(trace, plan)
        self._require_engines(trace)
        injector = self.fault_injector
        rebalancer = self.rebalancer
        epoch_requests = (
            rebalancer.config.epoch_requests if rebalancer is not None else 0
        )
        injector.begin(len(trace), epoch_requests)
        failover = injector.policy == "failover"
        router = (
            LiveRouter(trace, self.ring, self.replication, base_plan=plan)
            if failover
            else None
        )
        app_column = np.asarray(trace.app_ids, dtype=np.int64)
        no_dead = frozenset()
        for start, stop in injector.windows():
            if failover:
                shard_column = router.shard_ids(injector.live)
                dead = no_dead
            else:
                shard_column = plan.shard_ids
                dead = injector.dead_shards()
            self._replay_window(
                trace, shard_column, app_column, start, stop, dead=dead
            )
            injector.on_barrier(stop)
            if epoch_requests and stop % epoch_requests == 0:
                rebalancer.on_epoch()
            injector.apply_events(stop)
        return self.aggregate_stats()

    def _replay_window(
        self,
        trace,
        shard_ids: np.ndarray,
        app_column: np.ndarray,
        start: int,
        stop: int,
        dead: frozenset = frozenset(),
    ) -> None:
        """Replay requests ``[start, stop)`` as per-(shard, app) runs.

        Within one replay window shards are independent servers and, on
        each shard, per-app engines and per-app stats share no state --
        so the interleaved request order only matters *within* one
        (shard, app) run, which the stable partition preserves. Each run
        then replays with everything hoisted out of the loop: the
        engine's bound ``process_fast``, flat column slices, and a tally
        of identical packed outcomes that is flushed through
        :meth:`StatsRegistry.record_code_bulk` (integer counters, so
        batching is bit-identical).

        Runs addressed to a ``dead`` shard (the fault layer's
        ``miss-through`` policy) never reach an engine: each request is
        recorded on the dead shard's registry with the ``OUTCOME_DEAD``
        code -- GETs count as misses, SETs as sets -- which is
        order-free, so the bulk tally stays bit-identical to the
        per-request oracle.
        """
        num_apps = len(trace.app_table)
        window = (
            shard_ids[start:stop].astype(np.int64) * num_apps
            + app_column[start:stop]
        )
        order = np.argsort(window, kind="stable")
        sorted_runs = window[order]
        run_bounds = np.flatnonzero(sorted_runs[1:] != sorted_runs[:-1]) + 1
        run_starts = np.concatenate(([0], run_bounds))
        run_stops = np.concatenate((run_bounds, [len(sorted_runs)]))
        keys, op_codes, slab_classes, chunk_bytes, item_bytes = (
            trace.replay_columns()
        )
        for run_start, run_stop in zip(run_starts, run_stops):
            if run_start == run_stop:
                continue  # empty window
            shard, app_id = divmod(int(sorted_runs[run_start]), num_apps)
            picks = order[run_start:run_stop]
            if start:
                picks = picks + start
            server = self.servers[shard]
            if dead and shard in dead:
                record_bulk = server.stats.record_code_bulk
                app = trace.app_table[app_id]
                ops, op_counts = np.unique(
                    op_codes[picks], return_counts=True
                )
                for op, count in zip(ops.tolist(), op_counts.tolist()):
                    record_bulk(app, op, OUTCOME_DEAD, count)
                continue
            engine = server.engines[trace.app_table[app_id]]
            process = engine.process_fast
            # Tally identical (op, outcome-code) pairs instead of paying
            # the per-request stats dict walk; ops fit in 2 bits of the
            # packed key. The columns are C-gathered numpy mirrors
            # (``tolist`` hands the loop plain Python objects -- keys
            # stay the interned strings).
            counts: Dict[int, int] = {}
            for key, op, class_index, chunk, nbytes in zip(
                keys[picks].tolist(),
                op_codes[picks].tolist(),
                slab_classes[picks].tolist(),
                chunk_bytes[picks].tolist(),
                item_bytes[picks].tolist(),
            ):
                packed = (
                    process(key, op, class_index, chunk, nbytes) << 2
                ) | op
                try:
                    counts[packed] += 1
                except KeyError:
                    counts[packed] = 1
            record_bulk = server.stats.record_code_bulk
            app = engine.app
            for packed, count in counts.items():
                record_bulk(app, packed & 3, packed >> 2, count)

    # -- legacy per-request loops (the bit-exactness oracle) ------------

    def _replay_per_request(self, trace) -> StatsRegistry:
        """The pre-routing-plan static loop, kept selectable via
        ``cluster.partitioned_replay: false`` as the oracle the parity
        and property tests compare the partitioned path against.

        Routing is a pure function of the key, so memoize it per key
        id -- lazily, because app-filtered sub-traces keep the full
        key table and eagerly hashing never-replayed keys would waste
        the filtering.
        """
        replication = self.replication
        if replication > 1:
            replicas_of_key: List[Optional[List[int]]] = [None] * len(
                trace.key_table
            )
            turn_of_key = [0] * len(trace.key_table)
        else:
            primary_of_key: List[Optional[int]] = [None] * len(
                trace.key_table
            )
        engines = [
            [server.engines.get(name) for name in trace.app_table]
            for server in self.servers
        ]
        records = [server.stats.record_code for server in self.servers]
        for app_id, key_id, key, op, class_index, chunk, item_bytes in zip(
            trace.app_ids,
            trace.key_ids,
            trace.keys,
            trace.op_codes,
            trace.slab_classes,
            trace.chunk_bytes,
            trace.item_bytes,
        ):
            if replication > 1:
                choices = replicas_of_key[key_id]
                if choices is None:
                    choices = replicas_of_key[key_id] = self.ring.shards_for(
                        key, replication
                    )
                turn = turn_of_key[key_id]
                turn_of_key[key_id] = turn + 1
                shard = choices[turn % len(choices)]
            else:
                shard = primary_of_key[key_id]
                if shard is None:
                    shard = primary_of_key[key_id] = self.ring.shard_for(key)
            engine = engines[shard][app_id]
            if engine is None:
                raise ConfigurationError(
                    f"request for unknown app {trace.app_table[app_id]!r}"
                )
            records[shard](
                engine.app,
                op,
                engine.process_fast(key, op, class_index, chunk, item_bytes),
            )
        return self.aggregate_stats()

    def _replay_with_epochs(self, trace) -> StatsRegistry:
        """The legacy rebalancing replay (the epoch-path oracle,
        selected by ``cluster.partitioned_replay: false``): the
        per-request loop plus an epoch counter that hands control to
        the rebalancer every ``epoch_requests`` requests. Unlike the
        static path, a one-shard cluster runs the full loop here too
        (rebalancing degenerates to timeline recording; there is never
        a donor shard) -- as does the partitioned equivalent."""
        self._check_geometry(trace)
        rebalancer = self.rebalancer
        epoch_requests = rebalancer.config.epoch_requests
        replication = self.replication
        if replication > 1:
            replicas_of_key: List[Optional[List[int]]] = [None] * len(
                trace.key_table
            )
            turn_of_key = [0] * len(trace.key_table)
        else:
            primary_of_key: List[Optional[int]] = [None] * len(
                trace.key_table
            )
        engines = [
            [server.engines.get(name) for name in trace.app_table]
            for server in self.servers
        ]
        records = [server.stats.record_code for server in self.servers]
        until_epoch = epoch_requests
        for app_id, key_id, key, op, class_index, chunk, item_bytes in zip(
            trace.app_ids,
            trace.key_ids,
            trace.keys,
            trace.op_codes,
            trace.slab_classes,
            trace.chunk_bytes,
            trace.item_bytes,
        ):
            if replication > 1:
                choices = replicas_of_key[key_id]
                if choices is None:
                    choices = replicas_of_key[key_id] = self.ring.shards_for(
                        key, replication
                    )
                turn = turn_of_key[key_id]
                turn_of_key[key_id] = turn + 1
                shard = choices[turn % len(choices)]
            else:
                shard = primary_of_key[key_id]
                if shard is None:
                    shard = primary_of_key[key_id] = self.ring.shard_for(key)
            engine = engines[shard][app_id]
            if engine is None:
                raise ConfigurationError(
                    f"request for unknown app {trace.app_table[app_id]!r}"
                )
            records[shard](
                engine.app,
                op,
                engine.process_fast(key, op, class_index, chunk, item_bytes),
            )
            until_epoch -= 1
            if until_epoch == 0:
                until_epoch = epoch_requests
                rebalancer.on_epoch()
        return self.aggregate_stats()

    def _replay_faults_per_request(self, trace) -> StatsRegistry:
        """The fault-aware oracle (``cluster.partitioned_replay:
        false``): per-request routing between the injector's merged
        barriers. Under ``failover`` each key's replica set is the ring's
        live-successor walk, re-resolved whenever the live set changes
        (``live_version`` stamps); round-robin turn counters are global
        occurrence indices and never reset. Under ``miss-through``
        routing stays the all-live walk and requests landing on a dead
        shard are recorded with ``OUTCOME_DEAD`` instead of reaching an
        engine. The property tests assert this loop and
        :meth:`_replay_faults_partitioned` are bit-identical."""
        self._check_geometry(trace)
        injector = self.fault_injector
        rebalancer = self.rebalancer
        epoch_requests = (
            rebalancer.config.epoch_requests if rebalancer is not None else 0
        )
        injector.begin(len(trace), epoch_requests)
        failover = injector.policy == "failover"
        replication = self.replication
        n_keys = len(trace.key_table)
        replicas_of_key: List[Optional[List[int]]] = [None] * n_keys
        route_version = [-1] * n_keys
        turn_of_key = [0] * n_keys
        records = [server.stats.record_code for server in self.servers]
        app_ids = trace.app_ids
        key_ids = trace.key_ids
        keys = trace.keys
        op_codes = trace.op_codes
        slab_classes = trace.slab_classes
        chunk_column = trace.chunk_bytes
        item_column = trace.item_bytes
        ring = self.ring
        for start, stop in injector.windows():
            # Restarts swap in factory-fresh engines, so the engine rows
            # must be re-resolved per window (stats registries persist).
            engines = [
                [server.engines.get(name) for name in trace.app_table]
                for server in self.servers
            ]
            live = injector.live
            version = injector.live_version
            for i in range(start, stop):
                key_id = key_ids[i]
                if failover:
                    if route_version[key_id] != version:
                        replicas_of_key[key_id] = ring.shards_for_live(
                            keys[i], replication, live
                        )
                        route_version[key_id] = version
                elif replicas_of_key[key_id] is None:
                    replicas_of_key[key_id] = ring.shards_for(
                        keys[i], replication
                    )
                choices = replicas_of_key[key_id]
                turn = turn_of_key[key_id]
                turn_of_key[key_id] = turn + 1
                shard = choices[turn % len(choices)]
                app_id = app_ids[i]
                engine = engines[shard][app_id]
                if engine is None:
                    raise ConfigurationError(
                        f"request for unknown app "
                        f"{trace.app_table[app_id]!r}"
                    )
                op = op_codes[i]
                if not live[shard]:
                    records[shard](engine.app, op, OUTCOME_DEAD)
                    continue
                records[shard](
                    engine.app,
                    op,
                    engine.process_fast(
                        keys[i],
                        op,
                        slab_classes[i],
                        chunk_column[i],
                        item_column[i],
                    ),
                )
            injector.on_barrier(stop)
            if epoch_requests and stop % epoch_requests == 0:
                rebalancer.on_epoch()
            injector.apply_events(stop)
        return self.aggregate_stats()

    # ------------------------------------------------------------------

    def aggregate_stats(self) -> StatsRegistry:
        """Cluster-wide registry: every shard's counters merged."""
        merged = StatsRegistry()
        for server in self.servers:
            merged.total.merge(server.stats.total)
            for app, counter in server.stats.by_app.items():
                merged.by_app.setdefault(app, HitMissCounter()).merge(counter)
            for key, counter in server.stats.by_app_class.items():
                merged.by_app_class.setdefault(
                    key, HitMissCounter()
                ).merge(counter)
        return merged

    def report(
        self,
        hot_factor: float = 1.5,
        stats: Optional[StatsRegistry] = None,
    ) -> ClusterReport:
        """Aggregate hit rates plus per-shard load and balance metrics.

        ``stats`` lets callers that already hold the merged registry
        (:meth:`replay_compiled` returns it) skip a second
        :meth:`aggregate_stats` pass over every shard's per-(app, class)
        counters; omitted, the report merges fresh.
        """
        if hot_factor <= 0:
            raise ConfigurationError(
                f"hot_factor must be positive, got {hot_factor}"
            )
        merged = stats if stats is not None else self.aggregate_stats()
        loads = []
        for shard, server in enumerate(self.servers):
            total = server.stats.total
            loads.append(
                ShardLoad(
                    shard=shard,
                    requests=total.gets + total.sets,
                    gets=total.gets,
                    hit_rate=total.hit_rate(),
                    memory_used_bytes=self.shard_memory_in_use(shard),
                )
            )
        counts = [load.requests for load in loads]
        mean = sum(counts) / len(counts) if counts else 0.0
        imbalance = max(counts) / mean if mean > 0 else 1.0
        hot_shards = [
            load.shard
            for load in loads
            if mean > 0 and load.requests > hot_factor * mean
        ]
        return ClusterReport(
            shards=len(self.servers),
            replication=self.replication,
            hit_rates={
                app: merged.app_hit_rate(app)
                for app in sorted(merged.by_app)
            },
            overall_hit_rate=merged.total.hit_rate(),
            requests=merged.total.gets + merged.total.sets,
            gets=merged.total.gets,
            shard_loads=loads,
            imbalance=imbalance,
            hot_shards=hot_shards,
            rebalance=(
                self.rebalancer.to_dict()
                if self.rebalancer is not None
                else None
            ),
            faults=(
                self.fault_injector.to_dict()
                if self.fault_injector is not None
                else None
            ),
        )

    # ------------------------------------------------------------------

    def shard_memory_in_use(self, shard: int) -> float:
        """Used bytes on one shard; after a parallel replay this is the
        owning worker's figure (the parent's engines are empty mirrors
        whose budgets are right but whose queues never saw an item)."""
        if self._parallel_memory is not None:
            used = self._parallel_memory.get(shard)
            if used is not None:
                return used
        return self.servers[shard].memory_in_use()

    def memory_in_use(self) -> float:
        return sum(
            self.shard_memory_in_use(shard)
            for shard in range(len(self.servers))
        )

    def memory_reserved(self) -> float:
        return sum(server.memory_reserved() for server in self.servers)
