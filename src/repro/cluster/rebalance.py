"""Epoch-driven online rebalancing of shard budgets.

The paper's hill climbing stops at the single-server boundary: "Cliffhanger
runs on each memory cache server and does not require any coordination
between different servers" (section 4.3). That leaves cluster-level memory
frozen at whatever split the operator chose, so a shard that turns hot --
a flash crowd landing on its keys, or a ring that handed it a larger slice
of the keyspace -- cannot borrow bytes from a cold one.

This module extends Algorithm 1 one level up. Shards become the resize
targets of a :class:`~repro.core.hill_climbing.HillClimber`: every
``epoch_requests`` requests the :class:`Rebalancer` reads per-shard demand
signals from the shard servers' own stats registries and grants one credit
to the neediest shard, shrinking a random other shard exactly like the
paper's queue-level algorithm. Two signals are supported:

* ``shadow`` -- the epoch's shadow-hit delta per shard: requests that
  missed physically but would have hit with a little more memory. This is
  the paper's own gradient signal, aggregated per server; it requires a
  shadow-capable scheme (``hill``, ``cliffhanger``, ...).
* ``load`` -- the epoch's request-count delta per shard: byte-blind but
  scheme-agnostic, the classic "feed the busiest shard" heuristic.

Growing or shrinking a shard re-divides its server's reservation across
that shard's per-app engines proportionally, through the same
``grow_budget``/``shrink_budget`` hooks
:class:`~repro.core.crossapp.CrossAppHillClimber` uses within one server.
Every epoch's resulting allocation is sampled into a
:class:`~repro.cache.stats.TimelineRecorder`, which is what the cluster
report exposes as the rebalance timeline.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from repro.cache.stats import TimelineRecorder
from repro.common.constants import (
    DEFAULT_EPOCH_REQUESTS,
    DEFAULT_MIN_SHARD_FRACTION,
    DEFAULT_REBALANCE_CREDIT_BYTES,
)
from repro.common.errors import ConfigurationError
from repro.core.hill_climbing import HillClimber

#: Signal policies :class:`RebalanceConfig` accepts.
POLICIES = ("shadow", "load")


def epoch_windows(total_requests: int, epoch_requests: int):
    """Yield ``(start, stop)`` request-index windows between barriers.

    The partitioned epoch replay partitions each window independently
    and calls :meth:`Rebalancer.on_epoch` after every *full* window --
    exactly where the per-request loop's countdown fires: after request
    ``epoch_requests``, ``2 * epoch_requests``, ...; a trailing partial
    window replays without a barrier. ``epoch_requests <= 0`` (no
    rebalancing) degenerates to one window covering the whole trace.
    """
    if epoch_requests <= 0:
        if total_requests > 0:
            yield 0, total_requests
        return
    for start in range(0, total_requests, epoch_requests):
        yield start, min(start + epoch_requests, total_requests)


@dataclass(frozen=True)
class RebalanceConfig:
    """The serializable shape of a scenario's ``rebalance`` block.

    ``epoch_requests == 0`` disables rebalancing entirely -- the replay
    stays on the static-split path, bit for bit (the parity tests pin
    this down).
    """

    epoch_requests: int = DEFAULT_EPOCH_REQUESTS
    credit_bytes: float = DEFAULT_REBALANCE_CREDIT_BYTES
    min_shard_fraction: float = DEFAULT_MIN_SHARD_FRACTION
    policy: str = "shadow"

    def __post_init__(self) -> None:
        if self.epoch_requests < 0:
            raise ConfigurationError(
                f"epoch_requests must be >= 0, got {self.epoch_requests}"
            )
        if self.credit_bytes <= 0:
            raise ConfigurationError(
                f"credit_bytes must be positive, got {self.credit_bytes}"
            )
        if not 0.0 <= self.min_shard_fraction < 1.0:
            raise ConfigurationError(
                f"min_shard_fraction must be in [0, 1), got "
                f"{self.min_shard_fraction}"
            )
        if self.policy not in POLICIES:
            raise ConfigurationError(
                f"unknown rebalance policy {self.policy!r}; known: "
                f"{', '.join(POLICIES)}"
            )

    @property
    def enabled(self) -> bool:
        return self.epoch_requests > 0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "epoch_requests": self.epoch_requests,
            "credit_bytes": self.credit_bytes,
            "min_shard_fraction": self.min_shard_fraction,
            "policy": self.policy,
        }

    @classmethod
    def from_dict(cls, payload: Optional[Dict[str, Any]]) -> "RebalanceConfig":
        if payload is None:
            return cls()
        if not isinstance(payload, dict):
            raise ConfigurationError(
                f"rebalance block must be an object, got "
                f"{type(payload).__name__}"
            )
        known = {
            "epoch_requests", "credit_bytes", "min_shard_fraction", "policy",
        }
        unknown = set(payload) - known
        if unknown:
            raise ConfigurationError(
                f"unknown rebalance fields: {', '.join(sorted(unknown))}"
            )
        try:
            return cls(
                epoch_requests=int(
                    payload.get("epoch_requests", DEFAULT_EPOCH_REQUESTS)
                ),
                credit_bytes=float(
                    payload.get(
                        "credit_bytes", DEFAULT_REBALANCE_CREDIT_BYTES
                    )
                ),
                min_shard_fraction=float(
                    payload.get(
                        "min_shard_fraction", DEFAULT_MIN_SHARD_FRACTION
                    )
                ),
                policy=str(payload.get("policy", "shadow")),
            )
        except (TypeError, ValueError) as exc:
            raise ConfigurationError(f"bad rebalance block: {exc}") from None


class Rebalancer:
    """Algorithm 1 over the shards of one :class:`~repro.cluster.Cluster`.

    Attach with :meth:`repro.cluster.Cluster.attach_rebalancer`; the
    cluster replay then calls :meth:`on_epoch` every
    ``config.epoch_requests`` requests. Determinism: the victim RNG is
    seeded from ``seed``, signals are integer counters, and ties go to
    the lowest shard index, so a fixed scenario seed yields a fixed epoch
    timeline.
    """

    def __init__(
        self, cluster, config: RebalanceConfig, seed: int = 0
    ) -> None:
        if not config.enabled:
            raise ConfigurationError(
                "rebalancer built from a disabled config "
                "(epoch_requests == 0); keep the static split instead"
            )
        self.cluster = cluster
        self.config = config
        total = cluster.memory_reserved()
        #: Byte floor per shard: a fraction of the even split.
        self.floor_bytes = config.min_shard_fraction * (
            total / cluster.shards
        )
        self.climber = HillClimber(
            credit_bytes=config.credit_bytes,
            min_bytes=self.floor_bytes,
            rng=random.Random(seed),
        )
        for shard in range(cluster.shards):
            self.climber.register(
                shard,
                get_capacity=lambda s=shard: self.shard_budget(s),
                set_capacity=lambda cap, s=shard: self._set_shard_budget(
                    s, cap
                ),
            )
        self.epochs = 0
        self.evictions = 0
        self._last_signal = self._signals()
        self.timeline = TimelineRecorder(interval=1.0)
        self._sample()  # epoch 0: the starting (static) allocation

    # ------------------------------------------------------------------
    # Shard budgets as hill-climber resize targets
    # ------------------------------------------------------------------

    def shard_budget(self, shard: int) -> float:
        """One shard's reservation: the sum of its engines' budgets."""
        return self.cluster.shard_budget(shard)

    def budgets(self) -> List[float]:
        return [self.shard_budget(s) for s in range(self.cluster.shards)]

    def _set_shard_budget(self, shard: int, target: float) -> None:
        """Scale the shard's engine budgets to sum to ``target`` through
        the cluster's canonical seam
        (:meth:`repro.cluster.Cluster.scale_shard_budget`), charging the
        enforced evictions to the rebalancer."""
        self.evictions += self.cluster.scale_shard_budget(shard, target)

    # ------------------------------------------------------------------
    # Epoch handling
    # ------------------------------------------------------------------

    def _signals(self) -> List[int]:
        """Cumulative per-shard demand signal (policy-dependent)."""
        servers = self.cluster.servers
        if self.config.policy == "shadow":
            return [server.stats.total.shadow_hits for server in servers]
        return [
            server.stats.total.gets + server.stats.total.sets
            for server in servers
        ]

    def on_epoch(self) -> Optional[int]:
        """One rebalance decision: grow the neediest shard, shrink a
        random other (Algorithm 1 with shards as queues). Returns the
        donor shard, or None when no transfer happened (no demand signal
        this epoch, or every other shard sits at the floor).

        Crashed shards (cluster fault injection) neither win nor donate:
        their demand deltas are masked to zero -- a dead shard can still
        accumulate signal under the ``miss-through`` policy -- and the
        donor pool is filtered to live shards. With every shard live the
        masking is a no-op and the climber call is unchanged, so
        fault-free replays stay bit-identical.
        """
        current = self._signals()
        deltas = [
            now - before
            for now, before in zip(current, self._last_signal)
        ]
        self._last_signal = current
        self.epochs += 1
        victim = None
        live = self.cluster.live_mask()
        all_live = all(live)
        if not all_live:
            deltas = [
                delta if alive else 0
                for delta, alive in zip(deltas, live)
            ]
        best = max(deltas)
        if best > 0:
            winner = deltas.index(best)  # ties: lowest shard index
            victim = self.climber.on_shadow_hit(
                winner,
                eligible=None if all_live else live.__getitem__,
            )
        self._sample()
        return victim

    def _sample(self) -> None:
        self.timeline.maybe_sample(
            float(self.epochs),
            {
                f"shard{shard}": self.shard_budget(shard)
                for shard in range(self.cluster.shards)
            },
        )

    # ------------------------------------------------------------------

    @property
    def transfers(self) -> int:
        return self.climber.transfers

    def to_dict(self) -> Dict[str, Any]:
        """The report payload: config, outcome counters, and the
        per-epoch allocation timeline."""
        payload = self.config.to_dict()
        payload.update(
            epochs=self.epochs,
            transfers=self.transfers,
            rebalance_evictions=self.evictions,
            shard_budgets=self.budgets(),
            timeline=self.timeline.to_dict(),
        )
        return payload
