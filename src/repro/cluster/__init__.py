"""``repro.cluster``: multi-server simulation on consistent hashing.

A :class:`Cluster` owns N :class:`~repro.cache.server.CacheServer`
shards, routes keys over a :class:`HashRing`, and aggregates per-shard
statistics into one :class:`ClusterReport` (per-app hit rates, per-shard
load, imbalance, hot-shard detection). Scenarios opt in through their
``cluster`` block; see :func:`repro.sim.run_scenario`.

Shard budgets default to a frozen even split; a scenario's ``rebalance``
block attaches an epoch-driven :class:`Rebalancer` that moves budget
credits between shards online (see :mod:`repro.cluster.rebalance`).

Cluster replays are routing-plan driven by default: a vectorized pass
(:mod:`repro.cluster.routing`) computes every request's shard up front
and each shard replays its stable sub-trace at single-server speed;
``cluster.partitioned_replay: false`` keeps the legacy per-request loop
selectable as the bit-exactness oracle.
"""

from repro.cluster.cluster import (
    Cluster,
    ClusterConfig,
    ClusterReport,
    ShardLoad,
    render_cluster_report,
)
from repro.cluster.faults import (
    FAULT_POLICIES,
    FaultEvent,
    FaultInjector,
    FaultSchedule,
)
from repro.cluster.hashring import HashRing
from repro.cluster.rebalance import RebalanceConfig, Rebalancer
from repro.cluster.routing import (
    LiveRouter,
    RoutingPlan,
    build_routing_plan,
    get_routing_plan,
)

__all__ = [
    "Cluster",
    "ClusterConfig",
    "ClusterReport",
    "FAULT_POLICIES",
    "FaultEvent",
    "FaultInjector",
    "FaultSchedule",
    "HashRing",
    "LiveRouter",
    "RebalanceConfig",
    "Rebalancer",
    "RoutingPlan",
    "ShardLoad",
    "build_routing_plan",
    "get_routing_plan",
    "render_cluster_report",
]
