"""Deterministic shard fault injection, failover, and recovery metrics.

Cliffhanger "runs on each memory cache server and does not require any
coordination between different servers" (paper section 4.3), so a
cluster of it survives shard loss through exactly two mechanisms: the
ring routes around the dead shard, and every survivor keeps optimizing
locally. A restarted shard comes back *cold* -- the hit-rate-cliff
regime the paper's machinery measures -- which makes fault injection the
natural stress test for the whole stack.

A :class:`FaultSchedule` is pure data: an ordered list of
:class:`FaultEvent` crash/restart actions pinned to absolute request
offsets, plus the degradation policy and recovery-metric knobs. It
round-trips through JSON (the scenario ``faults`` block) and is
sweepable like every other block. During replay the schedule's offsets
become window barriers merged with the rebalancer's epoch boundaries and
the metric sampling grid, so the partitioned fast path and the
per-request oracle replay fault timelines identically.

Two degradation policies model the two real memcache behaviors:

* ``failover`` -- keys whose shard crashed walk the ring to the next
  *live* successor (replicas absorb the load when ``replication > 1``);
  when the shard restarts the same walk routes them straight back, onto
  a cold cache.
* ``miss-through`` -- routing is unchanged; requests addressed to a dead
  shard are swallowed (GETs count as misses) and tagged with the packed
  ``OUTCOME_DEAD`` bit so reports can attribute them.

The :class:`FaultInjector` executes a schedule against one
:class:`~repro.cluster.Cluster`: it maintains the live mask, rebuilds
restarted shards cold through the cluster's stored engine factories,
moves budgets out of and back into the dead shard under the rebalancer's
conservation/floor invariants, and samples a rolling hit-rate timeline
(:class:`~repro.cache.stats.TimelineRecorder`) from which per-crash
downtime, attributable miss cost, and time-to-recover are derived.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.cache.stats import TimelineRecorder
from repro.common.errors import ConfigurationError

#: Event kinds a :class:`FaultSchedule` accepts.
FAULT_KINDS = ("crash", "restart")
#: Degradation policies (see module docstring).
FAULT_POLICIES = ("failover", "miss-through")
#: Default ε for "hit rate back within ε of the pre-fault window".
DEFAULT_RECOVERY_EPSILON = 0.02
#: ``sample_requests: 0`` auto-sizes the metric grid to about this many
#: windows across the trace.
AUTO_SAMPLE_WINDOWS = 128


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled action: ``crash`` or ``restart`` ``shard`` just
    *after* request ``at`` has been replayed (offset 0 = before the
    first request; offsets at or past the trace end never fire)."""

    kind: str
    shard: int
    at: int

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ConfigurationError(
                f"unknown fault event kind {self.kind!r}; known: "
                f"{', '.join(FAULT_KINDS)}"
            )
        if self.shard < 0:
            raise ConfigurationError(
                f"fault event shard must be >= 0, got {self.shard}"
            )
        if self.at < 0:
            raise ConfigurationError(
                f"fault event offset must be >= 0, got {self.at}"
            )

    def to_dict(self) -> Dict[str, Any]:
        return {"kind": self.kind, "shard": self.shard, "at": self.at}

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "FaultEvent":
        if not isinstance(payload, dict):
            raise ConfigurationError(
                f"fault event must be an object, got "
                f"{type(payload).__name__}"
            )
        unknown = set(payload) - {"kind", "shard", "at"}
        if unknown:
            raise ConfigurationError(
                f"unknown fault event fields: {', '.join(sorted(unknown))}"
            )
        for field_name in ("kind", "shard", "at"):
            if field_name not in payload:
                raise ConfigurationError(
                    f"fault event missing field {field_name!r}"
                )
        try:
            return cls(
                kind=str(payload["kind"]),
                shard=int(payload["shard"]),
                at=int(payload["at"]),
            )
        except (TypeError, ValueError) as exc:
            raise ConfigurationError(f"bad fault event: {exc}") from None


@dataclass(frozen=True)
class FaultSchedule:
    """The serializable shape of a scenario's ``faults`` block.

    Fields:
        events: Ordered :class:`FaultEvent` list. Offsets must be
            non-decreasing, and per shard the kinds must alternate
            crash, restart, crash, ... starting with a crash.
        policy: ``failover`` or ``miss-through`` (module docstring).
        sample_requests: Metric sampling stride in requests; ``0``
            auto-sizes to roughly :data:`AUTO_SAMPLE_WINDOWS` windows.
        recovery_epsilon: A crash counts as recovered at the first
            sampled window after its restart whose hit rate is within
            this ε of the pre-fault window's.
    """

    events: Tuple[FaultEvent, ...] = ()
    policy: str = "failover"
    sample_requests: int = 0
    recovery_epsilon: float = DEFAULT_RECOVERY_EPSILON

    def __post_init__(self) -> None:
        object.__setattr__(self, "events", tuple(self.events))
        if self.policy not in FAULT_POLICIES:
            raise ConfigurationError(
                f"unknown fault policy {self.policy!r}; known: "
                f"{', '.join(FAULT_POLICIES)}"
            )
        if self.sample_requests < 0:
            raise ConfigurationError(
                f"sample_requests must be >= 0, got {self.sample_requests}"
            )
        if not 0.0 <= self.recovery_epsilon < 1.0:
            raise ConfigurationError(
                f"recovery_epsilon must be in [0, 1), got "
                f"{self.recovery_epsilon}"
            )
        previous = -1
        down = set()
        for event in self.events:
            if event.at < previous:
                raise ConfigurationError(
                    f"fault offsets must be non-decreasing: offset "
                    f"{event.at} follows {previous}"
                )
            previous = event.at
            if event.kind == "crash":
                if event.shard in down:
                    raise ConfigurationError(
                        f"shard {event.shard} crashed twice without a "
                        f"restart (offset {event.at})"
                    )
                down.add(event.shard)
            else:
                if event.shard not in down:
                    raise ConfigurationError(
                        f"shard {event.shard} restarted at offset "
                        f"{event.at} before any crash"
                    )
                down.discard(event.shard)

    @property
    def enabled(self) -> bool:
        """Whether there is anything to inject (an empty schedule leaves
        the replay byte-for-byte on the fault-free paths)."""
        return bool(self.events)

    def validate_for(self, shards: int) -> None:
        """Checks that need the cluster's shard count: event targets in
        range, and at least one shard live at every point in time."""
        alive = shards
        for event in self.events:
            if event.shard >= shards:
                raise ConfigurationError(
                    f"fault event targets shard {event.shard}; cluster "
                    f"has {shards} shard(s)"
                )
            if event.kind == "crash":
                alive -= 1
                if alive < 1:
                    raise ConfigurationError(
                        f"fault schedule crashes every shard at offset "
                        f"{event.at}; at least one shard must stay live"
                    )
            else:
                alive += 1

    def events_by_offset(self) -> Dict[int, List[FaultEvent]]:
        """Events grouped by offset, schedule order preserved."""
        grouped: Dict[int, List[FaultEvent]] = {}
        for event in self.events:
            grouped.setdefault(event.at, []).append(event)
        return grouped

    def to_dict(self) -> Dict[str, Any]:
        return {
            "events": [event.to_dict() for event in self.events],
            "policy": self.policy,
            "sample_requests": self.sample_requests,
            "recovery_epsilon": self.recovery_epsilon,
        }

    @classmethod
    def from_dict(cls, payload: Optional[Dict[str, Any]]) -> "FaultSchedule":
        if payload is None:
            return cls()
        if not isinstance(payload, dict):
            raise ConfigurationError(
                f"faults block must be an object, got "
                f"{type(payload).__name__}"
            )
        known = {"events", "policy", "sample_requests", "recovery_epsilon"}
        unknown = set(payload) - known
        if unknown:
            raise ConfigurationError(
                f"unknown faults fields: {', '.join(sorted(unknown))}"
            )
        events = payload.get("events", [])
        if not isinstance(events, (list, tuple)):
            raise ConfigurationError(
                f"faults events must be a list, got "
                f"{type(events).__name__}"
            )
        try:
            return cls(
                events=tuple(
                    FaultEvent.from_dict(event) for event in events
                ),
                policy=str(payload.get("policy", "failover")),
                sample_requests=int(payload.get("sample_requests", 0)),
                recovery_epsilon=float(
                    payload.get(
                        "recovery_epsilon", DEFAULT_RECOVERY_EPSILON
                    )
                ),
            )
        except (TypeError, ValueError) as exc:
            raise ConfigurationError(f"bad faults block: {exc}") from None


class FaultInjector:
    """Executes one :class:`FaultSchedule` against one cluster replay.

    Attach with :meth:`repro.cluster.Cluster.attach_faults`; the replay
    then runs window-by-window between the merged barriers
    (:meth:`windows`), calling :meth:`on_barrier` (metric sampling),
    the rebalancer's epoch hook, and :meth:`apply_events` at each one --
    in that order, identically in the partitioned and per-request loops.

    Determinism: the schedule is fixed data, the live mask changes only
    at scheduled offsets, restarted engines are rebuilt through the
    cluster's stored factories (seeded ``scenario.seed + shard``), and
    budget moves are proportional arithmetic -- a fixed seed therefore
    yields an identical fault timeline, which the property tests pin.
    """

    def __init__(self, cluster, schedule: FaultSchedule) -> None:
        schedule.validate_for(cluster.shards)
        if cluster.shards == 1 and schedule.enabled:
            raise ConfigurationError(
                "fault injection needs at least two shards: crashing the "
                "only shard would leave no live shard"
            )
        self.cluster = cluster
        self.schedule = schedule
        self.policy = schedule.policy
        self.live: List[bool] = [True] * cluster.shards
        #: Bumped on every live-set change; the per-request oracle uses
        #: it to invalidate per-key route caches.
        self.live_version = 0
        self.fault_evictions = 0
        self.records: List[Dict[str, Any]] = []
        self.timeline = TimelineRecorder(interval=1.0)
        self.sample_step = max(1, schedule.sample_requests)
        self._events_at = schedule.events_by_offset()
        self._down: Dict[int, Dict[str, Any]] = {}
        self._saved_budgets: Dict[int, Dict[str, float]] = {}
        self._total = 0
        self._windows: List[Tuple[int, int]] = []
        self._last_hits = 0
        self._last_gets = 0
        self._window_rate = 0.0
        #: True between :meth:`begin_serving` and :meth:`finish_serving`:
        #: the cluster's object API drives the barriers incrementally
        #: instead of the replay loops iterating :meth:`windows`.
        self.serving = False
        self._barrier_offsets: List[int] = []
        self._barrier_set: frozenset = frozenset()

    # ------------------------------------------------------------------
    # Replay protocol
    # ------------------------------------------------------------------

    def begin(self, total: int, epoch_requests: int = 0) -> None:
        """Reset per-replay state, lay out the merged barrier windows,
        and apply offset-0 events (a crash at 0 precedes every request).
        """
        self._total = total
        self.live = [True] * self.cluster.shards
        self.live_version = 0
        self.fault_evictions = 0
        self.records = []
        self._down = {}
        self._saved_budgets = {}
        self.sample_step = self.schedule.sample_requests or max(
            1, total // AUTO_SAMPLE_WINDOWS
        )
        self.timeline = TimelineRecorder(interval=float(self.sample_step))
        barriers = set()
        if total > 0:
            barriers.add(total)
            barriers.update(range(self.sample_step, total, self.sample_step))
            if epoch_requests > 0:
                barriers.update(
                    range(epoch_requests, total + 1, epoch_requests)
                )
            barriers.update(at for at in self._events_at if 0 < at < total)
        offsets = sorted(barriers)
        self._windows = list(zip([0] + offsets[:-1], offsets))
        self._last_hits, self._last_gets = self._cluster_totals()
        self._window_rate = 0.0
        self.apply_events(0)

    def windows(self) -> List[Tuple[int, int]]:
        """The replay's ``(start, stop)`` windows between barriers."""
        return self._windows

    # ------------------------------------------------------------------
    # Live-serving protocol
    # ------------------------------------------------------------------

    def begin_serving(self, total: int, epoch_requests: int = 0) -> None:
        """Arm the schedule for the live server's virtual-time axis.

        ``total`` is the *scheduled* request count (``rate x duration``
        rounded): the same value an offline replay of that many requests
        would pass to :meth:`begin`, so the barrier layout -- sampling
        grid, epoch boundaries, event offsets -- is identical. The
        cluster's object API then consumes the barriers incrementally
        (:meth:`next_barrier` / :meth:`is_barrier`) as drained requests
        flow through :meth:`~repro.cluster.Cluster.process_batch`:
        virtual time is "requests processed", so a fixed seed and
        schedule reproduce the identical fault timeline no matter how
        the event loop interleaves connections.
        """
        self.begin(total, epoch_requests)
        self._barrier_offsets = sorted(stop for _, stop in self._windows)
        self._barrier_set = frozenset(self._barrier_offsets)
        self.serving = True

    def next_barrier(self, processed: int) -> Optional[int]:
        """The first barrier offset strictly after ``processed``."""
        index = bisect_right(self._barrier_offsets, processed)
        if index >= len(self._barrier_offsets):
            return None
        return self._barrier_offsets[index]

    def is_barrier(self, offset: int) -> bool:
        return offset in self._barrier_set

    def finish_serving(self, processed: int) -> None:
        """Close the run at ``processed`` requests: sample the tail
        window (an under-driven run never reaches the ``total`` barrier)
        and disarm the live clock."""
        if self.serving and not self.is_barrier(processed):
            self.on_barrier(processed)
        self.serving = False

    def dead_shards(self) -> frozenset:
        """Currently-crashed shard indices (miss-through tagging)."""
        return frozenset(
            shard for shard, flag in enumerate(self.live) if not flag
        )

    def on_barrier(self, offset: int) -> None:
        """Sample the rolling hit rate and advance recovery accounting.

        The window rate is Δhits/Δgets since the previous barrier; a
        crash record accrues miss cost (``max(0, pre_rate - rate) ×
        window_gets``) from its crash barrier until the first sampled
        window at or after its restart whose rate is back within ε of
        the pre-fault window's.
        """
        hits, gets = self._cluster_totals()
        window_hits = hits - self._last_hits
        window_gets = gets - self._last_gets
        self._last_hits, self._last_gets = hits, gets
        if window_gets > 0:
            self._window_rate = window_hits / window_gets
        rate = self._window_rate
        self.timeline.maybe_sample(
            float(offset),
            {"hit_rate": rate, "live_shards": float(sum(self.live))},
        )
        if window_gets <= 0:
            return
        epsilon = self.schedule.recovery_epsilon
        for record in self.records:
            if record["recovered_at"] is not None:
                continue
            restart_at = record["restart_at"]
            if (
                restart_at is not None
                and offset >= restart_at
                and rate >= record["pre_fault_hit_rate"] - epsilon
            ):
                record["recovered_at"] = offset
                record["time_to_recover"] = offset - record["crash_at"]
                continue
            record["miss_cost"] += (
                max(0.0, record["pre_fault_hit_rate"] - rate) * window_gets
            )

    def apply_events(self, offset: int) -> None:
        """Fire the schedule's events pinned to ``offset`` (barriers run
        sampling and the rebalance epoch first; events at or past the
        trace end never fire)."""
        for event in self._events_at.get(offset, ()):
            if event.at >= self._total:
                continue
            if event.kind == "crash":
                self._crash(event)
            else:
                self._restart(event)

    # ------------------------------------------------------------------
    # Crash / restart mechanics
    # ------------------------------------------------------------------

    def _cluster_totals(self) -> Tuple[int, int]:
        hits = gets = 0
        for server in self.cluster.servers:
            total = server.stats.total
            hits += total.get_hits
            gets += total.gets
        return hits, gets

    def _shard_budget(self, shard: int) -> float:
        return self.cluster.shard_budget(shard)

    def _scale_shard(self, shard: int, target: float) -> None:
        """Scale one shard's engine budgets to ``target`` through the
        cluster's canonical seam
        (:meth:`repro.cluster.Cluster.scale_shard_budget`), charging the
        enforced evictions to the injector -- fault bookkeeping must not
        inflate the rebalancer's own eviction counter."""
        self.fault_evictions += self.cluster.scale_shard_budget(shard, target)

    def _crash(self, event: FaultEvent) -> None:
        shard = event.shard
        self.live[shard] = False
        self.live_version += 1
        engines = self.cluster.servers[shard].engines
        self._saved_budgets[shard] = {
            app: engine.budget_bytes for app, engine in engines.items()
        }
        moved = 0.0
        rebalancer = self.cluster.rebalancer
        if rebalancer is not None:
            # Drain the dead shard to the floor and hand its headroom to
            # the survivors, proportional to their current budgets: the
            # cluster total is conserved and no shard drops below the
            # floor. Without a rebalancer budgets stay frozen, exactly
            # like the static split.
            floor = rebalancer.floor_bytes
            moved = max(
                0.0, sum(self._saved_budgets[shard].values()) - floor
            )
            if moved > 0:
                self._scale_shard(shard, floor)
                recipients = [
                    s for s, flag in enumerate(self.live) if flag
                ]
                weights = [self._shard_budget(s) for s in recipients]
                total_weight = sum(weights)
                for recipient, weight in zip(recipients, weights):
                    share = (
                        moved * weight / total_weight
                        if total_weight > 0
                        else moved / len(recipients)
                    )
                    self._scale_shard(recipient, weight + share)
        record = {
            "shard": shard,
            "crash_at": event.at,
            "pre_fault_hit_rate": self._window_rate,
            "restart_at": None,
            "downtime_requests": None,
            "recovered_at": None,
            "time_to_recover": None,
            "miss_cost": 0.0,
            "budget_moved_bytes": moved,
        }
        self.records.append(record)
        self._down[shard] = record

    def _restart(self, event: FaultEvent) -> None:
        shard = event.shard
        self.live[shard] = True
        self.live_version += 1
        record = self._down.pop(shard)
        record["restart_at"] = event.at
        record["downtime_requests"] = event.at - record["crash_at"]
        saved = self._saved_budgets.pop(shard)
        rebalancer = self.cluster.rebalancer
        moved = record["budget_moved_bytes"]
        if rebalancer is not None and moved > 0:
            # Reclaim what the crash handed out, proportional to each
            # survivor's headroom above the floor. Every live shard
            # holds at least the floor throughout, so the summed
            # headroom always covers ``moved``; the per-donor clamp
            # only guards float drift.
            floor = rebalancer.floor_bytes
            donors = [
                s
                for s, flag in enumerate(self.live)
                if flag and s != shard
            ]
            budgets = {s: self._shard_budget(s) for s in donors}
            headrooms = {
                s: max(0.0, budgets[s] - floor) for s in donors
            }
            total_headroom = sum(headrooms.values())
            if total_headroom > 0:
                for donor in donors:
                    take = min(
                        moved * headrooms[donor] / total_headroom,
                        headrooms[donor],
                    )
                    if take > 0:
                        self._scale_shard(donor, budgets[donor] - take)
        # Cold restart: factory-fresh engines at the pre-crash budgets
        # (equal to the current ones when budgets are frozen), through
        # the cluster's restart seam so a parallel replay's owning
        # worker rebuilds the same engines.
        self.cluster.restart_shard(shard, saved)

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """The cluster report's ``faults`` section (JSON-safe)."""
        crashes = []
        for record in self.records:
            payload = dict(record)
            if payload["downtime_requests"] is None:
                payload["downtime_requests"] = (
                    self._total - payload["crash_at"]
                )
            crashes.append(payload)
        return {
            "policy": self.policy,
            "recovery_epsilon": self.schedule.recovery_epsilon,
            "sample_requests": self.sample_step,
            "events": [event.to_dict() for event in self.schedule.events],
            "fault_evictions": self.fault_evictions,
            "dead_requests": sum(
                server.stats.total.dead_requests
                for server in self.cluster.servers
            ),
            "crashes": crashes,
            "timeline": self.timeline.to_dict(),
        }
