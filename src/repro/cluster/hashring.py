"""Consistent-hash key routing across cache-server shards.

A :class:`HashRing` places ``virtual_nodes`` tokens per shard on a
64-bit ring (tokens come from :func:`repro.common.hashing.stable_hash_u64`,
so placement is deterministic across processes and independent of
``PYTHONHASHSEED``); a key is owned by the shard whose token follows the
key's hash clockwise. The classic consistent-hashing property follows:
growing an ``N``-shard ring to ``N+1`` shards leaves every existing
shard's tokens in place, so only the keys captured by the new shard's
tokens -- ``~1/(N+1)`` of the key space -- change owners.

Replica sets (:meth:`HashRing.shards_for`) are the next *distinct*
shards clockwise of the key, the standard successor-list placement.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import List, Sequence, Tuple

from repro.common.errors import ConfigurationError
from repro.common.hashing import stable_hash_u64


class HashRing:
    """A consistent-hash ring over ``shards`` cache servers.

    Args:
        shards: Number of shards (>= 1).
        seed: Salt folded into every token and key hash, so two rings
            with different seeds partition the key space independently.
        virtual_nodes: Tokens per shard; more tokens smooth the
            per-shard share of the key space (64 keeps the max/mean
            spread within a few percent).
    """

    def __init__(
        self, shards: int, seed: int = 0, virtual_nodes: int = 64
    ) -> None:
        if shards < 1:
            raise ConfigurationError(f"need at least one shard, got {shards}")
        if virtual_nodes < 1:
            raise ConfigurationError(
                f"virtual_nodes must be >= 1, got {virtual_nodes}"
            )
        self.shards = shards
        self.seed = seed
        self.virtual_nodes = virtual_nodes
        points = []
        for shard in range(shards):
            for vnode in range(virtual_nodes):
                token = stable_hash_u64(
                    f"shard{shard:06d}:vnode{vnode:06d}", salt=seed
                )
                points.append((token, shard))
        points.sort()
        self._tokens = [token for token, _ in points]
        self._owners = [shard for _, shard in points]

    # ------------------------------------------------------------------

    def position_for(self, key: object) -> int:
        """The ring position ``key``'s hash bisects to.

        An index into the rows of :meth:`token_table` /
        :meth:`successor_table` / :meth:`live_successor_table`, so
        callers that route many keys can hash each key once and reuse
        the precomputed tables across live sets.
        """
        token = stable_hash_u64(key, salt=self.seed)
        return bisect_right(self._tokens, token) % len(self._tokens)

    def shard_for(self, key: object) -> int:
        """The shard owning ``key`` (its primary)."""
        return self._owners[self.position_for(key)]

    def shards_for(self, key: object, count: int) -> List[int]:
        """The first ``count`` distinct shards clockwise of ``key``.

        Index 0 is the primary (== :meth:`shard_for`); ``count`` is
        clamped to the shard total.
        """
        if count < 1:
            raise ConfigurationError(f"count must be >= 1, got {count}")
        count = min(count, self.shards)
        token = stable_hash_u64(key, salt=self.seed)
        start = bisect_right(self._tokens, token) % len(self._tokens)
        return self._distinct_owners_from(start, count)

    def _distinct_owners_from(self, start: int, count: int) -> List[int]:
        """The first ``count`` distinct owners walking clockwise from
        ring position ``start`` -- the one replica-placement walk behind
        both the per-key oracle (:meth:`shards_for`) and the bulk table
        (:meth:`successor_table`), so the two can never diverge."""
        total = len(self._tokens)
        replicas: List[int] = []
        for step in range(total):
            owner = self._owners[(start + step) % total]
            if owner not in replicas:
                replicas.append(owner)
                if len(replicas) == count:
                    break
        return replicas

    def shards_for_live(
        self, key: object, count: int, live: Sequence[bool]
    ) -> List[int]:
        """The first ``count`` distinct *live* shards clockwise of ``key``.

        The failover walk: a key whose successors are crashed simply
        keeps walking the ring, so its requests land on the next live
        shard(s) -- and when the dead shard restarts, the same walk
        routes the key straight back. ``count`` is clamped to the number
        of live shards; with every shard live this equals
        :meth:`shards_for`.
        """
        if count < 1:
            raise ConfigurationError(f"count must be >= 1, got {count}")
        alive = sum(1 for flag in live if flag)
        if alive == 0:
            raise ConfigurationError(
                "no live shards on the ring; a fault schedule must never "
                "crash every shard at once"
            )
        count = min(count, alive)
        token = stable_hash_u64(key, salt=self.seed)
        start = bisect_right(self._tokens, token) % len(self._tokens)
        total = len(self._tokens)
        replicas: List[int] = []
        for step in range(total):
            owner = self._owners[(start + step) % total]
            if live[owner] and owner not in replicas:
                replicas.append(owner)
                if len(replicas) == count:
                    break
        return replicas

    def live_successor_table(
        self, count: int, live: Sequence[bool]
    ) -> List[List[int]]:
        """Per ring position, the first ``count`` distinct *live* owners
        clockwise -- :meth:`successor_table` with crashed shards masked
        out, the bulk-routing backbone of the failover replay.

        Derived by filtering the full successor order (every shard owns
        at least one token, so the full distinct-owner walk always lists
        all shards): dropping dead owners from the full order is exactly
        what the clockwise walk skipping dead tokens would produce.
        ``count`` is clamped to the live-shard total.
        """
        if count < 1:
            raise ConfigurationError(f"count must be >= 1, got {count}")
        if len(live) != self.shards:
            raise ConfigurationError(
                f"live mask covers {len(live)} shard(s); ring has "
                f"{self.shards}"
            )
        alive = sum(1 for flag in live if flag)
        if alive == 0:
            raise ConfigurationError(
                "no live shards on the ring; a fault schedule must never "
                "crash every shard at once"
            )
        count = min(count, alive)
        table = []
        for full in self.successor_table(self.shards):
            live_order = [owner for owner in full if live[owner]]
            table.append(live_order[:count])
        return table

    def token_table(self) -> Tuple[List[int], List[int]]:
        """The ring's sorted ``(tokens, owners)`` columns.

        The backing columns for bulk routing
        (:mod:`repro.cluster.routing`): a key whose hash bisects to
        position ``p`` (``bisect_right`` then wrap to 0) is owned by
        ``owners[p]``. Treat both lists as read-only.
        """
        return self._tokens, self._owners

    def successor_table(self, count: int) -> List[List[int]]:
        """Per ring position, the first ``count`` distinct owners
        clockwise -- the replica set of every key bisecting there.

        ``successor_table(c)[p]`` equals :meth:`shards_for` for any key
        hashing to position ``p``; precomputing it once per ring turns
        the per-key clockwise walk into a table lookup.
        """
        if count < 1:
            raise ConfigurationError(f"count must be >= 1, got {count}")
        count = min(count, self.shards)
        return [
            self._distinct_owners_from(start, count)
            for start in range(len(self._tokens))
        ]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"HashRing(shards={self.shards}, seed={self.seed}, "
            f"virtual_nodes={self.virtual_nodes})"
        )
