"""Stack-distance profiling and hit-rate curves.

The cache allocation problem (paper Eq. 1) is defined over hit-rate curves
``h_i(m_i)``. This package provides:

* :mod:`repro.profiling.stack_distance` -- exact Mattson stack distances,
  both the O(N^2) reference and an O(N log N) Fenwick-tree profiler.
* :mod:`repro.profiling.mimir` -- the Mimir bucket estimator (O(N/B)) that
  Dynacache uses; deliberately coarse so the solver inherits the paper's
  estimation error on large/cliffy curves (section 2.1).
* :mod:`repro.profiling.hrc` -- :class:`HitRateCurve`: construction from
  distances, interpolation, gradients, concave hulls and cliff detection
  (Figures 1, 3 and 4).
"""

from repro.profiling.stack_distance import (
    StackDistanceProfiler,
    naive_stack_distances,
)
from repro.profiling.mimir import MimirProfiler
from repro.profiling.hrc import HitRateCurve

__all__ = [
    "StackDistanceProfiler",
    "naive_stack_distances",
    "MimirProfiler",
    "HitRateCurve",
]
