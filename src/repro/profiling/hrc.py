"""Hit-rate curves: construction, interpolation, hulls and cliffs.

A :class:`HitRateCurve` maps a queue size (in items or bytes) to the hit
rate an LRU queue of that size would achieve on the profiled stream. It is
built from a stack-distance multiset via the Mattson inclusion property
(hit at capacity C iff distance <= C) and supports everything the
allocation algorithms need:

* point evaluation and gradients (hill climbing theory, section 3.4);
* the concave hull (Talus / cliff scaling, section 4.2, Figure 4);
* convexity ("performance cliff") detection (section 3.5, Figure 3).
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.common.errors import ConfigurationError
from repro.common.mathutils import concave_hull as _concave_hull


class HitRateCurve:
    """A piecewise-linear hit-rate curve ``h(size)``.

    Attributes:
        sizes: Strictly-increasing sample sizes (first is 0).
        hit_rates: Hit rate in [0, 1] at each size (non-decreasing).
        total_requests: Number of accesses the curve was estimated from
            (used to convert rates to absolute hit counts).
        unit: Label for the size axis ("items" or "bytes").
    """

    def __init__(
        self,
        sizes: Sequence[float],
        hit_rates: Sequence[float],
        total_requests: int,
        unit: str = "items",
    ) -> None:
        if len(sizes) != len(hit_rates) or len(sizes) < 2:
            raise ConfigurationError(
                "curve needs >= 2 aligned (size, hit_rate) samples"
            )
        self.sizes = np.asarray(sizes, dtype=float)
        self.hit_rates = np.asarray(hit_rates, dtype=float)
        if np.any(np.diff(self.sizes) <= 0):
            raise ConfigurationError("sizes must be strictly increasing")
        if self.sizes[0] != 0.0:
            raise ConfigurationError("curve must start at size 0")
        if np.any(self.hit_rates < -1e-9) or np.any(self.hit_rates > 1 + 1e-9):
            raise ConfigurationError("hit rates must lie in [0, 1]")
        self.total_requests = int(total_requests)
        self.unit = unit

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def from_stack_distances(
        cls,
        distances: Iterable[Optional[float]],
        max_size: Optional[int] = None,
        unit: str = "items",
    ) -> "HitRateCurve":
        """Build a curve from a stream of stack distances.

        ``None`` entries (cold/compulsory accesses) count toward the total
        but never toward hits, which caps the curve below 1 exactly as the
        paper's curves plateau (e.g. Figure 3 plateaus near 0.78).
        ``max_size`` truncates the size axis; distances beyond it still
        count as misses at every plotted size.
        """
        finite: List[float] = []
        total = 0
        for distance in distances:
            total += 1
            if distance is not None:
                finite.append(float(distance))
        if total == 0:
            raise ConfigurationError("cannot build a curve from zero accesses")
        if not finite:
            limit = float(max_size or 1)
            return cls([0.0, limit], [0.0, 0.0], total, unit=unit)
        finite_arr = np.sort(np.asarray(finite))
        limit = float(max_size) if max_size else float(finite_arr[-1])
        # Sample at every distinct distance <= limit: between distinct
        # distances the step function is flat, so this is lossless.
        distinct = np.unique(finite_arr[finite_arr <= limit])
        sizes = np.concatenate(([0.0], distinct))
        if sizes[-1] < limit:
            sizes = np.concatenate((sizes, [limit]))
        # hits(c) = #{d <= c}
        counts = np.searchsorted(finite_arr, sizes, side="right")
        hit_rates = counts / float(total)
        return cls(sizes, hit_rates, total, unit=unit)

    @classmethod
    def from_points(
        cls,
        points: Sequence[Tuple[float, float]],
        total_requests: int,
        unit: str = "items",
    ) -> "HitRateCurve":
        """Build a curve from explicit (size, hit rate) points (synthetic
        curves in tests and theory checks)."""
        ordered = sorted(points)
        sizes = [p[0] for p in ordered]
        rates = [p[1] for p in ordered]
        if not sizes or sizes[0] != 0.0:
            sizes = [0.0] + sizes
            rates = [rates[0] if rates else 0.0] + rates
        return cls(sizes, rates, total_requests, unit=unit)

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------

    @property
    def max_size(self) -> float:
        return float(self.sizes[-1])

    def hit_rate(self, size: float) -> float:
        """Hit rate at ``size`` (linear interpolation, clamped)."""
        return float(
            np.interp(size, self.sizes, self.hit_rates)
        )

    def hits(self, size: float) -> float:
        """Absolute expected hits at ``size``."""
        return self.hit_rate(size) * self.total_requests

    def gradient(self, size: float, window: Optional[float] = None) -> float:
        """Forward-difference gradient of the hit rate at ``size``.

        ``window`` defaults to 1% of the size axis -- the finite shadow
        queue the real system would use.
        """
        if window is None:
            window = max(self.max_size * 0.01, 1.0)
        lo = self.hit_rate(size)
        hi = self.hit_rate(size + window)
        return (hi - lo) / window

    # ------------------------------------------------------------------
    # Hulls and cliffs
    # ------------------------------------------------------------------

    def hull_points(self) -> List[Tuple[float, float]]:
        """Vertices of the least concave majorant."""
        return _concave_hull(list(zip(self.sizes, self.hit_rates)))

    def concave_hull(self) -> "HitRateCurve":
        """The concave hull as a new curve (what Talus can achieve)."""
        points = self.hull_points()
        return HitRateCurve.from_points(
            points, self.total_requests, unit=self.unit
        )

    def is_concave(self, tolerance: float = 1e-6) -> bool:
        """True if the curve deviates from its hull by < ``tolerance``
        everywhere (i.e. it has no performance cliffs)."""
        hull = self.concave_hull()
        deviation = max(
            hull.hit_rate(s) - r for s, r in zip(self.sizes, self.hit_rates)
        )
        return deviation < tolerance

    def cliffs(self, tolerance: float = 0.01) -> List[Tuple[float, float]]:
        """Performance-cliff regions as ``(start_size, end_size)`` pairs.

        A cliff is a maximal size interval where the curve sits more than
        ``tolerance`` below its concave hull -- exactly the convex regions
        hill climbing gets stuck in (section 3.5). The returned endpoints
        are the hull anchors bracketing the region, i.e. the two sizes the
        cliff-scaling pointers should converge to.
        """
        hull = self.hull_points()
        if len(hull) < 2:
            return []
        cliffs: List[Tuple[float, float]] = []
        for (x0, y0), (x1, y1) in zip(hull, hull[1:]):
            mask = (self.sizes > x0) & (self.sizes < x1)
            if not np.any(mask):
                continue
            xs = self.sizes[mask]
            ys = self.hit_rates[mask]
            chord = y0 + (xs - x0) / (x1 - x0) * (y1 - y0)
            if np.any(chord - ys > tolerance):
                cliffs.append((float(x0), float(x1)))
        return cliffs

    def hull_anchors_for(
        self, size: float, tolerance: float = 0.01
    ) -> Optional[Tuple[float, float]]:
        """If ``size`` sits inside a cliff, return that cliff's hull
        anchors (the paper's example: size 8000 on Application 19 slab 0
        returns roughly (2000, 13500)); otherwise None."""
        for start, end in self.cliffs(tolerance):
            if start <= size <= end:
                return (start, end)
        return None

    # ------------------------------------------------------------------

    def scale_sizes(self, factor: float, unit: Optional[str] = None) -> "HitRateCurve":
        """Return the same curve with the size axis multiplied by
        ``factor`` -- e.g. items -> bytes via the slab chunk size."""
        if factor <= 0:
            raise ConfigurationError("scale factor must be positive")
        return HitRateCurve(
            self.sizes * factor,
            self.hit_rates,
            self.total_requests,
            unit=unit or self.unit,
        )

    def resample(self, num_points: int) -> "HitRateCurve":
        """Downsample to ``num_points`` evenly spaced sizes (plotting)."""
        if num_points < 2:
            raise ConfigurationError("need at least 2 points")
        sizes = np.linspace(0.0, self.max_size, num_points)
        rates = np.interp(sizes, self.sizes, self.hit_rates)
        return HitRateCurve(
            sizes, rates, self.total_requests, unit=self.unit
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"HitRateCurve(points={len(self.sizes)}, "
            f"max_size={self.max_size:.0f}{self.unit}, "
            f"final_hit_rate={self.hit_rates[-1]:.3f})"
        )
