"""Mimir-style bucketed stack-distance estimation.

Dynacache (and therefore the solver baseline in this reproduction) does not
compute exact stack distances -- "we estimated the stack distances using
the bucket algorithm presented in Mimir. This technique is O(N/B) ... not
accurate when estimating stack distance curves with tens of thousands of
items or more" (paper section 2.1). This module implements that estimator
so the solver inherits exactly that inaccuracy.

The scheme (Mimir's ROUNDER): tracked keys live in ``B`` aging buckets,
newest first. A re-accessed key found in bucket ``i`` is estimated to have
stack distance ``(items in buckets newer than i) + half the items in
bucket i`` -- the uniform-within-bucket assumption -- and then moves to the
newest bucket. When the newest bucket grows past the average bucket
population the window rotates: a fresh bucket opens and the two oldest
buckets merge, which is where resolution (and accuracy on big curves) is
lost.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Iterable, List, Optional, Set

from repro.common.errors import ConfigurationError

#: Default bucket count; the paper used 100 buckets.
DEFAULT_BUCKETS = 100


class MimirProfiler:
    """Bucketed stack-distance estimator (O(N/B) resolution).

    Args:
        num_buckets: Number of aging buckets ``B``.
        min_rotation: Newest-bucket population below which the window
            never rotates (avoids degenerate rotation on tiny streams).
        max_tracked: Optional bound on tracked keys; the oldest bucket is
            trimmed beyond it (keys forgotten this way look cold on their
            next access, exactly like Mimir running inside a bounded
            cache).
    """

    def __init__(
        self,
        num_buckets: int = DEFAULT_BUCKETS,
        min_rotation: int = 8,
        max_tracked: Optional[int] = None,
    ) -> None:
        if num_buckets < 2:
            raise ConfigurationError(
                f"need at least 2 buckets, got {num_buckets}"
            )
        if max_tracked is not None and max_tracked < 1:
            raise ConfigurationError("max_tracked must be positive")
        self.num_buckets = num_buckets
        self.min_rotation = min_rotation
        self.max_tracked = max_tracked
        # buckets[0] is the newest. Each bucket is a set of keys.
        self._buckets: Deque[Set[object]] = deque([set()])
        # key -> round id; the newest bucket's round id is _head_round.
        self._round_of: Dict[object, int] = {}
        self._head_round = 0
        self.distances: List[Optional[float]] = []

    # ------------------------------------------------------------------

    @property
    def tracked(self) -> int:
        return len(self._round_of)

    def _bucket_index(self, round_id: int) -> int:
        """Map a key's round id to its current bucket index (0=newest).

        Rounds older than the window live in the oldest bucket (they were
        merged into it during rotation).
        """
        offset = self._head_round - round_id
        return min(offset, len(self._buckets) - 1)

    def record(self, key: object) -> Optional[float]:
        """Process one access; returns the *estimated* stack distance
        (float, bucket-resolution) or None for a cold access."""
        round_id = self._round_of.get(key)
        if round_id is None:
            estimate: Optional[float] = None
        else:
            index = self._bucket_index(round_id)
            newer = sum(len(self._buckets[j]) for j in range(index))
            estimate = newer + len(self._buckets[index]) / 2.0
            self._buckets[index].discard(key)
        self._buckets[0].add(key)
        self._round_of[key] = self._head_round
        self.distances.append(estimate)
        self._maybe_rotate()
        self._maybe_trim()
        return estimate

    def record_all(self, keys: Iterable[object]) -> List[Optional[float]]:
        return [self.record(key) for key in keys]

    # ------------------------------------------------------------------

    def _maybe_rotate(self) -> None:
        target = max(self.min_rotation, self.tracked // self.num_buckets)
        if len(self._buckets[0]) < target:
            return
        self._buckets.appendleft(set())
        self._head_round += 1
        if len(self._buckets) > self.num_buckets:
            # Merge the two oldest buckets; their keys' round ids already
            # map onto the last index via _bucket_index's clamp.
            oldest = self._buckets.pop()
            self._buckets[-1] |= oldest

    def _maybe_trim(self) -> None:
        if self.max_tracked is None:
            return
        while self.tracked > self.max_tracked:
            for bucket in reversed(self._buckets):
                if bucket:
                    key = next(iter(bucket))
                    bucket.discard(key)
                    del self._round_of[key]
                    break
            else:  # pragma: no cover - cannot happen while tracked > 0
                return
