"""Exact stack-distance computation (Mattson et al., 1970).

The stack distance of a request is the rank of its key in an LRU stack at
access time, counted from 1 at the top; a key never seen before has
infinite distance (represented as ``None``). The fundamental inclusion
property -- an LRU cache of capacity C (in items) hits a request iff its
stack distance is <= C -- is what turns a distance histogram into a
hit-rate curve, and it is property-tested against the simulator.

Two implementations are provided:

* :func:`naive_stack_distances` -- the O(N^2) definition, used as the test
  oracle.
* :class:`StackDistanceProfiler` -- an O(N log N) online profiler using a
  Fenwick (binary indexed) tree over access timestamps: the distance of a
  re-access is one plus the number of *distinct* keys touched since the
  previous access, which equals the number of live timestamp markers after
  that previous access.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional


def naive_stack_distances(keys: Iterable[object]) -> List[Optional[int]]:
    """Reference implementation straight from the definition.

    Returns one distance per access; ``None`` marks a cold (infinite
    distance) access. Quadratic -- use only in tests.
    """
    stack: List[object] = []  # index 0 = top of stack
    distances: List[Optional[int]] = []
    for key in keys:
        try:
            rank = stack.index(key)  # 0-based depth
        except ValueError:
            distances.append(None)
            stack.insert(0, key)
        else:
            distances.append(rank + 1)
            stack.pop(rank)
            stack.insert(0, key)
    return distances


class _Fenwick:
    """A grow-only Fenwick tree of weighted markers over access indices."""

    __slots__ = ("_tree", "_size", "_capacity")

    def __init__(self, initial_capacity: int = 1024) -> None:
        self._capacity = max(1, initial_capacity)
        self._tree = [0.0] * (self._capacity + 1)
        self._size = 0

    def append(self, weight: float) -> int:
        """Append a new position holding ``weight``; return its index."""
        index = self._size
        self._size += 1
        if self._size > self._capacity:
            self._grow()
        self._add(index, weight)
        return index

    def clear_position(self, index: int, weight: float) -> None:
        self._add(index, -weight)

    def _grow(self) -> None:
        # Double capacity and rebuild in O(n): peel the tree down to point
        # values with one backward pass (each node donates its partial sum
        # back to its parent range), then rebuild with the mirrored
        # forward pass over the doubled tree.
        old_capacity = self._capacity
        values = self._tree[1 : old_capacity + 1]
        for i in range(old_capacity, 0, -1):
            parent = i + (i & -i)
            if parent <= old_capacity:
                values[parent - 1] -= values[i - 1]
        self._capacity *= 2
        tree = [0.0] * (self._capacity + 1)
        tree[1 : old_capacity + 1] = values
        for i in range(1, self._capacity + 1):
            parent = i + (i & -i)
            if parent <= self._capacity:
                tree[parent] += tree[i]
        self._tree = tree

    def _add(self, index: int, delta: float) -> None:
        i = index + 1
        while i <= self._capacity:
            self._tree[i] += delta
            i += i & (-i)

    def prefix(self, index: int) -> float:
        """Sum of marker weights in positions [0, index]."""
        if index < 0:
            return 0.0
        total = 0.0
        i = min(index + 1, self._capacity)
        while i > 0:
            total += self._tree[i]
            i -= i & (-i)
        return total

    @property
    def total(self) -> float:
        return self.prefix(self._size - 1)


class StackDistanceProfiler:
    """Online exact stack-distance profiler, O(log N) per access.

    Usage::

        profiler = StackDistanceProfiler()
        for key in keys:
            d = profiler.record(key)   # None on first access

    With the default unit weights the returned distance is the classic
    1-based LRU stack rank. Passing per-access ``weight`` (item bytes)
    yields *byte* stack distances: the total bytes of distinct keys
    touched since the previous access, including this item's own bytes --
    a byte-capacity LRU of capacity C hits iff this distance is <= C
    (assuming stable item sizes). Byte distances are what the
    cross-application allocator profiles (paper section 3.3).

    :attr:`distances` accumulates every returned value, in order, so a
    finished profiler can be fed directly to
    :meth:`repro.profiling.hrc.HitRateCurve.from_stack_distances`.
    """

    def __init__(self) -> None:
        self._fenwick = _Fenwick()
        # key -> (position, weight at that position)
        self._last: Dict[object, tuple] = {}
        self.distances: List[Optional[float]] = []

    def record(self, key: object, weight: float = 1.0) -> Optional[float]:
        """Process one access; return its stack distance (None = cold)."""
        previous = self._last.get(key)
        if previous is None:
            distance: Optional[float] = None
        else:
            prev_position, prev_weight = previous
            # Live markers strictly after the previous access are the
            # distinct keys touched since; adding this item's own weight
            # converts depth to an inclusive rank (1-based in unit mode).
            newer = self._fenwick.total - self._fenwick.prefix(prev_position)
            distance = newer + weight
            self._fenwick.clear_position(prev_position, prev_weight)
        self._last[key] = (self._fenwick.append(weight), weight)
        self.distances.append(distance)
        return distance

    def record_all(self, keys: Iterable[object]) -> List[Optional[float]]:
        """Convenience: record a whole stream, returning its distances."""
        return [self.record(key) for key in keys]

    @property
    def unique_keys(self) -> int:
        return len(self._last)
