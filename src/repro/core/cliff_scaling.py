"""Algorithms 2 and 3: scaling performance cliffs with shadow queues.

Each logical queue is split into a *left* and *right* physical queue;
requests are hash-partitioned between them by the request ratio (Talus
partitioning, section 4.2). Two pointers track the simulated sizes the
partitions should anchor to:

* ``right_pointer`` searches for the **top** of the cliff. Hits in the
  right partition's appended shadow probe ("right of the pointer") push it
  right; hits in the right partition's tail probe ("left of the pointer")
  pull it back, but never below the operating point.
* ``left_pointer`` searches for the **bottom** of the cliff, moving the
  opposite way: shadow-probe hits push it left, tail-probe hits pull it
  right, never above the operating point.

On a concave curve hit density *decreases* with queue depth, so tail-probe
hits dominate shadow-probe hits, both pointers stay pinned to the
operating point, the ratio stays 1/2 and the two half-size queues behave
exactly like the original single queue (section 4.2: "Two evenly split
queues behave exactly the same as one longer queue"). Inside a convex
region the balance flips and the pointers walk to the hull anchors.

The physical layout mirrors the paper's implementation (section 5.1,
Figure 5): per partition the chain is

``[ main | tail probe (128 items) | cliff shadow (128 items) | hill shadow ]``

where hits in *tail probe* are physical hits that double as
"left-of-pointer" events, the *cliff shadow* gives "right-of-pointer"
events, and the *hill shadow* feeds Algorithm 1. The 1 MB hill shadow is
split across the two partitions in proportion to their sizes, and physical
repartitioning is applied lazily on the next miss to avoid thrashing
(section 5.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import NamedTuple, Optional, Tuple

from repro.allocation.talus import compute_ratio
from repro.common.constants import (
    CLIFF_MIN_QUEUE_ITEMS,
    CLIFF_PROBE_ITEMS,
    DEFAULT_CREDIT_BYTES,
    HILL_CLIMB_SHADOW_BYTES,
)
from repro.common.errors import ConfigurationError
from repro.common.hashing import unit_interval_hash
from repro.cache.keyqueue import KeyQueue, QueueChain

# Segment indices within a partition chain.
SEG_MAIN = 0
SEG_TAIL = 1
SEG_CLIFF = 2
SEG_HILL = 3

LEFT = "L"
RIGHT = "R"


@dataclass(frozen=True)
class CliffConfig:
    """Tunables of the combined per-queue structure.

    Defaults are the paper's: 128-item probes, 1 MB hill shadow, 4 KB
    credits, cliff scaling gated to queues over 1000 items.
    """

    chunk_size: int
    probe_items: int = CLIFF_PROBE_ITEMS
    hill_shadow_bytes: float = HILL_CLIMB_SHADOW_BYTES
    credit_bytes: float = DEFAULT_CREDIT_BYTES
    min_queue_items_for_cliff: int = CLIFF_MIN_QUEUE_ITEMS
    salt: int = 0
    resize_on_miss: bool = True
    #: Misses tolerated without any pointer event before the queue
    #: resets its pointers and merges. Probe hits move pointers, but a
    #: pointer stranded in a zero-density region (e.g. beyond a cliff
    #: that demand has moved away from) would otherwise stay frozen
    #: forever, keeping a stale split engaged. In an active ramp events
    #: arrive constantly and the counter never trips. (Engineering
    #: addition to the paper's pseudocode.)
    stale_miss_limit: int = 4000
    #: Multiples of the probe width the right pointer must escape before
    #: the queue splits; diffusion noise stays below this, a real convex
    #: ramp walks past it.
    split_threshold_probes: float = 4.0
    #: Requests after a split at which the split is judged against the
    #: pre-split hit-rate EMA; a regression beyond the margin reverts the
    #: split and backs off exponentially. Splitting can only win when the
    #: operating point sits in a genuinely convex region -- this guard
    #: bounds the damage of a false engage near a cliff edge, where
    #: anchor noise can otherwise cost more than the (near-zero)
    #: theoretical gain. (Engineering addition to the paper.)
    split_eval_requests: int = 6000
    split_regression_margin: float = 0.01
    split_backoff_requests: int = 30000

    def __post_init__(self) -> None:
        if self.chunk_size <= 0:
            raise ConfigurationError("chunk_size must be positive")
        if self.probe_items <= 0:
            raise ConfigurationError("probe_items must be positive")
        if self.credit_bytes <= 0:
            raise ConfigurationError("credit_bytes must be positive")

    @property
    def probe_bytes(self) -> float:
        return float(self.probe_items * self.chunk_size)


class QueueAccess(NamedTuple):
    """Result of :meth:`CliffhangerQueue.access`."""

    hit: bool  # served from physical memory (main or tail probe)
    hill_hit: bool  # landed in the hill-climbing shadow (Algorithm 1 event)
    segment: Optional[int]  # SEG_* index where the key was found, or None
    side: Optional[str]  # LEFT/RIGHT partition where the key was found


class _Partition:
    """One physical partition with its probe and shadow segments."""

    def __init__(
        self,
        name: str,
        config: CliffConfig,
        physical_bytes: float,
        hill_bytes: float,
    ) -> None:
        self.config = config
        probe = config.probe_bytes
        tail_cap = min(probe, physical_bytes)
        self.main = KeyQueue(physical_bytes - tail_cap, name=f"{name}/main")
        self.tail = KeyQueue(tail_cap, name=f"{name}/tail")
        self.cliff_shadow = KeyQueue(probe, name=f"{name}/cliff")
        self.hill_shadow = KeyQueue(hill_bytes, name=f"{name}/hill")
        self.chain = QueueChain(
            [self.main, self.tail, self.cliff_shadow, self.hill_shadow],
            physical_segments=2,
        )

    @property
    def physical_capacity(self) -> float:
        return self.main.capacity + self.tail.capacity

    def set_physical(self, physical_bytes: float) -> None:
        """Resize the physical region, keeping the tail probe at its
        configured width (shrinking it only when the whole partition is
        smaller than one probe)."""
        tail_cap = min(self.config.probe_bytes, physical_bytes)
        self.chain.resize_segment(SEG_TAIL, tail_cap)
        self.chain.resize_segment(SEG_MAIN, physical_bytes - tail_cap)

    def set_hill(self, hill_bytes: float) -> None:
        self.chain.resize_segment(SEG_HILL, hill_bytes)


class CliffhangerQueue:
    """One logical queue under the combined Cliffhanger structure.

    Always partitioned: with cliff scaling inactive (disabled, or queue
    under the 1000-item threshold) the pointers stay pinned at the
    operating point, giving the even split that is behaviorally identical
    to a single queue. Capacities are bytes; every item weighs one chunk.
    """

    def __init__(
        self,
        name: str,
        capacity_bytes: float,
        config: CliffConfig,
        enable_cliff_scaling: bool = True,
    ) -> None:
        if capacity_bytes < 0:
            raise ConfigurationError("capacity must be >= 0")
        self.name = name
        self.config = config
        self.enable_cliff_scaling = enable_cliff_scaling
        self._size = float(capacity_bytes)
        # Algorithm 2, INIT: ratio = 1/2, both pointers at queue.size.
        self.left_pointer = self._size
        self.right_pointer = self._size
        self.ratio = 0.5
        half = self._size / 2.0
        hill_half = config.hill_shadow_bytes / 2.0
        self.left = _Partition(f"{name}/L", config, half, hill_half)
        self.right = _Partition(f"{name}/R", config, half, hill_half)
        self._pending_resize = False
        # Lazy splitting: the queue runs unpartitioned until the right
        # pointer has escaped far enough to evidence a cliff (see
        # _pointer_event); it merges back with hysteresis.
        self._split = False
        self._stale_misses = 0
        # Split self-evaluation state (see CliffConfig.split_eval_requests).
        self._requests_seen = 0
        self._hit_ema_value = 0.0
        self._hit_ema_alpha = 1.0 / 1500.0
        self._split_baseline: Optional[float] = None
        self._split_eval_due = 0
        self._split_backoff_until = 0
        self._split_backoff = config.split_backoff_requests
        # Diagnostics for the convergence experiments (Figure 9).
        self.pointer_updates = 0
        self.repartitions = 0
        self.splits = 0
        self.merges = 0
        # Route everything to the right partition until a split engages.
        self._apply_partition_targets()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def capacity_bytes(self) -> float:
        return self._size

    @property
    def used_bytes(self) -> float:
        return self.left.chain.physical_used + self.right.chain.physical_used

    def physical_items(self) -> int:
        return self.left.chain.physical_len() + self.right.chain.physical_len()

    @property
    def cliff_active(self) -> bool:
        return (
            self.enable_cliff_scaling
            and self._size
            >= self.config.min_queue_items_for_cliff * self.config.chunk_size
        )

    def partition_sizes(self) -> Tuple[float, float]:
        return (
            self.left.physical_capacity,
            self.right.physical_capacity,
        )

    def overhead_items(self) -> int:
        """Keys held only in shadow segments (memory-overhead audit)."""
        return (
            len(self.left.cliff_shadow)
            + len(self.left.hill_shadow)
            + len(self.right.cliff_shadow)
            + len(self.right.hill_shadow)
        )

    # ------------------------------------------------------------------
    # Request path
    # ------------------------------------------------------------------

    def _route(self, key: object) -> str:
        # Unsplit regimes (below the size gate, or no cliff evidence yet)
        # keep everything in the right partition: splitting a queue that
        # does not need it costs accuracy to hash-thinning noise, which
        # is why the paper only runs cliff scaling on large queues
        # (section 5.1). See _pointer_event for the split trigger.
        if not (self.cliff_active and self._split):
            return RIGHT
        return (
            LEFT
            if unit_interval_hash(key, self.config.salt) < self.ratio
            else RIGHT
        )

    def _partition(self, side: str) -> _Partition:
        return self.left if side == LEFT else self.right

    def access(self, key: object) -> QueueAccess:
        """GET path. Hits promote (migrating to the routed partition when
        the ratio re-routed the key since it was stored); shadow finds
        remove the key and report, leaving insertion to the caller."""
        self._requests_seen += 1
        routed = self._route(key)
        routed_partition = self._partition(routed)
        side: Optional[str] = routed
        segment = routed_partition.chain.segment_of(key)
        if segment is None:
            other = LEFT if routed == RIGHT else RIGHT
            segment = self._partition(other).chain.segment_of(key)
            side = other if segment is not None else None
        if segment is None:
            self._observe_hit(False)
            return QueueAccess(False, False, None, None)
        if segment in (SEG_MAIN, SEG_TAIL):
            # Physical hit: promote to the MRU position of the partition
            # the key *now* routes to.
            self._partition(side).chain.remove(key)
            routed_partition.chain.insert(key, self.config.chunk_size)
            if segment == SEG_TAIL:
                self._pointer_event(side, SEG_TAIL)
            self._observe_hit(True)
            return QueueAccess(True, False, segment, side)
        # Shadow find: drop the key; the caller re-inserts (cache fill).
        self._partition(side).chain.remove(key)
        if segment == SEG_CLIFF:
            self._pointer_event(side, SEG_CLIFF)
        self._observe_hit(False)
        return QueueAccess(False, segment == SEG_HILL, segment, side)

    def insert(self, key: object) -> int:
        """SET / fill-on-miss path. Applies any pending repartition first
        (section 5.1: resize only on a miss). Returns physical evictions.
        """
        self._decay_pointers()
        if self._pending_resize:
            self._apply_partition_targets()
        routed = self._partition(self._route(key))
        other = self.right if routed is self.left else self.left
        already_physical = routed.chain.is_physical(
            key
        ) or other.chain.is_physical(key)
        before = (
            self.left.chain.physical_len() + self.right.chain.physical_len()
        )
        other.chain.remove(key)
        routed.chain.insert(key, self.config.chunk_size)
        after = (
            self.left.chain.physical_len() + self.right.chain.physical_len()
        )
        added = 0 if already_physical else 1
        return max(0, before + added - after)

    def remove(self, key: object) -> bool:
        removed = self.left.chain.remove(key)
        return self.right.chain.remove(key) or removed

    # ------------------------------------------------------------------
    # Algorithm 2: pointer updates
    # ------------------------------------------------------------------

    def _pointer_event(self, side: str, segment: int) -> None:
        if not self.cliff_active:
            return
        credit = self.config.credit_bytes
        size = self._size
        if side == RIGHT:
            if segment == SEG_CLIFF:
                # Hit right of the right pointer: the cliff continues.
                # Clamped: a pointer more than 4x the queue away cannot
                # be simulated by a partition anyway, and letting it run
                # away would take arbitrarily long to walk back.
                ceiling = max(4.0 * size, size + 64.0 * self.config.probe_bytes)
                self.right_pointer = min(
                    ceiling, self.right_pointer + credit
                )
            elif self.right_pointer > size:
                # Hit left of the right pointer: pull back toward S.
                self.right_pointer = max(size, self.right_pointer - credit)
            else:
                return
        else:
            if segment == SEG_CLIFF:
                # Hit right of the left pointer: still convex; the left
                # anchor belongs further down the curve.
                floor = self.config.probe_bytes
                new_left = max(floor, self.left_pointer - credit)
                if new_left == self.left_pointer:
                    return
                self.left_pointer = new_left
            elif self.left_pointer < size:
                self.left_pointer = min(size, self.left_pointer + credit)
            else:
                return
        self.pointer_updates += 1
        self._stale_misses = 0
        self._update_split_state()
        self._recompute_ratio()

    def _observe_hit(self, hit: bool) -> None:
        """Update the hit-rate EMA and run any due split evaluation."""
        self._hit_ema_value += self._hit_ema_alpha * (
            (1.0 if hit else 0.0) - self._hit_ema_value
        )
        if (
            self._split
            and self._split_baseline is not None
            and self._requests_seen >= self._split_eval_due
        ):
            regressed = (
                self._hit_ema_value
                < self._split_baseline - self.config.split_regression_margin
            )
            if regressed:
                self._revert_split()
            else:
                # Keep monitoring against the pre-split baseline: the
                # damage of a mis-anchored split can build up slowly as
                # lazy repartitions apply.
                self._split_eval_due = (
                    self._requests_seen + self.config.split_eval_requests
                )

    def _revert_split(self) -> None:
        """Undo a split judged harmful and back off exponentially."""
        self._split = False
        self.merges += 1
        self.left_pointer = self._size
        self.right_pointer = self._size
        self._split_baseline = None
        self._split_backoff_until = self._requests_seen + self._split_backoff
        self._split_backoff = min(
            self._split_backoff * 2, 8 * self.config.split_backoff_requests
        )
        self.ratio = self._effective_ratio()
        self._pending_resize = True

    def _decay_pointers(self) -> None:
        """Reset a stale pointer search (see
        :attr:`CliffConfig.stale_miss_limit`); called once per miss."""
        if not self.cliff_active:
            return
        size = self._size
        if self.right_pointer == size and self.left_pointer == size:
            self._stale_misses = 0
            return
        self._stale_misses += 1
        if self._stale_misses < self.config.stale_miss_limit:
            return
        self._stale_misses = 0
        self.right_pointer = size
        self.left_pointer = size
        if self._split:
            self._split = False
            self.merges += 1
            self._split_baseline = None
            self._split_backoff_until = (
                self._requests_seen + self.config.split_backoff_requests
            )
        self.ratio = self._effective_ratio()
        self._pending_resize = True

    def _update_split_state(self) -> None:
        """Lazy splitting with hysteresis.

        Unsplit, the whole queue acts as the right partition, and its
        tail probe / cliff shadow drive the right pointer. On a concave
        curve tail hits dominate, so the pointer stays pinned near the
        operating point and the queue never splits -- plain LRU, no
        hash-thinning loss. Inside a convex region shadow hits dominate,
        the pointer escapes, and once it clears two probe widths the
        queue splits and the full two-pointer search (Algorithm 2)
        engages. If the pointer later collapses back within one probe
        width the partitions merge again. The split/merge hysteresis is
        an engineering refinement of the paper's always-split
        formulation; the engaged-state behaviour is Algorithms 2+3
        verbatim.
        """
        distance_right = self.right_pointer - self._size
        if not self._split:
            threshold = (
                self.config.split_threshold_probes * self.config.probe_bytes
            )
            if (
                distance_right >= threshold
                and self._requests_seen >= self._split_backoff_until
            ):
                self._split = True
                self.splits += 1
                self.left_pointer = self._size
                self._split_baseline = self._hit_ema_value
                self._split_eval_due = (
                    self._requests_seen + self.config.split_eval_requests
                )
        elif distance_right < self.config.probe_bytes:
            self._split = False
            self.merges += 1
            self.left_pointer = self._size
            # Any merge imposes the (non-doubling) backoff: a pointer
            # that collapsed back was diffusion noise, and re-splitting
            # immediately would churn capacity on concave workloads.
            self._split_baseline = None
            self._split_backoff_until = (
                self._requests_seen + self.config.split_backoff_requests
            )

    def _effective_ratio(self) -> float:
        """Algorithm 3's COMPUTERATIO over the current pointers (0.5
        while unsplit or while only one pointer has moved)."""
        if not (self.cliff_active and self._split):
            return 0.5
        return compute_ratio(
            self._size, self.left_pointer, self.right_pointer
        )

    def _recompute_ratio(self) -> None:
        self.ratio = self._effective_ratio()
        if self.config.resize_on_miss:
            self._pending_resize = True
        else:
            self._apply_partition_targets()

    def _partition_targets(self) -> Tuple[float, float]:
        """Algorithm 3, UPDATEPHYSICALQUEUES, normalized to the budget.

        ``left = leftPointer * ratio`` and ``right = rightPointer *
        (1 - ratio)`` sum exactly to the operating point whenever both
        pointers have left it (the Talus identity); while only one pointer
        has moved the raw sum can exceed the budget, so we rescale
        proportionally -- a budget-safety correction to the paper's
        pseudocode. While the queue is unsplit everything belongs to the
        right partition.
        """
        if not (self.cliff_active and self._split):
            return (0.0, self._size)
        left_raw = self.left_pointer * self.ratio
        right_raw = self.right_pointer * (1.0 - self.ratio)
        total = left_raw + right_raw
        if total <= 0:
            return (self._size / 2.0, self._size / 2.0)
        scale = self._size / total
        return (left_raw * scale, right_raw * scale)

    def _apply_partition_targets(self) -> None:
        left_target, right_target = self._partition_targets()
        self.left.set_physical(left_target)
        self.right.set_physical(right_target)
        hill = self.config.hill_shadow_bytes
        if self._size > 0:
            self.left.set_hill(hill * left_target / self._size)
            self.right.set_hill(hill * right_target / self._size)
        else:
            self.left.set_hill(hill / 2.0)
            self.right.set_hill(hill / 2.0)
        self._pending_resize = False
        self.repartitions += 1

    # ------------------------------------------------------------------
    # Hill-climbing integration
    # ------------------------------------------------------------------

    def set_capacity(self, capacity_bytes: float) -> None:
        """Resize the whole logical queue (Algorithm 1 moves memory here).

        Pointers are clamped to keep ``left <= size <= right`` and the
        partitions are resized immediately so byte accounting stays exact.
        """
        if capacity_bytes < 0:
            raise ConfigurationError("capacity must be >= 0")
        self._size = float(capacity_bytes)
        if not self.cliff_active:
            self.left_pointer = self._size
            self.right_pointer = self._size
            self._split = False
        else:
            self.left_pointer = min(self.left_pointer, self._size)
            self.right_pointer = max(self.right_pointer, self._size)
            self._update_split_state()
        self.ratio = self._effective_ratio()
        self._apply_partition_targets()
