"""A policy queue with a shadow extension.

"A shadow queue is an extension of an eviction queue that does not store
the values of the items, only the keys. Items are evicted from the eviction
queue into the shadow queue." (paper section 3.4). The rate of hits in the
shadow queue approximates the hit-rate-curve gradient at the queue's
current size, which is all Algorithm 1 needs.

Shadow capacity is measured in the bytes the shadowed items *represent*
("shadow queues that represent 1 MB of requests", section 5.7); the actual
memory overhead is only the keys, which :meth:`ShadowedQueue.overhead_bytes`
accounts for separately.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.common.constants import AVG_KEY_BYTES, HILL_CLIMB_SHADOW_BYTES
from repro.cache.keyqueue import KeyQueue
from repro.cache.policies.base import EvictionPolicy


class ShadowedQueue:
    """An eviction policy with a key-only LRU shadow appended after it.

    Works with *any* :class:`EvictionPolicy` (section 4.3: Cliffhanger
    "can support any eviction policy, including LRU, LFU and other hybrid
    schemes") because the shadow only consumes the policy's eviction
    stream.
    """

    #: access() results.
    HIT = "hit"
    SHADOW_HIT = "shadow"
    MISS = None

    def __init__(
        self,
        policy: EvictionPolicy,
        shadow_bytes: float = HILL_CLIMB_SHADOW_BYTES,
        name: str = "",
        avg_key_bytes: int = AVG_KEY_BYTES,
    ) -> None:
        self.policy = policy
        self.shadow = KeyQueue(shadow_bytes, name=f"{name}/shadow")
        self.name = name
        self.avg_key_bytes = avg_key_bytes
        self.shadow_hits = 0

    # ------------------------------------------------------------------

    @property
    def capacity_bytes(self) -> float:
        return self.policy.capacity

    @property
    def used_bytes(self) -> float:
        return self.policy.used

    def __len__(self) -> int:
        return len(self.policy)

    def overhead_bytes(self) -> float:
        """Extra memory the shadow queue costs (keys only)."""
        return len(self.shadow) * self.avg_key_bytes

    # ------------------------------------------------------------------

    def access(self, key: object) -> Optional[str]:
        """GET path: ``HIT`` (physical), ``SHADOW_HIT`` or ``MISS``.

        A shadow hit removes the key from the shadow (the caller fills the
        item back into the physical queue, as a real cache-fill would).
        """
        if self.policy.access(key):
            return self.HIT
        if key in self.shadow:
            self.shadow.remove(key)
            self.shadow_hits += 1
            return self.SHADOW_HIT
        return self.MISS

    def insert(self, key: object, weight: float) -> List[Tuple[object, float]]:
        """Store an item; physical evictions flow into the shadow.

        Returns the keys dropped off the *end of the shadow* (fully
        forgotten), which is what a byte-accounting caller needs.
        """
        if key in self.shadow:
            # The key is being refreshed while remembered only by the
            # shadow; it must not appear in both structures.
            self.shadow.remove(key)
        for victim, victim_weight in self.policy.insert(key, weight):
            self.shadow.push_front(victim, victim_weight)
        return list(self.shadow.overflow())

    def remove(self, key: object) -> bool:
        removed = self.policy.remove(key)
        if key in self.shadow:
            self.shadow.remove(key)
            removed = True
        return removed

    def set_capacity(self, capacity_bytes: float) -> int:
        """Resize the physical queue; shrink evictions enter the shadow.

        Returns the number of items evicted from physical memory.
        """
        evicted = self.policy.resize(capacity_bytes)
        for victim, victim_weight in evicted:
            self.shadow.push_front(victim, victim_weight)
        for _ in self.shadow.overflow():
            pass
        return len(evicted)

    def set_shadow_capacity(self, shadow_bytes: float) -> None:
        self.shadow.resize(shadow_bytes)
        for _ in self.shadow.overflow():
            pass
