"""Cliffhanger: the paper's primary contribution.

* :mod:`repro.core.managed` -- :class:`ShadowedQueue`: an eviction policy
  with a key-only shadow extension (the substrate of Algorithm 1).
* :mod:`repro.core.hill_climbing` -- :class:`HillClimber`: the
  shadow-queue hill-climbing resource allocator (Algorithm 1).
* :mod:`repro.core.cliff_scaling` -- :class:`CliffhangerQueue`: a
  partitioned queue with pointer search that scales performance cliffs
  (Algorithms 2 and 3) and carries the combined structure of Figure 5.
* :mod:`repro.core.engine` -- the engines wiring these into the cache
  server: :class:`HillClimbEngine` (Algorithm 1 only, any policy) and
  :class:`CliffhangerEngine` (the full combined system of section 4.3).
* :mod:`repro.core.crossapp` -- hill climbing *across* applications on a
  shared server (section 3.3).
"""

from repro.core.managed import ShadowedQueue
from repro.core.hill_climbing import HillClimber
from repro.core.cliff_scaling import CliffConfig, CliffhangerQueue
from repro.core.engine import CliffhangerEngine, HillClimbEngine
from repro.core.crossapp import CrossAppHillClimber

__all__ = [
    "ShadowedQueue",
    "HillClimber",
    "CliffConfig",
    "CliffhangerQueue",
    "CliffhangerEngine",
    "HillClimbEngine",
    "CrossAppHillClimber",
]
