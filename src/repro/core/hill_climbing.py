"""Algorithm 1: shadow-queue hill climbing.

::

    if request in shadowQueue(i):
        queue(i).size += credit
        chosenQueue = pickRandom(queues - {queue(i)})
        chosenQueue.size -= credit

The frequency of shadow hits for queue *i* is proportional to
``f_i * h'_i(m_i)`` (the request rate times the local hit-rate gradient),
and removing credit from a uniformly random other queue removes, in
expectation, the *average* gradient. In equilibrium every queue's
normalized gradient equals that average -- the Lagrangian optimality
condition of Equation 1 (paper section 4.1). The integration test
``tests/core/test_hill_climbing.py::test_equilibrium_equalizes_gradients``
verifies this on synthetic concave curves.

The :class:`HillClimber` here is deliberately decoupled from any cache
structure: it moves *capacity* between abstract resize targets, so the
same object drives slab classes within an application
(:class:`repro.core.engine.HillClimbEngine`), partitioned Cliffhanger
queues (:class:`repro.core.engine.CliffhangerEngine`) and whole
applications (:class:`repro.core.crossapp.CrossAppHillClimber`).
"""

from __future__ import annotations

import random
from typing import Callable, Dict, Hashable, List, Optional

from repro.common.constants import DEFAULT_CREDIT_BYTES, MIN_QUEUE_BYTES
from repro.common.errors import ConfigurationError

QueueId = Hashable

#: A resize target: read current capacity / apply a new capacity.
GetCapacity = Callable[[], float]
SetCapacity = Callable[[float], None]


class _Target:
    __slots__ = ("get_capacity", "set_capacity")

    def __init__(self, get_capacity: GetCapacity, set_capacity: SetCapacity):
        self.get_capacity = get_capacity
        self.set_capacity = set_capacity


class HillClimber:
    """Moves capacity between registered queues on shadow hits.

    Args:
        credit_bytes: Capacity moved per shadow hit (paper: 1-4 KB works
            best; larger credits oscillate, section 5.3).
        min_bytes: Floor below which a queue is never shrunk, so a starved
            queue's shadow can still observe returning demand.
        rng: Random source for victim selection. Uniform selection over
            the *other* queues is load-bearing: it is what makes credit
            removal proportional to the average gradient (section 4.1).
    """

    def __init__(
        self,
        credit_bytes: float = DEFAULT_CREDIT_BYTES,
        min_bytes: float = MIN_QUEUE_BYTES,
        rng: Optional[random.Random] = None,
    ) -> None:
        if credit_bytes <= 0:
            raise ConfigurationError(
                f"credit must be positive, got {credit_bytes}"
            )
        if min_bytes < 0:
            raise ConfigurationError(f"min_bytes must be >= 0: {min_bytes}")
        self.credit_bytes = float(credit_bytes)
        self.min_bytes = float(min_bytes)
        self.rng = rng or random.Random(0)
        self._targets: Dict[QueueId, _Target] = {}
        self.transfers = 0

    # ------------------------------------------------------------------

    def register(
        self,
        queue_id: QueueId,
        get_capacity: GetCapacity,
        set_capacity: SetCapacity,
    ) -> None:
        """Add a queue to the optimization set."""
        if queue_id in self._targets:
            raise ConfigurationError(f"queue {queue_id!r} already registered")
        self._targets[queue_id] = _Target(get_capacity, set_capacity)

    def unregister(self, queue_id: QueueId) -> None:
        self._targets.pop(queue_id, None)

    @property
    def queue_ids(self) -> List[QueueId]:
        return list(self._targets)

    # ------------------------------------------------------------------

    def on_shadow_hit(
        self,
        queue_id: QueueId,
        eligible: Optional[Callable[[QueueId], bool]] = None,
    ) -> Optional[QueueId]:
        """Algorithm 1, lines 1-5: grow ``queue_id``, shrink a random
        other queue. Returns the victim's id, or None when no queue could
        donate (all others at the floor, or the winner is alone).

        ``eligible`` optionally filters the donor pool without
        unregistering anyone (the cluster fault layer excludes crashed
        shards this way); an all-true predicate leaves the donor list --
        and therefore the RNG draw sequence -- unchanged.
        """
        winner = self._targets.get(queue_id)
        if winner is None:
            raise ConfigurationError(f"unknown queue {queue_id!r}")
        donors = [
            other_id
            for other_id, target in self._targets.items()
            if other_id != queue_id
            and (eligible is None or eligible(other_id))
            and target.get_capacity() > self.min_bytes
        ]
        if not donors:
            return None
        victim_id = donors[self.rng.randrange(len(donors))]
        victim = self._targets[victim_id]
        victim_capacity = victim.get_capacity()
        delta = min(self.credit_bytes, victim_capacity - self.min_bytes)
        if delta <= 0:
            return None
        victim.set_capacity(victim_capacity - delta)
        winner.set_capacity(winner.get_capacity() + delta)
        self.transfers += 1
        return victim_id
