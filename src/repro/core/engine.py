"""Cliffhanger engines.

Two engines plug the core algorithms into the multi-tenant server:

* :class:`HillClimbEngine` -- Algorithm 1 only: each slab class is a
  :class:`~repro.core.managed.ShadowedQueue` (any eviction policy) and a
  shared :class:`~repro.core.hill_climbing.HillClimber` moves capacity on
  shadow hits. This is the "Hill Climbing" column of Table 4.
* :class:`CliffhangerEngine` -- the full combined system (section 4.3):
  each slab class is a partitioned
  :class:`~repro.core.cliff_scaling.CliffhangerQueue`; hill climbing runs
  across the classes through the queues' hill shadows, while cliff scaling
  runs inside each queue. The two algorithms can be toggled independently
  for the Table 4 ablation.

Both engines bootstrap like stock Memcached -- classes grab chunks from
the free reservation on demand -- so the adaptive algorithms start from
the first-come-first-serve allocation and *improve* it, exactly the
deployment story the paper tells (Figure 8 shows memory drifting away from
that initial allocation over days).

Unlike :class:`repro.cache.engines.SlabEngineBase`, these engines do not
track a key-to-class map: synthetic traces give every key a deterministic
size, so the slab class is a pure function of the request. A key re-SET
into a different class leaves its stale twin to age out of the old class
naturally (the standard trace-replay simplification).
"""

from __future__ import annotations

import random
from typing import Dict

from repro.common.constants import (
    DEFAULT_CREDIT_BYTES,
    HILL_CLIMB_SHADOW_BYTES,
    MIN_QUEUE_BYTES,
)
from repro.cache.engines import Engine
from repro.cache.policies import make_policy
from repro.cache.slabs import SlabGeometry
from repro.cache.stats import (
    CLASS_SHIFT,
    EVICTED_SHIFT,
    OP_GET,
    OP_SET,
    OUTCOME_HIT,
    OUTCOME_SHADOW_HIT,
)
from repro.core.cliff_scaling import CliffConfig, CliffhangerQueue
from repro.core.hill_climbing import HillClimber
from repro.core.managed import ShadowedQueue


class HillClimbEngine(Engine):
    """Algorithm 1 across slab classes, with any eviction policy."""

    def __init__(
        self,
        app: str,
        budget_bytes: float,
        geometry: SlabGeometry,
        policy: str = "lru",
        shadow_bytes: float = HILL_CLIMB_SHADOW_BYTES,
        credit_bytes: float = DEFAULT_CREDIT_BYTES,
        min_bytes: float = MIN_QUEUE_BYTES,
        seed: int = 0,
        fill_on_miss: bool = True,
    ) -> None:
        super().__init__(app, budget_bytes, geometry, fill_on_miss)
        self.policy_kind = policy
        self.shadow_bytes = shadow_bytes
        self.queues: Dict[int, ShadowedQueue] = {}
        self.climber = HillClimber(
            credit_bytes=credit_bytes,
            min_bytes=min_bytes,
            rng=random.Random(seed),
        )
        self._free_pool = float(budget_bytes)

    # ------------------------------------------------------------------

    def _queue(self, class_index: int) -> ShadowedQueue:
        queue = self.queues.get(class_index)
        if queue is None:
            queue = ShadowedQueue(
                make_policy(
                    self.policy_kind,
                    0.0,
                    name=f"{self.app}/slab{class_index}",
                ),
                shadow_bytes=self.shadow_bytes,
                name=f"{self.app}/slab{class_index}",
            )
            self.queues[class_index] = queue
            self.climber.register(
                class_index,
                get_capacity=lambda q=queue: q.capacity_bytes,
                set_capacity=lambda cap, q=queue: q.set_capacity(cap),
            )
        return queue

    def capacities(self) -> Dict[int, float]:
        return {
            idx: queue.capacity_bytes
            for idx, queue in sorted(self.queues.items())
        }

    def used_bytes(self) -> float:
        return sum(queue.used_bytes for queue in self.queues.values())

    def shadow_overhead_bytes(self) -> float:
        return sum(queue.overhead_bytes() for queue in self.queues.values())

    # ------------------------------------------------------------------

    def _fill(self, queue: ShadowedQueue, key: str, chunk: int) -> int:
        """Insert an item, drawing startup capacity from the free pool.

        Growth is two chunks at a time: segmented policies (SLRU,
        Facebook, 2Q) split their capacity internally, so a single spare
        chunk may not fit one item in any segment.
        """
        growth = 2 * chunk
        if (
            queue.used_bytes + growth > queue.capacity_bytes
            and self._free_pool >= growth
        ):
            queue.set_capacity(queue.capacity_bytes + growth)
            self._free_pool -= growth
        # Storing must clear any shadow entry for the key (real
        # implementations look the key up in the shadow hash).
        self.ops.shadow_lookups += 1
        physical_before = len(queue)
        added = 0 if key in queue.policy else 1  # re-SETs add nothing
        for _ in queue.insert(key, chunk):
            pass  # keys dropped off the shadow tail: fully forgotten
        self.ops.inserts += 1
        evicted = max(0, physical_before + added - len(queue))
        self.ops.evictions += evicted
        self.ops.shadow_inserts += evicted  # evictions land in the shadow
        return evicted

    def process_fast(
        self, key: object, op: int, class_index: int, chunk: int,
        item_bytes: int,
    ) -> int:
        queue = self._queue(class_index)
        class_code = (class_index + 1) << CLASS_SHIFT
        if op == OP_GET:
            self.ops.hash_lookups += 1
            result = queue.access(key)
            if result == ShadowedQueue.HIT:
                self.ops.promotes += 1
                return class_code | OUTCOME_HIT
            self.ops.shadow_lookups += 1
            code = class_code
            if result == ShadowedQueue.SHADOW_HIT:
                code |= OUTCOME_SHADOW_HIT
                self.climber.on_shadow_hit(class_index)
            if self.fill_on_miss:
                code |= self._fill(queue, key, chunk) << EVICTED_SHIFT
            return code
        if op == OP_SET:
            evicted = self._fill(queue, key, chunk)
            return (evicted << EVICTED_SHIFT) | class_code
        # DELETE path.
        self.ops.hash_lookups += 1
        present = queue.remove(key)
        return class_code | OUTCOME_HIT if present else class_code

    # ------------------------------------------------------------------

    def _enforce_budget(self) -> int:
        reserved = self._free_pool + sum(
            queue.capacity_bytes for queue in self.queues.values()
        )
        excess = reserved - self.budget_bytes
        if excess <= 0:
            return 0
        taken_from_pool = min(self._free_pool, excess)
        self._free_pool -= taken_from_pool
        excess -= taken_from_pool
        evicted = 0
        total_capacity = sum(
            queue.capacity_bytes for queue in self.queues.values()
        )
        if excess > 0 and total_capacity > 0:
            scale = max(0.0, 1.0 - excess / total_capacity)
            for queue in self.queues.values():
                evicted += queue.set_capacity(queue.capacity_bytes * scale)
        return evicted

    def grow_budget(self, delta_bytes: float) -> None:
        super().grow_budget(delta_bytes)
        self._free_pool += delta_bytes


class CliffhangerEngine(Engine):
    """The combined system: hill climbing + cliff scaling (section 4.3)."""

    def __init__(
        self,
        app: str,
        budget_bytes: float,
        geometry: SlabGeometry,
        enable_hill_climbing: bool = True,
        enable_cliff_scaling: bool = True,
        hill_shadow_bytes: float = HILL_CLIMB_SHADOW_BYTES,
        credit_bytes: float = DEFAULT_CREDIT_BYTES,
        min_bytes: float = MIN_QUEUE_BYTES,
        seed: int = 0,
        resize_on_miss: bool = True,
        probe_items: int = None,
        min_cliff_items: int = None,
        fill_on_miss: bool = True,
    ) -> None:
        super().__init__(app, budget_bytes, geometry, fill_on_miss)
        self.enable_hill_climbing = enable_hill_climbing
        self.enable_cliff_scaling = enable_cliff_scaling
        self.hill_shadow_bytes = hill_shadow_bytes
        self.credit_bytes = credit_bytes
        self.resize_on_miss = resize_on_miss
        # Scaled-down experiments shrink the probe/gate constants along
        # with their queues; None keeps the paper defaults.
        self.probe_items = probe_items
        self.min_cliff_items = min_cliff_items
        self.queues: Dict[int, CliffhangerQueue] = {}
        self.climber = HillClimber(
            credit_bytes=credit_bytes,
            min_bytes=min_bytes,
            rng=random.Random(seed),
        )
        self._free_pool = float(budget_bytes)

    # ------------------------------------------------------------------

    def _queue(self, class_index: int) -> CliffhangerQueue:
        queue = self.queues.get(class_index)
        if queue is None:
            overrides = {}
            if self.probe_items is not None:
                overrides["probe_items"] = self.probe_items
            if self.min_cliff_items is not None:
                overrides["min_queue_items_for_cliff"] = self.min_cliff_items
            config = CliffConfig(
                chunk_size=self.geometry.chunk_size(class_index),
                hill_shadow_bytes=self.hill_shadow_bytes,
                credit_bytes=self.credit_bytes,
                salt=class_index + 1,
                resize_on_miss=self.resize_on_miss,
                **overrides,
            )
            queue = CliffhangerQueue(
                name=f"{self.app}/slab{class_index}",
                capacity_bytes=0.0,
                config=config,
                enable_cliff_scaling=self.enable_cliff_scaling,
            )
            self.queues[class_index] = queue
            self.climber.register(
                class_index,
                get_capacity=lambda q=queue: q.capacity_bytes,
                set_capacity=lambda cap, q=queue: q.set_capacity(cap),
            )
        return queue

    def capacities(self) -> Dict[int, float]:
        return {
            idx: queue.capacity_bytes
            for idx, queue in sorted(self.queues.items())
        }

    def used_bytes(self) -> float:
        return sum(queue.used_bytes for queue in self.queues.values())

    # ------------------------------------------------------------------

    def _fill(self, queue: CliffhangerQueue, key: str, chunk: int) -> int:
        # The queue is split into two partitions, so capacity must grow in
        # two-chunk steps: a single spare chunk split across two halves
        # cannot hold any item.
        growth = 2 * chunk
        if (
            queue.used_bytes + growth > queue.capacity_bytes
            and self._free_pool >= growth
        ):
            queue.set_capacity(queue.capacity_bytes + growth)
            self._free_pool -= growth
        self.ops.shadow_lookups += 1  # store clears shadow entries
        evicted = queue.insert(key)
        self.ops.inserts += 1
        self.ops.evictions += evicted
        self.ops.shadow_inserts += evicted
        return evicted

    def process_fast(
        self, key: object, op: int, class_index: int, chunk: int,
        item_bytes: int,
    ) -> int:
        queue = self._queue(class_index)
        self.ops.routes += 1  # left/right partition routing
        class_code = (class_index + 1) << CLASS_SHIFT
        if op == OP_GET:
            self.ops.hash_lookups += 1
            result = queue.access(key)
            if result.hit:
                self.ops.promotes += 1
                return class_code | OUTCOME_HIT
            self.ops.shadow_lookups += 1
            code = class_code
            if result.hill_hit:
                code |= OUTCOME_SHADOW_HIT
                if self.enable_hill_climbing:
                    self.climber.on_shadow_hit(class_index)
            if self.fill_on_miss:
                code |= self._fill(queue, key, chunk) << EVICTED_SHIFT
            return code
        if op == OP_SET:
            evicted = self._fill(queue, key, chunk)
            return (evicted << EVICTED_SHIFT) | class_code
        # DELETE path.
        self.ops.hash_lookups += 1
        present = queue.remove(key)
        return class_code | OUTCOME_HIT if present else class_code

    # ------------------------------------------------------------------

    def _enforce_budget(self) -> int:
        reserved = self._free_pool + sum(
            queue.capacity_bytes for queue in self.queues.values()
        )
        excess = reserved - self.budget_bytes
        if excess <= 0:
            return 0
        taken_from_pool = min(self._free_pool, excess)
        self._free_pool -= taken_from_pool
        excess -= taken_from_pool
        total_capacity = sum(
            queue.capacity_bytes for queue in self.queues.values()
        )
        if excess > 0 and total_capacity > 0:
            scale = max(0.0, 1.0 - excess / total_capacity)
            for queue in self.queues.values():
                queue.set_capacity(queue.capacity_bytes * scale)
        return 0

    def grow_budget(self, delta_bytes: float) -> None:
        super().grow_budget(delta_bytes)
        self._free_pool += delta_bytes
