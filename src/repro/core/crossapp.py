"""Hill climbing across applications (paper sections 1, 3.3, 4.1).

"Cliffhanger runs across multiple eviction queues ... it can be the queue
of a slab or a queue of an entire application." This module applies
Algorithm 1 at application granularity on a shared server: every app gets
an *app-level* shadow monitor -- a byte-weighted LRU simulation of the
app's whole reservation with a shadow extension appended -- and a shadow
hit moves reservation bytes from a random other app to the winner via the
engines' ``grow_budget``/``shrink_budget`` hooks.

The monitor is a simulation rather than an instrumented queue because an
application's engine may split its memory across many slab queues; the
question "would this app have hit with a little more total memory?" is a
question about the app's *global* LRU behaviour, which the monitor chain
answers directly.
"""

from __future__ import annotations

import random
from typing import Dict

from repro.common.constants import (
    DEFAULT_CREDIT_BYTES,
    HILL_CLIMB_SHADOW_BYTES,
    MIN_QUEUE_BYTES,
)
from repro.cache.keyqueue import KeyQueue, QueueChain
from repro.cache.server import CacheServer
from repro.cache.stats import AccessOutcome
from repro.core.hill_climbing import HillClimber
from repro.workloads.trace import Request


class _AppMonitor:
    """Byte-weighted LRU model of one app: [reservation | shadow]."""

    def __init__(self, name: str, budget: float, shadow_bytes: float) -> None:
        self.main = KeyQueue(budget, name=f"{name}/sim")
        self.shadow = KeyQueue(shadow_bytes, name=f"{name}/sim-shadow")
        self.chain = QueueChain([self.main, self.shadow], physical_segments=1)

    def observe(self, request: Request) -> bool:
        """Feed one request; True iff it landed in the shadow region."""
        weight = float(request.key_size + request.value_size)
        segment = self.chain.access(request.key)
        if segment is None:
            self.chain.insert(request.key, weight)
            return False
        return segment == 1

    def resize(self, budget: float) -> None:
        self.chain.resize_segment(0, budget)


class CrossAppHillClimber:
    """Algorithm 1 over the applications of one :class:`CacheServer`.

    Attach with :meth:`attach`; afterwards every request the server
    processes also feeds the per-app monitors, and app reservations drift
    toward the configuration that equalizes the apps' byte-gradient of
    hit rate -- the cross-application variant of Eq. 1 that Table 3
    solves statically.
    """

    def __init__(
        self,
        server: CacheServer,
        credit_bytes: float = DEFAULT_CREDIT_BYTES,
        shadow_bytes: float = HILL_CLIMB_SHADOW_BYTES,
        min_bytes: float = MIN_QUEUE_BYTES,
        seed: int = 0,
    ) -> None:
        self.server = server
        self.shadow_bytes = shadow_bytes
        self.monitors: Dict[str, _AppMonitor] = {}
        self.climber = HillClimber(
            credit_bytes=credit_bytes,
            min_bytes=min_bytes,
            rng=random.Random(seed),
        )
        for app, engine in server.engines.items():
            self.monitors[app] = _AppMonitor(
                app, engine.budget_bytes, shadow_bytes
            )
            self.climber.register(
                app,
                get_capacity=lambda e=engine: e.budget_bytes,
                set_capacity=lambda cap, a=app: self._apply_budget(a, cap),
            )

    # ------------------------------------------------------------------

    def _apply_budget(self, app: str, budget: float) -> None:
        engine = self.server.engines[app]
        delta = budget - engine.budget_bytes
        if delta >= 0:
            engine.grow_budget(delta)
        else:
            engine.shrink_budget(-delta)
        self.monitors[app].resize(budget)

    def observe(self, request: Request, outcome: AccessOutcome) -> None:
        """Server observer hook: feed the monitor; climb on shadow hits.

        Only GETs that *missed physically* can be shadow hits -- a request
        the app served from real memory is no evidence it needs more.
        """
        monitor = self.monitors.get(request.app)
        if monitor is None:
            return
        landed_in_shadow = monitor.observe(request)
        if landed_in_shadow and request.op == "get" and not outcome.hit:
            self.climber.on_shadow_hit(request.app)

    def attach(self) -> "CrossAppHillClimber":
        """Register as a server observer; returns self for chaining."""
        self.server.add_observer(self.observe)
        return self

    def budgets(self) -> Dict[str, float]:
        return {
            app: engine.budget_bytes
            for app, engine in self.server.engines.items()
        }
