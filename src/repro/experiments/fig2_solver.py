"""Figure 2: default vs Dynacache-solver hit rates and miss reduction.

For all 20 applications: replay under the stock first-come-first-serve
allocation, run the Dynacache solver on each app's week of (Mimir-
estimated) per-class curves, replay under the solver's static plan, and
report hit rates plus the fraction of misses removed. The paper's
qualitative claims checked here:

* several imbalanced apps (6, 14, 16, 17) see large miss reductions;
* cliff apps (marked ``*``) can get *worse* under the solver
  (applications 18 and 19).
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.experiments.common import ExperimentResult, miss_reduction
from repro.sim import (
    FULL_SCALE,
    Scenario,
    load_workload,
    run_scenario,
    solver_plan_for_app,
)


def run(
    scale: float = FULL_SCALE,
    seed: int = 0,
    apps: Optional[Sequence[int]] = None,
    estimator: str = "mimir",
) -> ExperimentResult:
    workload_params = {"apps": list(apps)} if apps is not None else {}
    trace = load_workload(
        "memcachier", scale=scale, seed=seed, **workload_params
    )
    names = trace.app_names
    base = Scenario(
        workload="memcachier",
        workload_params=workload_params,
        scale=scale,
        seed=seed,
    )
    default = run_scenario(base.replace(scheme="default"))
    plans: Dict[str, Dict[int, float]] = {
        app: solver_plan_for_app(trace, app, estimator=estimator)
        for app in names
    }
    solver = run_scenario(base.replace(scheme="planned", plans=plans))
    default_stats = default.hit_rates
    solver_stats = solver.hit_rates
    result = ExperimentResult(
        experiment_id="fig2",
        title="Default vs Dynacache solver",
        headers=[
            "app",
            "cliff",
            "default_hit_rate",
            "solver_hit_rate",
            "miss_reduction",
        ],
        paper_reference="Figure 2",
    )
    for app in names:
        spec = trace.specs[app]
        base_rate = default_stats[app]
        solved = solver_stats[app]
        result.rows.append(
            [
                app,
                "*" if spec.has_cliff else "",
                base_rate,
                solved,
                miss_reduction(base_rate, solved),
            ]
        )
    result.notes = (
        "miss_reduction < 0 means the solver increased misses "
        "(the paper's applications 18/19 behaviour)"
    )
    return result
