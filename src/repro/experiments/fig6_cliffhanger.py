"""Figure 6: Cliffhanger vs Dynacache solver vs default, 20 applications.

The headline comparison. Expected shape (paper section 5.2): Cliffhanger
matches or beats the default everywhere, matches the solver on stable
concave apps, and clearly beats the solver on cliff apps (19) and on
workloads whose curves change over the week (9, 18).
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.experiments.common import (
    ExperimentResult,
    FULL_SCALE,
    load_trace,
    miss_reduction,
    replay_apps,
    solver_plan_for_app,
)


def run(
    scale: float = FULL_SCALE,
    seed: int = 0,
    apps: Optional[Sequence[int]] = None,
) -> ExperimentResult:
    trace = load_trace(scale=scale, seed=seed, apps=apps)
    names = trace.app_names
    _, default_stats = replay_apps(trace, "default")
    plans = {app: solver_plan_for_app(trace, app) for app in names}
    _, solver_stats = replay_apps(trace, "planned", plans=plans)
    _, cliffhanger_stats = replay_apps(trace, "cliffhanger", seed=seed)
    result = ExperimentResult(
        experiment_id="fig6",
        title="Hit rates: default vs Dynacache solver vs Cliffhanger",
        headers=[
            "app",
            "cliff",
            "default",
            "solver",
            "cliffhanger",
            "cliffhanger_miss_reduction",
        ],
        paper_reference="Figure 6 (+ Figure 7 miss-reduction series)",
    )
    total_default = total_cliffhanger = 0.0
    for app in names:
        spec = trace.specs[app]
        base = default_stats.app_hit_rate(app)
        solver = solver_stats.app_hit_rate(app)
        cliffhanger = cliffhanger_stats.app_hit_rate(app)
        total_default += base
        total_cliffhanger += cliffhanger
        result.rows.append(
            [
                app,
                "*" if spec.has_cliff else "",
                base,
                solver,
                cliffhanger,
                miss_reduction(base, cliffhanger),
            ]
        )
    count = max(1, len(names))
    result.notes = (
        f"mean hit rate: default {total_default / count:.4f}, "
        f"cliffhanger {total_cliffhanger / count:.4f} "
        f"(paper: +1.2% mean hit rate, 36.7% mean miss reduction)"
    )
    return result
