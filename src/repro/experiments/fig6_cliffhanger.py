"""Figure 6: Cliffhanger vs Dynacache solver vs default, 20 applications.

The headline comparison. Expected shape (paper section 5.2): Cliffhanger
matches or beats the default everywhere, matches the solver on stable
concave apps, and clearly beats the solver on cliff apps (19) and on
workloads whose curves change over the week (9, 18).
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.experiments.common import ExperimentResult
from repro.sim import FULL_SCALE, Scenario, load_workload, run_scenario


def run(
    scale: float = FULL_SCALE,
    seed: int = 0,
    apps: Optional[Sequence[int]] = None,
) -> ExperimentResult:
    workload_params = {"apps": list(apps)} if apps is not None else {}
    trace = load_workload(
        "memcachier", scale=scale, seed=seed, **workload_params
    )
    names = trace.app_names
    base = Scenario(
        workload="memcachier",
        workload_params=workload_params,
        scale=scale,
        seed=seed,
    )
    default = run_scenario(base.replace(scheme="default"))
    solver = run_scenario(base.replace(scheme="planned", plans="solver"))
    cliffhanger = run_scenario(
        base.replace(scheme="cliffhanger"), baseline=default
    )
    result = ExperimentResult(
        experiment_id="fig6",
        title="Hit rates: default vs Dynacache solver vs Cliffhanger",
        headers=[
            "app",
            "cliff",
            "default",
            "solver",
            "cliffhanger",
            "cliffhanger_miss_reduction",
        ],
        paper_reference="Figure 6 (+ Figure 7 miss-reduction series)",
    )
    total_default = total_cliffhanger = 0.0
    for app in names:
        spec = trace.specs[app]
        base_rate = default.hit_rates[app]
        total_default += base_rate
        total_cliffhanger += cliffhanger.hit_rates[app]
        result.rows.append(
            [
                app,
                "*" if spec.has_cliff else "",
                base_rate,
                solver.hit_rates[app],
                cliffhanger.hit_rates[app],
                cliffhanger.miss_reductions[app],
            ]
        )
    count = max(1, len(names))
    result.notes = (
        f"mean hit rate: default {total_default / count:.4f}, "
        f"cliffhanger {total_cliffhanger / count:.4f} "
        f"(paper: +1.2% mean hit rate, 36.7% mean miss reduction)"
    )
    return result
