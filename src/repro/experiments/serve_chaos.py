"""Chaos under load: crash the busiest shard mid-run, live.

Beyond the paper: ``cluster_faults`` measures crash/recovery on the
offline replay; this experiment fires the same fault schedule through
the **live** serving path (:mod:`repro.serve`) while the open-loop load
generator keeps arrivals coming -- the fault lands on the virtual-time
request-count axis, so a fixed seed reproduces the identical timeline.

The run calibrates the harness's sustainable rate, picks the busiest
shard from a fault-free reference run, then crashes it at 50% of a
heavily loaded run (restart at 62.5%) in three modes:

* ``none``           -- fault-free reference at the same offered rate;
* ``miss-through``   -- fire-once clients, dead shard's keys answered
  as tagged misses;
* ``failover+retry`` -- dead shard's keys re-routed to ring successors,
  clients retry BUSY responses with capped exponential backoff under a
  per-request deadline.

Expected: ``failover+retry`` ends the run with a hit rate above
``miss-through`` (successors absorb and re-warm the dead shard's
keyspace instead of eating every request as a miss) and its final
latency-timeline window's p99 recovers from the worst (outage) window.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult, FULL_SCALE
from repro.sim import Scenario, load_workload, run_scenario

WORKLOAD_PARAMS = {
    "apps": 2,
    "num_keys": 20_000,
    "requests_per_app": 80_000,
    "crowd_fraction": 0.7,
}

#: Few virtual nodes: an uneven ring makes "busiest shard" meaningful.
VIRTUAL_NODES = 4

#: Offered rate over calibrated capacity. Just under the harness's
#: sustainable rate: the *crash* is what tips the run into overload
#: (successors absorb the dead shard's keys cold, retries add traffic),
#: and the post-restart windows show the queue draining back down --
#: at >= 1x the open-loop backlog would grow monotonically and the
#: final window could never recover.
OVERLOAD_FRACTION = 0.75

RETRY_BLOCK = {
    "max_attempts": 3,
    "base_backoff_s": 0.001,
    "max_backoff_s": 0.010,
    "budget": 0.5,
}


def _window_p99s(serve) -> tuple:
    """(worst, final) window p99 over occupied timeline windows."""
    timed = [
        w for w in serve["faults"]["latency_timeline"] if w["completed"] > 0
    ]
    if not timed:
        return 0.0, 0.0
    worst = max(w["p99_ms"] for w in timed)
    return worst, timed[-1]["p99_ms"]


def run(
    scale: float = FULL_SCALE,
    seed: int = 0,
    shards: int = 4,
    scheme: str = "hill",
) -> ExperimentResult:
    load_workload("flash-crowd", scale=scale, seed=seed, **WORKLOAD_PARAMS)
    duration_s = max(0.3, min(1.5, 10.0 * scale))
    base = Scenario(
        scheme=scheme,
        workload="flash-crowd",
        scale=scale,
        seed=seed,
        workload_params=dict(WORKLOAD_PARAMS),
        cluster={"shards": int(shards), "virtual_nodes": VIRTUAL_NODES},
    )
    probe = run_scenario(
        base.replace(
            serve={
                "rate": 100_000.0,
                "duration_s": min(0.25, duration_s),
                "arrivals": "fixed",
            }
        )
    )
    capacity = max(500.0, probe.cluster_report["serve"]["achieved_rate"])
    rate = max(400.0, OVERLOAD_FRACTION * capacity)
    total = max(1, round(rate * duration_s))
    loads = probe.cluster_report["shard_loads"]
    busiest = max(range(len(loads)), key=lambda s: loads[s]["requests"])
    # Crash at the midpoint; restart at 62.5% so the back quarter of
    # the run shows the re-warmed shard (recovery needs room to land).
    crash_at = max(1, total // 2)
    restart_at = max(crash_at + 1, (5 * total) // 8)
    serve_block = {
        "rate": rate,
        "duration_s": duration_s,
        "arrivals": "poisson",
        "backpressure": "queue",
    }
    modes = (
        ("none", None, None),
        ("miss-through", "miss-through", None),
        ("failover+retry", "failover", dict(RETRY_BLOCK)),
    )
    result = ExperimentResult(
        experiment_id="serve_chaos",
        title="Chaos under load: crash the busiest shard mid-serve",
        headers=[
            "mode",
            "hit_rate",
            "completed",
            "errors",
            "retries",
            "dead_requests",
            "p99_ms",
            "outage_p99_ms",
            "final_p99_ms",
            "ttr_requests",
        ],
        paper_reference=(
            "beyond the paper: live fault injection over the serving "
            "path, with client retry/backoff and shard failover"
        ),
    )
    for mode, policy, retry in modes:
        scenario = base.replace(
            serve=dict(serve_block, retry=retry),
            faults=(
                {
                    "events": [
                        {"kind": "crash", "shard": busiest, "at": crash_at},
                        {
                            "kind": "restart",
                            "shard": busiest,
                            "at": restart_at,
                        },
                    ],
                    "policy": policy,
                }
                if policy is not None
                else None
            ),
        )
        outcome = run_scenario(scenario)
        serve = outcome.cluster_report["serve"]
        faults = serve.get("faults")
        if faults is not None:
            outage_p99, final_p99 = _window_p99s(serve)
            crashes = faults["crashes"]
            ttr = crashes[0]["time_to_recover"] if crashes else None
            dead = faults["dead_requests"]
        else:
            outage_p99 = final_p99 = None
            ttr = None
            dead = 0
        result.rows.append(
            [
                mode,
                outcome.overall_hit_rate,
                serve["completed"],
                serve["errors"],
                serve["retries"],
                dead,
                serve["latency_ms"]["p99"],
                outage_p99,
                final_p99,
                ttr,
            ]
        )
    result.notes = (
        f"scheme {scheme}, {shards} shards, {VIRTUAL_NODES} vnodes; "
        f"offered {rate:,.0f} req/s = {OVERLOAD_FRACTION:g}x calibrated "
        f"capacity; shard {busiest} (busiest) crashes at request "
        f"{crash_at:,} of {total:,} and restarts cold at {restart_at:,}; "
        "failover+retry should end with a hit rate above miss-through "
        "and a final-window p99 below the outage window's"
    )
    return result
