"""Live serving: the latency-vs-offered-rate curve, static vs. rebalanced.

Beyond the paper: the replay experiments answer "what would the hit
rate have been"; this one stands the cluster behind the asyncio
memcached-style server (:mod:`repro.serve`) and drives it **open-loop**
-- arrivals come from a clock, not from responses, so queueing delay
under overload lands in the percentiles instead of being absorbed by a
slowing client.

The run first calibrates the harness's sustainable completion rate with
an overdriven shed-mode probe, then sweeps offered rates as fractions
of that capacity (below, at, and past saturation) in two modes:

* ``static``    -- the frozen even per-shard budget split;
* ``rebalance`` -- epoch-driven budget stealing toward the busiest
  shard (``load`` policy), with epochs advanced by the server's own
  ``process_batch`` calls.

Expected: p99 latency is flat while offered < capacity and blows up
past saturation (the open-loop backlog grows without bound for the rest
of the run), and at high load the rebalanced cluster's hit rate beats
the static split on the deliberately uneven ring -- the same
memory-follows-demand effect the offline ``cluster_rebalance``
experiment shows, now measured through the live data plane.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult, FULL_SCALE
from repro.sim import Scenario, load_workload, run_scenario

#: Flash-crowd tenants (mirrors the cluster_rebalance experiment).
WORKLOAD_PARAMS = {
    "apps": 2,
    "num_keys": 20_000,
    "requests_per_app": 80_000,
    "crowd_fraction": 0.7,
}

#: Few virtual nodes on purpose: the uneven keyspace split is what the
#: rebalancer can fix and the static split cannot.
VIRTUAL_NODES = 4

#: Offered rate as a fraction of the calibrated capacity; the last
#: point is deliberately past saturation.
RATE_FRACTIONS = (0.25, 0.5, 1.0, 2.0)

#: Rebalance cadence/credit (as in cluster_rebalance).
TARGET_EPOCHS = 32
CREDIT_FRACTION = 0.05


def run(
    scale: float = FULL_SCALE,
    seed: int = 0,
    shards: int = 4,
    scheme: str = "hill",
) -> ExperimentResult:
    trace = load_workload(
        "flash-crowd", scale=scale, seed=seed, **WORKLOAD_PARAMS
    )
    even_share = sum(trace.reservations.values()) / shards
    duration_s = max(0.3, min(1.5, 10.0 * scale))
    base = Scenario(
        scheme=scheme,
        workload="flash-crowd",
        scale=scale,
        seed=seed,
        workload_params=dict(WORKLOAD_PARAMS),
        cluster={"shards": int(shards), "virtual_nodes": VIRTUAL_NODES},
    )
    # Calibrate: overdrive the server briefly; the completion rate of a
    # far-past-saturation run is the harness's sustainable rate on this
    # machine (queue backpressure, so every probe request completes).
    probe = run_scenario(
        base.replace(
            serve={
                "rate": 100_000.0,
                "duration_s": min(0.25, duration_s),
                "arrivals": "fixed",
            }
        )
    )
    capacity = max(500.0, probe.cluster_report["serve"]["achieved_rate"])

    result = ExperimentResult(
        experiment_id="cluster_serve",
        title="Open-loop serving: latency vs. offered rate",
        headers=[
            "mode",
            "offered_x",
            "offered_rate",
            "achieved_rate",
            "p50_ms",
            "p99_ms",
            "shed",
            "hit_rate",
        ],
        paper_reference=(
            "beyond the paper: the cluster behind a live memcached-style "
            "server instead of an offline replay"
        ),
    )
    for fraction in RATE_FRACTIONS:
        rate = max(200.0, fraction * capacity)
        requests = max(1, round(rate * duration_s))
        epoch_requests = max(50, requests // TARGET_EPOCHS)
        for mode in ("static", "rebalance"):
            scenario = base.replace(
                serve={
                    "rate": rate,
                    "duration_s": duration_s,
                    "arrivals": "poisson",
                    "backpressure": "queue",
                },
                rebalance=(
                    {
                        "epoch_requests": int(epoch_requests),
                        "credit_bytes": float(CREDIT_FRACTION * even_share),
                        "policy": "load",
                    }
                    if mode == "rebalance"
                    else None
                ),
            )
            outcome = run_scenario(scenario)
            serve = outcome.cluster_report["serve"]
            result.rows.append(
                [
                    mode,
                    fraction,
                    round(serve["offered_rate"]),
                    round(serve["achieved_rate"]),
                    serve["latency_ms"]["p50"],
                    serve["latency_ms"]["p99"],
                    serve["shed"],
                    outcome.overall_hit_rate,
                ]
            )
    result.notes = (
        f"scheme {scheme}, {shards} shards, {VIRTUAL_NODES} vnodes "
        f"(uneven ring on purpose), duration {duration_s:.1f}s/point, "
        f"calibrated capacity {capacity:,.0f} req/s; offered_x is the "
        "offered rate over capacity -- past 1.0 the open-loop p99 "
        "degrades; rebalance steals budget toward the busiest shard "
        "through the live batch path"
    )
    return result
