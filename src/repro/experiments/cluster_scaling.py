"""Cluster scaling: hit rate and load balance versus shard count.

Beyond the paper's single-server tables: section 4.3 argues Cliffhanger
needs no cross-server coordination, so a cluster is just N independent
servers behind consistent hashing. This experiment replays two
time-dynamic workloads -- a phase-shifting Zipf tenant pair and a flash
crowd -- across growing shard counts and reports what sharding costs
(per-shard budget splits lower hit rates under skew) and what it cannot
fix (a flash crowd concentrates on whichever shards own the hot keys;
the imbalance column shows consistent hashing leaving it there).
"""

from __future__ import annotations

from typing import Sequence

from repro.experiments.common import ExperimentResult, FULL_SCALE
from repro.sim import Scenario, run_scenario

#: (workload name, workload params) pairs replayed per shard count.
WORKLOADS = (
    (
        "zipf-phases",
        {
            "apps": 2,
            "num_keys": 20_000,
            "requests_per_app": 80_000,
            "phases": [
                {"at": 0.0, "alpha": 1.1},
                {"at": 0.5, "alpha": 0.8, "offset": 20_000},
            ],
        },
    ),
    (
        "flash-crowd",
        {
            "apps": 2,
            "num_keys": 20_000,
            "requests_per_app": 80_000,
            "crowd_fraction": 0.7,
        },
    ),
)


def run(
    scale: float = FULL_SCALE,
    seed: int = 0,
    shard_counts: Sequence[int] = (1, 2, 4, 8),
    scheme: str = "default",
) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="cluster_scaling",
        title="Dynamic workloads across cluster shard counts",
        headers=[
            "workload",
            "shards",
            "hit_rate",
            "imbalance",
            "hot_shards",
            "max_shard_mb",
        ],
        paper_reference=(
            "section 4.3 (no coordination between servers); "
            "cluster layer is beyond the paper"
        ),
    )
    for workload, params in WORKLOADS:
        base = Scenario(
            scheme=scheme,
            workload=workload,
            scale=scale,
            seed=seed,
            workload_params=dict(params),
        )
        for shards in shard_counts:
            outcome = run_scenario(
                base.replace(cluster={"shards": int(shards)})
            )
            report = outcome.cluster_report
            max_shard_mb = max(
                load["memory_used_bytes"]
                for load in report["shard_loads"]
            ) / (1 << 20)
            result.rows.append(
                [
                    workload,
                    int(shards),
                    outcome.overall_hit_rate,
                    report["imbalance"],
                    len(report["hot_shards"]),
                    max_shard_mb,
                ]
            )
    result.notes = (
        f"scheme {scheme}; budgets split evenly per shard; imbalance is "
        "max/mean per-shard requests (1.0 = perfectly balanced)"
    )
    return result
