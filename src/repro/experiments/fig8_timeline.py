"""Figure 8: memory allocated to slabs over time (Application 5).

Application 5's popularity rotates across slab classes 4-9 during the
week; under hill climbing with 1 MB shadow queues and 4 KB credits the
per-class capacities should visibly follow the phases, which is the
paper's demonstration that the algorithm responds to workload change
(slowly -- Memcachier request rates are low).
"""

from __future__ import annotations

from repro.cache.stats import TimelineRecorder
from repro.experiments.common import ExperimentResult
from repro.sim import FULL_SCALE, Scenario, build_server, load_workload
from repro.workloads.memcachier import WEEK_SECONDS

APP = "app05"
SAMPLES = 24


def run(scale: float = FULL_SCALE, seed: int = 0) -> ExperimentResult:
    trace = load_workload("memcachier", scale=scale, seed=seed, apps=[5])
    recorder = TimelineRecorder(interval=WEEK_SECONDS / SAMPLES)
    scenario = Scenario(
        scheme="hill",
        workload="memcachier",
        workload_params={"apps": [5]},
        scale=scale,
        seed=seed,
    )
    server = build_server(scenario, trace)
    engine = server.engines[APP]

    def observer(request, outcome):
        recorder.maybe_sample(
            request.time,
            {
                f"slab{idx}": capacity / (1 << 20)
                for idx, capacity in engine.capacities().items()
            },
        )

    server.add_observer(observer)
    server.replay(trace.app_requests(APP))

    result = ExperimentResult(
        experiment_id="fig8",
        title=f"Memory allocated to slabs over time, {APP} (MB)",
        headers=["time_s"] + sorted(recorder.series),
        paper_reference="Figure 8",
    )
    for time_value, values in recorder.as_rows():
        result.rows.append(
            [int(time_value)]
            + [values.get(name, 0.0) for name in sorted(recorder.series)]
        )
    result.notes = (
        "hill climbing with 1MB shadow queues / 4KB credits; capacities "
        "should track the weekly popularity phases across slab classes"
    )
    return result
