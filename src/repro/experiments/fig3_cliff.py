"""Figure 3: a performance cliff (Application 11, slab class 6).

Profiles the cliff application's scanned slab class and reports the
sampled hit-rate curve together with the detected cliff regions -- the
convex intervals where the curve sits below its concave hull.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult
from repro.sim import FULL_SCALE, load_workload, profile_app_classes

APP = "app11"
SLAB_CLASS = 6
SAMPLES = 24


def run(scale: float = FULL_SCALE, seed: int = 0) -> ExperimentResult:
    trace = load_workload("memcachier", scale=scale, seed=seed, apps=[11])
    curves, frequencies = profile_app_classes(trace.compiled_for(APP))
    class_index = SLAB_CLASS if SLAB_CLASS in curves else max(curves)
    curve = curves[class_index]
    sampled = curve.resample(SAMPLES + 1)
    result = ExperimentResult(
        experiment_id="fig3",
        title=f"Performance cliff, {APP} slab class {class_index}",
        headers=["queue_items", "hit_rate", "concave_hull"],
        paper_reference="Figure 3",
    )
    hull = curve.concave_hull()
    for size, rate in zip(sampled.sizes, sampled.hit_rates):
        result.rows.append([int(size), float(rate), hull.hit_rate(size)])
    cliffs = curve.cliffs(tolerance=0.02)
    result.notes = (
        f"GETs profiled: {frequencies[class_index]}; detected cliff "
        f"regions (items): "
        + (
            ", ".join(f"[{int(a)}, {int(b)}]" for a, b in cliffs)
            if cliffs
            else "NONE (unexpected)"
        )
    )
    return result
