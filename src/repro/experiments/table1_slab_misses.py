"""Table 1: per-slab-class GET and miss shares, applications 4 and 6.

The default scheme assigns too much memory to large slab classes; the
solver shifts it to the hot small classes. The paper's rows show e.g.
application 6's class 2 carrying 92.6% of misses under default and ~0%
under the solver.
"""

from __future__ import annotations

from typing import Dict

from repro.experiments.common import ExperimentResult
from repro.sim import (
    FULL_SCALE,
    Scenario,
    load_workload,
    run_scenario,
)

APPS = (4, 6)


def _shares(stats, app: str) -> Dict[int, Dict[str, float]]:
    counters = stats.class_counters_for(app)
    total_gets = sum(c.gets for c in counters.values())
    total_misses = sum(c.misses for c in counters.values())
    shares = {}
    for class_index, counter in counters.items():
        shares[class_index] = {
            "gets": counter.gets / total_gets if total_gets else 0.0,
            "misses": (
                counter.misses / total_misses if total_misses else 0.0
            ),
        }
    return shares


def run(scale: float = FULL_SCALE, seed: int = 0) -> ExperimentResult:
    trace = load_workload(
        "memcachier", scale=scale, seed=seed, apps=list(APPS)
    )
    names = trace.app_names
    base = Scenario(
        workload="memcachier",
        workload_params={"apps": list(APPS)},
        scale=scale,
        seed=seed,
    )
    default_stats = run_scenario(
        base.replace(scheme="default"), keep_server=True
    ).stats
    solver_stats = run_scenario(
        base.replace(scheme="planned", plans="solver"), keep_server=True
    ).stats
    result = ExperimentResult(
        experiment_id="tab1",
        title="Misses by slab class: default vs Dynacache solver",
        headers=[
            "app",
            "slab_class",
            "pct_gets",
            "default_pct_misses",
            "solver_pct_misses",
        ],
        paper_reference="Table 1",
    )
    for app in names:
        default_shares = _shares(default_stats, app)
        solver_shares = _shares(solver_stats, app)
        for class_index in sorted(default_shares):
            result.rows.append(
                [
                    app,
                    class_index,
                    default_shares[class_index]["gets"] * 100.0,
                    default_shares[class_index]["misses"] * 100.0,
                    solver_shares.get(class_index, {"misses": 0.0})[
                        "misses"
                    ]
                    * 100.0,
                ]
            )
    result.notes = (
        "expected shape: the hot small class carries most default misses; "
        "the solver moves them to (or eliminates them from) the cold "
        "large class"
    )
    return result
