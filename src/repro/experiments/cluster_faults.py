"""Shard crash and recovery: static split vs. online rebalancing.

Beyond the paper: Cliffhanger's no-coordination design (section 4.3)
means a cluster survives shard loss purely through ring failover and
local re-convergence -- and a restarted shard comes back *cold*, the
hit-rate-cliff regime the paper's machinery measures. This experiment
replays a flash-crowd workload, crashes the busiest shard mid-crowd, and
restarts it while the crowd is still hot, comparing three runs:

* ``healthy``   -- no faults, the reference ceiling;
* ``static``    -- the crash under the frozen even split: survivors
  absorb the failed-over keys with their original budgets, and the
  restarted shard refills cold at its old size;
* ``rebalance`` -- the same crash with the epoch-driven rebalancer: the
  dead shard's budget is redistributed to the survivors for the duration
  of the outage, restored at restart, and the climber keeps following
  demand through recovery.

Expected: the rebalancing run recovers faster (smaller
``time_to_recover``) and loses fewer hits to the fault (smaller
``miss_cost``) than the static split -- memory following the failed-over
demand is exactly what a frozen split cannot do.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult, FULL_SCALE
from repro.sim import Scenario, load_workload, miss_reduction, run_scenario

#: Flash-crowd tenants (mirrors the cluster_rebalance experiment).
WORKLOAD_PARAMS = {
    "apps": 2,
    "num_keys": 20_000,
    "requests_per_app": 80_000,
    "crowd_fraction": 0.7,
}

#: Few virtual nodes: the uneven ring gives the crash a clear hot target.
VIRTUAL_NODES = 4

#: Crash/restart as fractions of the trace. The flash crowd burns over
#: [0.4, 0.6) of the stream, so both events land mid-crowd: the shard
#: dies while hot and comes back cold with the crowd still running.
CRASH_FRACTION = 0.45
RESTART_FRACTION = 0.55

#: Rebalance cadence and credit sizing (as in cluster_rebalance).
TARGET_EPOCHS = 32
CREDIT_FRACTION = 0.05


def run(
    scale: float = FULL_SCALE,
    seed: int = 0,
    shards: int = 4,
    scheme: str = "hill",
) -> ExperimentResult:
    trace = load_workload(
        "flash-crowd", scale=scale, seed=seed, **WORKLOAD_PARAMS
    )
    total_requests = sum(trace.requests_per_app.values())
    even_share = sum(trace.reservations.values()) / shards
    epoch_requests = max(50, total_requests // TARGET_EPOCHS)
    base = Scenario(
        scheme=scheme,
        workload="flash-crowd",
        scale=scale,
        seed=seed,
        workload_params=dict(WORKLOAD_PARAMS),
        cluster={"shards": int(shards), "virtual_nodes": VIRTUAL_NODES},
    )
    result = ExperimentResult(
        experiment_id="cluster_faults",
        title="Shard crash and recovery: static split vs. rebalancing",
        headers=[
            "run",
            "hit_rate",
            "vs_healthy",
            "downtime",
            "time_to_recover",
            "miss_cost",
            "transfers",
        ],
        paper_reference=(
            "no-coordination failover (section 4.3) meets the hit-rate "
            "cliff (section 2): a restarted shard refills cold"
        ),
    )
    healthy = run_scenario(base)
    result.rows.append(
        ["healthy", healthy.overall_hit_rate, 0.0, 0, 0, 0.0, 0]
    )
    # Crash the busiest shard: the deterministic worst case the ring's
    # uneven split hands us.
    loads = healthy.cluster_report["shard_loads"]
    hot_shard = max(loads, key=lambda load: load["requests"])["shard"]
    faults = {
        "events": [
            {
                "kind": "crash",
                "shard": int(hot_shard),
                "at": int(total_requests * CRASH_FRACTION),
            },
            {
                "kind": "restart",
                "shard": int(hot_shard),
                "at": int(total_requests * RESTART_FRACTION),
            },
        ],
        "policy": "failover",
    }
    rebalance = {
        "epoch_requests": int(epoch_requests),
        "credit_bytes": float(CREDIT_FRACTION * even_share),
        "policy": "shadow",
    }
    for name, extra in (
        ("static", {"faults": faults}),
        ("rebalance", {"faults": faults, "rebalance": rebalance}),
    ):
        outcome = run_scenario(base.replace(**extra))
        report = outcome.cluster_report
        crash = report["faults"]["crashes"][0]
        recovered = crash["time_to_recover"]
        result.rows.append(
            [
                name,
                outcome.overall_hit_rate,
                miss_reduction(
                    healthy.overall_hit_rate, outcome.overall_hit_rate
                ),
                crash["downtime_requests"],
                recovered if recovered is not None else -1,
                crash["miss_cost"],
                (
                    report["rebalance"]["transfers"]
                    if report["rebalance"] is not None
                    else 0
                ),
            ]
        )
    result.notes = (
        f"scheme {scheme}, {shards} shards, {VIRTUAL_NODES} vnodes; shard "
        f"{hot_shard} (the busiest) crashes at "
        f"{int(total_requests * CRASH_FRACTION):,} and restarts at "
        f"{int(total_requests * RESTART_FRACTION):,} of "
        f"{total_requests:,} requests under the failover policy; "
        "time_to_recover counts requests from the crash until the "
        "rolling hit rate is back within epsilon of the pre-fault "
        "window (-1: not recovered); vs_healthy is the miss reduction "
        "against the no-fault run (negative = misses added by the fault)"
    )
    return result
