"""Figure 7: miss reduction and memory savings of Cliffhanger.

Memory savings are measured as in the paper: the fraction of its
reservation an application can give up while Cliffhanger still achieves
the *default scheme's* hit rate. Each application is searched
independently over a descending grid of memory fractions (the paper
reports Cliffhanger needing on average 55% of the memory, i.e. 45%
savings).
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.experiments.common import ExperimentResult, miss_reduction
from repro.sim import FULL_SCALE, Scenario, load_workload, run_scenario

#: Memory fractions tried, descending; first failure stops the search.
FRACTIONS = (0.85, 0.70, 0.55, 0.40, 0.25)


def run(
    scale: float = FULL_SCALE,
    seed: int = 0,
    apps: Optional[Sequence[int]] = None,
) -> ExperimentResult:
    workload_params = {"apps": list(apps)} if apps is not None else {}
    trace = load_workload(
        "memcachier", scale=scale, seed=seed, **workload_params
    )
    names = trace.app_names
    base = Scenario(
        workload="memcachier",
        workload_params=workload_params,
        scale=scale,
        seed=seed,
    )
    default = run_scenario(base.replace(scheme="default"))
    cliffhanger = run_scenario(base.replace(scheme="cliffhanger"))

    result = ExperimentResult(
        experiment_id="fig7",
        title="Cliffhanger miss reduction and memory savings",
        headers=["app", "cliff", "miss_reduction", "memory_savings"],
        paper_reference="Figure 7",
    )
    total_savings = 0.0
    for app in names:
        target = default.hit_rates[app]
        best_fraction = 1.0
        for fraction in FRACTIONS:
            budgets = {app: max(64 * 1024, trace.reservations[app] * fraction)}
            shrunk = run_scenario(
                base.replace(
                    scheme="cliffhanger", apps=[app], budgets=budgets
                )
            )
            if shrunk.hit_rates[app] + 1e-4 >= target:
                best_fraction = fraction
            else:
                break
        savings = 1.0 - best_fraction
        total_savings += savings
        result.rows.append(
            [
                app,
                "*" if trace.specs[app].has_cliff else "",
                miss_reduction(target, cliffhanger.hit_rates[app]),
                savings,
            ]
        )
    result.notes = (
        f"mean memory savings {total_savings / max(1, len(names)):.3f} "
        f"(paper: 0.45 -- same hit rate with 55% of the memory)"
    )
    return result
