"""Figure 4: Talus partitioning achieves the concave hull.

Two parts:

1. The paper's exact arithmetic example, independent of any trace: an
   8000-item queue on a cliff anchored at (2000, 13500) splits into
   physical queues of 957 and 7043 items with a 48%/52% request split.
2. The same computation on the synthetic Application 19's slab-class-0
   curve: detect the cliff, plan the partition, and report the expected
   hull hit rate vs the raw curve's.
"""

from __future__ import annotations

from repro.allocation.talus import compute_ratio, plan_talus_partition
from repro.experiments.common import ExperimentResult
from repro.sim import FULL_SCALE, load_workload, profile_app_classes

APP = "app19"
#: The paper's worked example.
PAPER_SIZE, PAPER_LEFT, PAPER_RIGHT = 8000.0, 2000.0, 13500.0


def run(scale: float = FULL_SCALE, seed: int = 0) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="fig4",
        title="Talus partitioning on a performance cliff",
        headers=[
            "case",
            "queue_size",
            "left_anchor",
            "right_anchor",
            "left_fraction",
            "left_physical",
            "right_physical",
            "raw_hit_rate",
            "hull_hit_rate",
        ],
        paper_reference="Figure 4",
    )
    # Part 1: the closed-form example.
    ratio = compute_ratio(PAPER_SIZE, PAPER_LEFT, PAPER_RIGHT)
    result.rows.append(
        [
            "paper-example",
            int(PAPER_SIZE),
            int(PAPER_LEFT),
            int(PAPER_RIGHT),
            ratio,
            PAPER_LEFT * ratio,
            PAPER_RIGHT * (1.0 - ratio),
            "-",
            "-",
        ]
    )
    # Part 2: the synthetic Application 19 curve.
    trace = load_workload("memcachier", scale=scale, seed=seed, apps=[19])
    curves, _ = profile_app_classes(trace.compiled_for(APP))
    class_index = 0 if 0 in curves else min(curves)
    curve = curves[class_index]
    cliffs = curve.cliffs(tolerance=0.02)
    if cliffs:
        left_anchor, right_anchor = cliffs[0]
        operating = (left_anchor + right_anchor) / 2.0
        partition = plan_talus_partition(curve, operating, tolerance=0.02)
        if partition is not None:
            result.rows.append(
                [
                    f"{APP}/slab{class_index}",
                    int(operating),
                    int(partition.left_anchor),
                    int(partition.right_anchor),
                    partition.left_fraction,
                    partition.left_size,
                    partition.right_size,
                    curve.hit_rate(operating),
                    partition.expected_hit_rate,
                ]
            )
            result.notes = (
                "hull_hit_rate > raw_hit_rate inside the cliff: the "
                "partition recovers the concave hull"
            )
    if len(result.rows) == 1:
        result.notes = "no cliff detected in the synthetic curve (unexpected)"
    return result
