"""Experiment runners: one per table and figure of the paper.

Every runner module exposes ``run(scale=..., seed=0, **kwargs) ->
ExperimentResult``; :data:`REGISTRY` maps experiment ids to runners, and
``python -m repro.experiments <id> [--scale S]`` executes them from the
command line. The ``benchmarks/`` tree wraps the same runners in
pytest-benchmark fixtures at reduced scale.

See DESIGN.md section 4 for the experiment index and EXPERIMENTS.md for
recorded paper-vs-measured results.
"""

from repro.experiments.common import ExperimentResult
from repro.experiments.registry import REGISTRY, get_runner, list_experiments

__all__ = [
    "ExperimentResult",
    "REGISTRY",
    "get_runner",
    "list_experiments",
]
