"""Experiment registry: id -> runner."""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.common.errors import ConfigurationError
from repro.experiments import (
    cluster_faults,
    cluster_rebalance,
    cluster_scaling,
    cluster_serve,
    fig1_hrc,
    fig2_solver,
    fig3_cliff,
    fig4_talus,
    fig6_cliffhanger,
    fig7_savings,
    fig8_timeline,
    fig9_convergence,
    sensitivity,
    serve_chaos,
    table1_slab_misses,
    table2_lsm,
    table3_cross_app,
    table4_combined,
    table5_lfu,
    table6_latency,
    table7_throughput,
)
from repro.experiments.common import ExperimentResult

Runner = Callable[..., ExperimentResult]

REGISTRY: Dict[str, Runner] = {
    "fig1": fig1_hrc.run,
    "fig2": fig2_solver.run,
    "fig3": fig3_cliff.run,
    "fig4": fig4_talus.run,
    "fig6": fig6_cliffhanger.run,
    "fig7": fig7_savings.run,
    "fig8": fig8_timeline.run,
    "fig9": fig9_convergence.run,
    "tab1": table1_slab_misses.run,
    "tab2": table2_lsm.run,
    "tab3": table3_cross_app.run,
    "tab4": table4_combined.run,
    "tab5": table5_lfu.run,
    "tab6": table6_latency.run,
    "tab7": table7_throughput.run,
    "sensitivity": sensitivity.run,
    "cluster_scaling": cluster_scaling.run,
    "cluster_rebalance": cluster_rebalance.run,
    "cluster_faults": cluster_faults.run,
    "cluster_serve": cluster_serve.run,
    "serve_chaos": serve_chaos.run,
}


def get_runner(experiment_id: str) -> Runner:
    try:
        return REGISTRY[experiment_id]
    except KeyError:
        raise ConfigurationError(
            f"unknown experiment {experiment_id!r}; known: "
            f"{', '.join(sorted(REGISTRY))}"
        ) from None


def list_experiments() -> List[str]:
    return sorted(REGISTRY)
