"""Figure 1: hit-rate curve of Application 3, slab class 9 (concave).

The paper plots the stack-distance-derived hit-rate curve of a small,
well-behaved slab class to introduce hit-rate curves. We reproduce it from
the synthetic Application 3, whose profile deliberately includes a
slab-class-9 component, and report a sampled curve plus a concavity check.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult
from repro.sim import FULL_SCALE, load_workload, profile_app_classes

APP = "app03"
SLAB_CLASS = 9
SAMPLES = 20


def run(scale: float = FULL_SCALE, seed: int = 0) -> ExperimentResult:
    trace = load_workload("memcachier", scale=scale, seed=seed, apps=[3])
    curves, frequencies = profile_app_classes(trace.compiled_for(APP))
    if SLAB_CLASS in curves:
        class_index = SLAB_CLASS
    else:  # tiny scales can merge the large class; take the largest seen
        class_index = max(curves)
    curve = curves[class_index].resample(SAMPLES + 1)
    result = ExperimentResult(
        experiment_id="fig1",
        title=f"Hit rate curve, {APP} slab class {class_index}",
        headers=["queue_items", "hit_rate"],
        paper_reference="Figure 1",
    )
    for size, rate in zip(curve.sizes, curve.hit_rates):
        result.rows.append([int(size), float(rate)])
    concave = curves[class_index].is_concave(tolerance=0.02)
    result.notes = (
        f"GETs profiled: {frequencies[class_index]}; curve is "
        f"{'concave (no cliff), matching the paper' if concave else 'NOT concave'}"
    )
    return result
