"""Table 7: throughput slowdown when the cache is full and CPU-bound.

Unique-key (all-miss) streams at three GET/SET mixes -- the Facebook
production mix, 50/50 and 10/90 -- comparing Cliffhanger's modeled
throughput against stock first-come-first-serve. Paper values: 1.5%,
3% and 3.7% slowdown.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult
from repro.perfmodel.microbench import measure_throughput_slowdown


def run(scale: float = 1.0, seed: int = 0) -> ExperimentResult:
    rows = measure_throughput_slowdown(
        num_requests=max(4000, int(30_000 * scale)), seed=seed
    )
    result = ExperimentResult(
        experiment_id="tab7",
        title="Throughput slowdown, cache full (cost model, %)",
        headers=[
            "pct_gets",
            "pct_sets",
            "model_slowdown_pct",
            "wallclock_slowdown_pct",
        ],
        paper_reference="Table 7",
    )
    for row in rows:
        result.rows.append(
            [
                row["get_pct"],
                row["set_pct"],
                row["slowdown_pct"],
                row["wall_slowdown_pct"],
            ]
        )
    result.notes = (
        "paper: 1.5% / 3% / 3.7%; slowdown grows with SET share because "
        "SETs do the shadow-queue allocation work"
    )
    return result
