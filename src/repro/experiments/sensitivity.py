"""Section 5.3 ablation: credit size and shadow-queue size sensitivity.

Sweeps the two constants the storage designer must pick -- the credit
granted per shadow hit and the hill-climbing shadow-queue length -- on a
cliff application, plus the resize-on-miss anti-thrashing choice.
Paper findings being checked:

* 1-4 KB credits give the highest hit rates; much larger credits cause
  allocation oscillation;
* shadow queues of ~1 MB suffice ("little variance ... over 1 MB").
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult
from repro.sim import FULL_SCALE, Scenario, Sweep, load_workload, run_scenario

APP_INDEX = 19
CREDITS = (1024, 4096, 16384, 131072)
SHADOWS = (256 << 10, 1 << 20, 4 << 20)


def run(scale: float = FULL_SCALE, seed: int = 0) -> ExperimentResult:
    trace = load_workload(
        "memcachier", scale=scale, seed=seed, apps=[APP_INDEX]
    )
    app = trace.app_names[0]
    base = Scenario(
        scheme="cliffhanger",
        workload="memcachier",
        workload_params={"apps": [APP_INDEX]},
        scale=scale,
        seed=seed,
    )
    result = ExperimentResult(
        experiment_id="sensitivity",
        title="Credit / shadow-queue sensitivity (Cliffhanger, app19)",
        headers=[
            "credit_bytes",
            "shadow_bytes",
            "resize_on_miss",
            "hit_rate",
        ],
        paper_reference="Section 5.3",
    )
    sweep = Sweep(
        base=base,
        axes={
            "engine_overrides.credit_bytes": [float(c) for c in CREDITS],
            "engine_overrides.hill_shadow_bytes": [float(s) for s in SHADOWS],
        },
    )
    for grid_result in sweep.run().results:
        overrides = grid_result.scenario.engine_overrides
        result.rows.append(
            [
                int(overrides["credit_bytes"]),
                int(overrides["hill_shadow_bytes"]),
                True,
                grid_result.hit_rates[app],
            ]
        )
    # Resize-on-miss ablation at the paper's default constants.
    for resize_on_miss in (True, False):
        ablation = run_scenario(
            base.replace(
                engine_overrides={"resize_on_miss": resize_on_miss}
            )
        )
        result.rows.append(
            [4096, 1 << 20, resize_on_miss, ablation.hit_rates[app]]
        )
    result.notes = (
        "expected: small credits (1-4KB) at or near the best hit rate; "
        "very large credits degrade; shadow size beyond 1MB changes little"
    )
    return result
