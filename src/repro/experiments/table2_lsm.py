"""Table 2: slab allocation vs log-structured memory vs the solver.

Applications 3-5 under (a) the stock slab allocator, (b) an idealized
log-structured store (one global LRU at 100% utilization) and (c) the
Dynacache solver's slab plan. Paper shape: LSM beats the default slab
allocator, but an optimized slab allocation can beat even 100%-utilization
LSM (application 5), because a global LRU still lets large items displace
small ones.
"""

from __future__ import annotations

from repro.experiments.common import (
    ExperimentResult,
    FULL_SCALE,
    load_trace,
    replay_apps,
    solver_plan_for_app,
)

APPS = (3, 4, 5)


def run(scale: float = FULL_SCALE, seed: int = 0) -> ExperimentResult:
    trace = load_trace(scale=scale, seed=seed, apps=list(APPS))
    names = trace.app_names
    _, default_stats = replay_apps(trace, "default")
    _, lsm_stats = replay_apps(trace, "lsm")
    plans = {app: solver_plan_for_app(trace, app) for app in names}
    _, solver_stats = replay_apps(trace, "planned", plans=plans)
    result = ExperimentResult(
        experiment_id="tab2",
        title="Hit rates: slab default vs log-structured vs solver",
        headers=[
            "app",
            "default_hit_rate",
            "lsm_hit_rate",
            "solver_hit_rate",
        ],
        paper_reference="Table 2",
    )
    for app in names:
        result.rows.append(
            [
                app,
                default_stats.app_hit_rate(app),
                lsm_stats.app_hit_rate(app),
                solver_stats.app_hit_rate(app),
            ]
        )
    result.notes = (
        "LSM simulated at 100% memory utilization (global byte-weighted "
        "LRU; no such scheme exists in practice)"
    )
    return result
