"""Table 2: slab allocation vs log-structured memory vs the solver.

Applications 3-5 under (a) the stock slab allocator, (b) an idealized
log-structured store (one global LRU at 100% utilization) and (c) the
Dynacache solver's slab plan. Paper shape: LSM beats the default slab
allocator, but an optimized slab allocation can beat even 100%-utilization
LSM (application 5), because a global LRU still lets large items displace
small ones.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult
from repro.sim import FULL_SCALE, Scenario, load_workload, run_scenario

APPS = (3, 4, 5)


def run(scale: float = FULL_SCALE, seed: int = 0) -> ExperimentResult:
    trace = load_workload(
        "memcachier", scale=scale, seed=seed, apps=list(APPS)
    )
    names = trace.app_names
    base = Scenario(
        workload="memcachier",
        workload_params={"apps": list(APPS)},
        scale=scale,
        seed=seed,
    )
    default = run_scenario(base.replace(scheme="default"))
    lsm = run_scenario(base.replace(scheme="lsm"))
    solver = run_scenario(base.replace(scheme="planned", plans="solver"))
    result = ExperimentResult(
        experiment_id="tab2",
        title="Hit rates: slab default vs log-structured vs solver",
        headers=[
            "app",
            "default_hit_rate",
            "lsm_hit_rate",
            "solver_hit_rate",
        ],
        paper_reference="Table 2",
    )
    for app in names:
        result.rows.append(
            [
                app,
                default.hit_rates[app],
                lsm.hit_rates[app],
                solver.hit_rates[app],
            ]
        )
    result.notes = (
        "LSM simulated at 100% memory utilization (global byte-weighted "
        "LRU; no such scheme exists in practice)"
    )
    return result
