"""Table 5 (and the ARC comparison of section 5.5): eviction schemes.

Applications 3-5 under: plain LRU (original), Facebook's mid-insertion
scheme, ARC, Cliffhanger on LRU, and hill climbing on the Facebook
policy ("Cliffhanger + Facebook" -- cliff scaling assumes LRU rank
semantics, so the combination uses the hill-climbing half, which is the
part that composes with arbitrary eviction policies; see DESIGN.md).

Paper shape: Facebook > LRU >= ARC (ARC shows no improvement on these
traces), and Cliffhanger beats both plain schemes.
"""

from __future__ import annotations

from repro.experiments.common import (
    ExperimentResult,
    FULL_SCALE,
    load_trace,
    replay_apps,
)

APPS = (3, 4, 5)


def run(scale: float = FULL_SCALE, seed: int = 0) -> ExperimentResult:
    trace = load_trace(scale=scale, seed=seed, apps=list(APPS))
    names = trace.app_names
    columns = [
        ("lru", "default", {}),
        ("facebook", "default", {"policy": "facebook"}),
        ("arc", "default", {"policy": "arc"}),
        ("cliffhanger+lru", "cliffhanger", {}),
        ("cliffhanger+facebook", "hill", {"policy": "facebook"}),
    ]
    stats_by_column = {}
    for column_name, scheme, extra in columns:
        _, stats = replay_apps(trace, scheme, seed=seed, **extra)
        stats_by_column[column_name] = stats
    result = ExperimentResult(
        experiment_id="tab5",
        title="Eviction schemes: LRU vs Facebook vs ARC vs Cliffhanger",
        headers=["app"] + [name for name, _, _ in columns],
        paper_reference="Table 5 + section 5.5 (ARC)",
    )
    for app in names:
        result.rows.append(
            [app]
            + [
                stats_by_column[name].app_hit_rate(app)
                for name, _, _ in columns
            ]
        )
    result.notes = (
        "expected: facebook >= lru, arc ~= lru (no gain), cliffhanger "
        "columns highest"
    )
    return result
