"""Table 5 (and the ARC comparison of section 5.5): eviction schemes.

Applications 3-5 under: plain LRU (original), Facebook's mid-insertion
scheme, ARC, Cliffhanger on LRU, and hill climbing on the Facebook
policy ("Cliffhanger + Facebook" -- cliff scaling assumes LRU rank
semantics, so the combination uses the hill-climbing half, which is the
part that composes with arbitrary eviction policies; see DESIGN.md).

Paper shape: Facebook > LRU >= ARC (ARC shows no improvement on these
traces), and Cliffhanger beats both plain schemes.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult
from repro.sim import FULL_SCALE, Scenario, load_workload, run_scenario

APPS = (3, 4, 5)


def run(scale: float = FULL_SCALE, seed: int = 0) -> ExperimentResult:
    trace = load_workload(
        "memcachier", scale=scale, seed=seed, apps=list(APPS)
    )
    names = trace.app_names
    base = Scenario(
        workload="memcachier",
        workload_params={"apps": list(APPS)},
        scale=scale,
        seed=seed,
    )
    columns = [
        ("lru", "default", "lru"),
        ("facebook", "default", "facebook"),
        ("arc", "default", "arc"),
        ("cliffhanger+lru", "cliffhanger", "lru"),
        ("cliffhanger+facebook", "hill", "facebook"),
    ]
    results_by_column = {}
    for column_name, scheme, policy in columns:
        results_by_column[column_name] = run_scenario(
            base.replace(scheme=scheme, policy=policy)
        )
    result = ExperimentResult(
        experiment_id="tab5",
        title="Eviction schemes: LRU vs Facebook vs ARC vs Cliffhanger",
        headers=["app"] + [name for name, _, _ in columns],
        paper_reference="Table 5 + section 5.5 (ARC)",
    )
    for app in names:
        result.rows.append(
            [app]
            + [
                results_by_column[name].hit_rates[app]
                for name, _, _ in columns
            ]
        )
    result.notes = (
        "expected: facebook >= lru, arc ~= lru (no gain), cliffhanger "
        "columns highest"
    )
    return result
