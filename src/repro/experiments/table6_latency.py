"""Table 6: latency overhead in the all-miss worst case.

Replays the unique-key stream (everything misses, every operation touches
shadow queues) through the hill-climbing and combined engines and reports
the modeled per-request latency overhead vs stock first-come-first-serve.
Paper values: 0-0.8% on hits, 1.4-4.8% on misses.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult
from repro.perfmodel.microbench import measure_latency_overhead


def run(scale: float = 1.0, seed: int = 0) -> ExperimentResult:
    num_requests = max(4000, int(30_000 * scale))
    miss_overheads = measure_latency_overhead(
        num_requests=num_requests, all_miss=True, seed=seed
    )
    hit_overheads = measure_latency_overhead(
        num_requests=num_requests, all_miss=False, seed=seed
    )
    result = ExperimentResult(
        experiment_id="tab6",
        title="Latency overhead vs default (cost model, %)",
        headers=["algorithm", "operation", "cache_hit_pct", "cache_miss_pct"],
        paper_reference="Table 6",
    )
    label = {"hill-climbing": "Hill Climbing", "cliffhanger": "Cliffhanger"}
    for algorithm in ("hill-climbing", "cliffhanger"):
        for op in ("get", "set"):
            result.rows.append(
                [
                    label[algorithm],
                    op.upper(),
                    hit_overheads[algorithm][op],
                    miss_overheads[algorithm][op],
                ]
            )
    result.notes = (
        "paper: hill climbing 0%/1.4% (GET), 0%/4.7% (SET); cliffhanger "
        "0.8%/1.4% (GET), 0.8%/4.8% (SET)"
    )
    return result
