"""Command-line entry point for the experiment suite.

Usage::

    python -m repro.experiments fig6 --scale 0.1
    python -m repro.experiments all --scale 0.05 --out results/
    cliffhanger-experiments tab4

Results are printed as plain-text tables and, with ``--out``, also saved
as JSON for EXPERIMENTS.md bookkeeping.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path
from typing import List, Optional

from repro.experiments.registry import REGISTRY, get_runner, list_experiments


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="cliffhanger-experiments",
        description="Reproduce the Cliffhanger paper's tables and figures.",
    )
    parser.add_argument(
        "experiment",
        help=f"experiment id or 'all'; known: {', '.join(list_experiments())}",
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=None,
        help="trace scale (default: each experiment's full-run default)",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--out", type=Path, default=None, help="directory for JSON results"
    )
    args = parser.parse_args(argv)

    ids = list_experiments() if args.experiment == "all" else [args.experiment]
    for experiment_id in ids:
        runner = get_runner(experiment_id)
        kwargs = {"seed": args.seed}
        if args.scale is not None:
            kwargs["scale"] = args.scale
        started = time.perf_counter()
        result = runner(**kwargs)
        elapsed = time.perf_counter() - started
        print(result.render())
        print(f"[{experiment_id} finished in {elapsed:.1f}s]")
        print()
        if args.out is not None:
            path = result.save(args.out)
            print(f"saved {path}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
