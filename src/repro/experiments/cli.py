"""Command-line entry point for the experiment suite and the Scenario API.

Usage::

    # Paper experiments (legacy spelling still works):
    python -m repro.experiments run fig6 --scale 0.1
    python -m repro.experiments all --scale 0.05 --out results/

    # Declarative scenarios and sweeps (JSON specs):
    python -m repro.experiments run scenario.json
    python -m repro.experiments run '{"scheme": "cliffhanger", "scale": 0.02}'
    python -m repro.experiments sweep sweep.json --workers 4

    # Discovery:
    python -m repro.experiments --list

Configuration mistakes (unknown experiment/scheme/workload, malformed
specs) exit with status 2 and a one-line message instead of a traceback.
Results are printed as plain-text tables and, with ``--out``, also saved
as JSON.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import List, Optional

from repro.common.errors import ConfigurationError
from repro.experiments.registry import REGISTRY, get_runner, list_experiments
from repro.sim import (
    Scenario,
    list_schemes,
    list_workloads,
    run_scenario,
    run_sweep,
)


#: One-line notes rendered by ``--list``. The ``registry-doc-sync``
#: lint rule cross-checks these tables against the @register_scheme /
#: @register_workload decorators: every registered name must be
#: documented here, and no note may outlive its registration.
SCHEME_NOTES = {
    "default": "slab FCFS (memcached-style first-come first-serve)",
    "planned": "static per-class plan (Dynacache solver output)",
    "lsm": "single global LRU over one log (no slab classes)",
    "hill": "shadow-queue hill climbing across slab classes",
    "cliff-only": "Talus-style cliff scaling, no hill climbing",
    "hill-only": "Cliffhanger's climber without cliff scaling",
    "cliffhanger": "full Cliffhanger: cliff scaling + hill climbing",
}

WORKLOAD_NOTES = {
    "memcachier": "the paper's 20-app Memcachier-derived trace mix",
    "zipf": "stationary per-app Zipf streams (alpha, working set)",
    "facebook": "Facebook-style key/value size and popularity model",
    "zipf-phases": "Zipf tenants whose alpha/working set shift in phases",
    "flash-crowd": "Zipf tenants plus a time-windowed hot-key overlay",
}


def _print_listing() -> None:
    print("experiments:")
    for experiment_id in list_experiments():
        print(f"  {experiment_id}")
    print("schemes:")
    for scheme in list_schemes():
        note = SCHEME_NOTES.get(scheme)
        print(f"  {scheme}" + (f": {note}" if note else ""))
    print("workloads:")
    for workload in list_workloads():
        note = WORKLOAD_NOTES.get(workload)
        print(f"  {workload}" + (f": {note}" if note else ""))
    print("scenario blocks:")
    print(
        "  cluster: shards, hash_seed, replication, virtual_nodes, "
        "partitioned_replay, parallel_workers"
    )
    print(
        "    (partitioned_replay: false selects the legacy per-request "
        "routing loop,"
    )
    print(
        "     kept as the bit-exactness oracle; default true replays "
        "per-shard runs"
    )
    print("     from a cached vectorized routing plan)")
    print(
        "    (parallel_workers: >= 2 fans per-shard replay loops across "
        "worker processes"
    )
    print(
        "     over shared-memory columns, bit-identical to serial; "
        "0 = serial, default)"
    )
    print(
        "  rebalance: epoch_requests, credit_bytes, min_shard_fraction, "
        "policy (shadow|load)"
    )
    print(
        "  faults: events [{kind (crash|restart), shard, at}, ...], "
        "policy (failover|miss-through),"
    )
    print(
        "    sample_requests (0 = auto), recovery_epsilon; deterministic "
        "crash/restart schedule"
    )
    print(
        "    over the cluster's shards -- failover reroutes keys to live "
        "ring successors,"
    )
    print(
        "    miss-through counts dead-shard requests as misses; requires "
        "a cluster block"
    )
    print(
        "  serve: rate, duration_s, arrivals (poisson|fixed), "
        "backpressure (queue|shed),"
    )
    print(
        "    connections, queue_depth, max_batch, transport (memory|tcp), "
        "queue_deadline_s"
    )
    print(
        "    (shed queued commands older than this; 0 = never), "
        "max_inflight (per-connection"
    )
    print(
        "    cap; 0 = unlimited), retry {max_attempts, base_backoff_s, "
        "max_backoff_s, jitter,"
    )
    print(
        "    deadline_s, budget, hedge_after_s}; requires a cluster "
        "block. Serves the trace"
    )
    print(
        "    live through the asyncio memcached-style server (open-loop "
        "load, latency"
    )
    print(
        "    percentiles, shed counts); 'queue' blocks readers when the "
        "request queue fills,"
    )
    print(
        "    'shed' answers SERVER_ERROR busy. Combined with a faults "
        "block the events fire"
    )
    print(
        "    live on the request-count axis and the serve report grows "
        "recovery metrics plus"
    )
    print(
        "    a p99-during-outage latency timeline. Standalone entry "
        "point: python -m repro.serve"
    )
    print("    (repro-serve)")


def _load_spec(target: str) -> dict:
    """Parse a JSON spec from an inline string, a file path, or stdin."""
    if target == "-":
        text = sys.stdin.read()
    elif target.lstrip().startswith("{"):
        text = target
    else:
        path = Path(target)
        if not path.exists():
            raise ConfigurationError(
                f"{target!r} is not a known experiment id or spec file; "
                f"known experiments: {', '.join(list_experiments())}"
            )
        text = path.read_text(encoding="utf-8")
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ConfigurationError(f"invalid JSON spec: {exc}") from None
    if not isinstance(payload, dict):
        raise ConfigurationError("spec must be a JSON object")
    return payload


def _run_experiments(args: argparse.Namespace) -> int:
    ids = list_experiments() if args.target == "all" else [args.target]
    for experiment_id in ids:
        runner = get_runner(experiment_id)
        kwargs = {"seed": args.seed if args.seed is not None else 0}
        if args.scale is not None:
            kwargs["scale"] = args.scale
        started = time.perf_counter()
        result = runner(**kwargs)
        elapsed = time.perf_counter() - started
        print(result.render())
        print(f"[{experiment_id} finished in {elapsed:.1f}s]")
        print()
        if args.out is not None:
            path = result.save(args.out)
            print(f"saved {path}")
    return 0


def _run_scenario_spec(args: argparse.Namespace) -> int:
    spec = _load_spec(args.target)
    if args.scale is not None:
        spec["scale"] = args.scale
    if args.seed is not None:
        spec["seed"] = args.seed
    scenario = Scenario.from_dict(spec)
    result = run_scenario(scenario)
    print(result.render())
    if args.out is not None:
        args.out.mkdir(parents=True, exist_ok=True)
        path = args.out / "scenario.json"
        path.write_text(result.to_json(indent=2), encoding="utf-8")
        print(f"saved {path}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    if args.target == "all" or args.target in REGISTRY:
        return _run_experiments(args)
    return _run_scenario_spec(args)


def _cmd_sweep(args: argparse.Namespace) -> int:
    spec = _load_spec(args.target)
    result = run_sweep(spec, workers=args.workers)
    print(result.render())
    if args.out is not None:
        args.out.mkdir(parents=True, exist_ok=True)
        path = args.out / "sweep.json"
        path.write_text(
            json.dumps(result.to_dict(), indent=2), encoding="utf-8"
        )
        print(f"saved {path}")
    return 0


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="cliffhanger-experiments",
        description=(
            "Reproduce the Cliffhanger paper's tables and figures, run "
            "declarative scenarios, and execute parallel sweeps."
        ),
    )
    parser.add_argument(
        "--list",
        action="store_true",
        dest="list_entries",
        help="enumerate experiments, schemes and workloads, then exit",
    )
    sub = parser.add_subparsers(dest="command")

    run_parser = sub.add_parser(
        "run", help="run one experiment id, 'all', or a scenario JSON spec"
    )
    run_parser.add_argument(
        "target",
        help=(
            "experiment id, 'all', a scenario JSON file, inline JSON, or "
            f"'-' for stdin; known experiments: {', '.join(list_experiments())}"
        ),
    )
    run_parser.add_argument(
        "--scale",
        type=float,
        default=None,
        help="trace scale (default: each experiment's full-run default)",
    )
    run_parser.add_argument(
        "--seed",
        type=int,
        default=None,
        help="seed override (default: the spec's seed, else 0)",
    )
    run_parser.add_argument(
        "--out", type=Path, default=None, help="directory for JSON results"
    )
    run_parser.set_defaults(handler=_cmd_run)

    sweep_parser = sub.add_parser(
        "sweep", help="expand and run a sweep JSON spec"
    )
    sweep_parser.add_argument(
        "target", help="sweep JSON file, inline JSON, or '-' for stdin"
    )
    sweep_parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker processes (default: the spec's 'workers', else serial)",
    )
    sweep_parser.add_argument(
        "--out", type=Path, default=None, help="directory for JSON results"
    )
    sweep_parser.set_defaults(handler=_cmd_sweep)

    list_parser = sub.add_parser(
        "list", help="enumerate experiments, schemes and workloads"
    )
    list_parser.set_defaults(handler=None)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    # Back-compat: `python -m repro.experiments fig6 --scale 0.1` is
    # sugar for `run fig6 --scale 0.1`.
    if argv and argv[0] not in ("run", "sweep", "list", "--list", "-h", "--help"):
        argv = ["run"] + argv
    parser = _build_parser()
    args = parser.parse_args(argv)
    try:
        if args.list_entries or args.command == "list":
            _print_listing()
            return 0
        if args.command is None:
            parser.print_usage()
            return 0
        return args.handler(args)
    except ConfigurationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
