"""Shared experiment harness.

Everything the per-figure runners need: engine factories keyed by scheme
name, trace replay with per-app statistics, per-slab-class hit-rate-curve
profiling (exact or Mimir-estimated), solver planning, miss-reduction
arithmetic and plain-text table rendering.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.allocation.dynacache import DynacacheSolver
from repro.allocation.lookahead import LookAheadAllocator
from repro.cache.engines import (
    Engine,
    FirstComeFirstServeEngine,
    PlannedEngine,
)
from repro.cache.item import CacheItem
from repro.cache.log_structured import GlobalLRUEngine
from repro.cache.server import CacheServer
from repro.cache.slabs import SlabGeometry
from repro.cache.stats import StatsRegistry
from repro.common.errors import ConfigurationError
from repro.core.engine import CliffhangerEngine, HillClimbEngine
from repro.cache.stats import OP_GET
from repro.profiling.hrc import HitRateCurve
from repro.profiling.mimir import MimirProfiler
from repro.profiling.stack_distance import StackDistanceProfiler
from repro.workloads.compiled import GLOBAL_TRACE_CACHE, CompiledTrace
from repro.workloads.memcachier import MemcachierTrace, build_memcachier_trace
from repro.workloads.trace import Request

GEOMETRY = SlabGeometry.default()

#: Default trace scale for full runs and for the pytest benchmarks.
FULL_SCALE = 0.25
BENCH_SCALE = 0.03


# ---------------------------------------------------------------------------
# Cached, compiled traces
# ---------------------------------------------------------------------------


@dataclass
class CachedTrace:
    """A :class:`MemcachierTrace`-compatible facade over a compiled trace.

    Metadata (reservations, request counts, specs) comes from the cheap
    analytic build; the request stream itself is a cached
    :class:`CompiledTrace`, so repeated experiment runs -- and the ~17
    runners sharing a scale/seed -- never regenerate it.
    """

    meta: MemcachierTrace
    compiled: CompiledTrace

    @property
    def scale(self) -> float:
        return self.meta.scale

    @property
    def seed(self) -> int:
        return self.meta.seed

    @property
    def total_requests(self) -> int:
        return self.meta.total_requests

    @property
    def reservations(self) -> Dict[str, float]:
        return self.meta.reservations

    @property
    def requests_per_app(self) -> Dict[str, int]:
        return self.meta.requests_per_app

    @property
    def specs(self):
        return self.meta.specs

    @property
    def app_names(self) -> List[str]:
        return self.meta.app_names

    def requests(self):
        return self.compiled.iter_requests()

    def app_requests(self, app: str):
        return self.compiled_for(app).iter_requests()

    def compiled_for(self, app: str) -> CompiledTrace:
        """One app's compiled sub-trace (stable-merge filtering keeps the
        per-app order identical to regenerating the app's stream)."""
        return self.compiled.for_app(app)


def load_trace(
    scale: float = FULL_SCALE,
    seed: int = 0,
    apps: Optional[List[int]] = None,
    total_requests: Optional[int] = None,
) -> CachedTrace:
    """Build (or fetch from cache) a compiled synthetic Memcachier trace."""
    meta = build_memcachier_trace(
        scale=scale, seed=seed, apps=apps, total_requests=total_requests
    )
    app_part = "all" if apps is None else "-".join(str(a) for a in sorted(apps))
    key = (
        f"memcachier-scale{scale!r}-seed{seed}-apps{app_part}"
        f"-total{total_requests if total_requests is not None else 'auto'}"
    )
    compiled = GLOBAL_TRACE_CACHE.get_or_compile(key, meta.requests, GEOMETRY)
    return CachedTrace(meta, compiled)


@dataclass
class ExperimentResult:
    """A rendered experiment: headers + rows + provenance notes."""

    experiment_id: str
    title: str
    headers: List[str]
    rows: List[List[object]] = field(default_factory=list)
    notes: str = ""
    paper_reference: str = ""

    def render(self) -> str:
        """Plain-text aligned table, like the paper's tables."""
        table = [self.headers] + [
            [_format_cell(cell) for cell in row] for row in self.rows
        ]
        widths = [
            max(len(str(row[col])) for row in table)
            for col in range(len(self.headers))
        ]
        lines = [f"== {self.experiment_id}: {self.title} =="]
        if self.paper_reference:
            lines.append(f"(paper: {self.paper_reference})")
        header = "  ".join(
            str(cell).ljust(widths[i])
            for i, cell in enumerate(self.headers)
        )
        lines.append(header)
        lines.append("-" * len(header))
        for row in table[1:]:
            lines.append(
                "  ".join(
                    str(cell).ljust(widths[i]) for i, cell in enumerate(row)
                )
            )
        if self.notes:
            lines.append(f"notes: {self.notes}")
        return "\n".join(lines)

    def to_json(self) -> str:
        return json.dumps(
            {
                "experiment_id": self.experiment_id,
                "title": self.title,
                "headers": self.headers,
                "rows": self.rows,
                "notes": self.notes,
                "paper_reference": self.paper_reference,
            },
            indent=2,
            default=str,
        )

    def save(self, directory: Path) -> Path:
        directory.mkdir(parents=True, exist_ok=True)
        path = directory / f"{self.experiment_id}.json"
        path.write_text(self.to_json(), encoding="utf-8")
        return path


def _format_cell(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.3f}"
    return str(cell)


# ---------------------------------------------------------------------------
# Engine schemes
# ---------------------------------------------------------------------------


def scaled_cliff_kwargs(scale: float) -> Dict[str, int]:
    """Shrink probe/gate constants along with queue sizes at small scale.

    At full scale the paper constants apply (128-item probes, 1000-item
    gate); scaled-down traces shrink queues proportionally, so keeping
    the constants would disable cliff scaling entirely.
    """
    if scale >= 0.5:
        return {}
    return {
        "probe_items": max(12, int(128 * scale)),
        "min_cliff_items": max(100, int(600 * scale)),
        # Credits move a fixed fraction of (scaled) memory per shadow
        # hit; shadow-hit counts scale with the request count, so the
        # credit must scale with memory to converge in the same number
        # of trace passes.
        "credit_bytes": max(512.0, 4096 * scale * 2),
        # The shadow approximates the *local* gradient only while it is
        # small relative to the queue (paper ratio: 1 MB shadows on
        # ~50 MB applications); scale it with the queues or the shadow
        # hit rate measures total tail mass instead.
        "hill_shadow_bytes": max(16 << 10, int((1 << 20) * scale)),
    }


def make_engine(
    scheme: str,
    app: str,
    budget_bytes: float,
    scale: float = 1.0,
    seed: int = 0,
    plan: Optional[Dict[int, float]] = None,
    policy: str = "lru",
    geometry: SlabGeometry = GEOMETRY,
    **overrides,
) -> Engine:
    """Instantiate an engine by scheme name.

    Schemes: ``default`` (stock FCFS), ``planned`` (a solver plan),
    ``lsm`` (global LRU), ``hill`` (Algorithm 1 only, any policy),
    ``cliff-only``, ``hill-only`` and ``cliffhanger`` (the combined
    system).
    """
    if scheme == "default":
        return FirstComeFirstServeEngine(
            app, budget_bytes, geometry, policy=policy
        )
    if scheme == "planned":
        if plan is None:
            raise ConfigurationError("planned engine needs a plan")
        return PlannedEngine(app, budget_bytes, geometry, plan, policy=policy)
    if scheme == "lsm":
        return GlobalLRUEngine(app, budget_bytes, geometry, policy=policy)
    if scheme == "hill":
        scaled = scaled_cliff_kwargs(scale)
        hill_kwargs = {}
        if "credit_bytes" in scaled:
            hill_kwargs["credit_bytes"] = scaled["credit_bytes"]
        if "hill_shadow_bytes" in scaled:
            hill_kwargs["shadow_bytes"] = scaled["hill_shadow_bytes"]
        hill_kwargs.update(overrides)
        return HillClimbEngine(
            app,
            budget_bytes,
            geometry,
            policy=policy,
            seed=seed,
            **hill_kwargs,
        )
    kwargs = dict(scaled_cliff_kwargs(scale))
    kwargs.update(overrides)
    if scheme == "cliff-only":
        return CliffhangerEngine(
            app,
            budget_bytes,
            geometry,
            enable_hill_climbing=False,
            seed=seed,
            **kwargs,
        )
    if scheme == "hill-only":
        return CliffhangerEngine(
            app,
            budget_bytes,
            geometry,
            enable_cliff_scaling=False,
            seed=seed,
            **kwargs,
        )
    if scheme == "cliffhanger":
        return CliffhangerEngine(
            app, budget_bytes, geometry, seed=seed, **kwargs
        )
    raise ConfigurationError(f"unknown scheme {scheme!r}")


# ---------------------------------------------------------------------------
# Replay helpers
# ---------------------------------------------------------------------------


def replay_apps(
    trace: MemcachierTrace,
    scheme: str,
    apps: Optional[Sequence[str]] = None,
    plans: Optional[Dict[str, Dict[int, float]]] = None,
    budgets: Optional[Dict[str, float]] = None,
    policy: str = "lru",
    seed: int = 0,
    observer=None,
    **engine_overrides,
) -> Tuple[CacheServer, StatsRegistry]:
    """Replay the trace with one engine scheme for every app.

    Each application runs under its own engine with its own reservation
    (the Memcachier model). ``plans`` supplies per-app solver plans for
    the ``planned`` scheme; ``budgets`` overrides reservations.
    """
    chosen = list(apps) if apps is not None else trace.app_names
    server = CacheServer(GEOMETRY)
    for app in chosen:
        budget = (
            budgets[app] if budgets else trace.reservations[app]
        )
        server.add_app(
            make_engine(
                scheme,
                app,
                budget,
                scale=trace.scale,
                seed=seed,
                plan=plans.get(app) if plans else None,
                policy=policy,
                **engine_overrides,
            )
        )
    if observer is not None:
        server.add_observer(observer)
    compiled = getattr(trace, "compiled", None)
    if compiled is not None:
        if set(chosen) != set(trace.app_names):
            compiled = compiled.select_apps(chosen)
        server.replay_compiled(compiled)
        return server, server.stats
    if set(chosen) == set(trace.app_names):
        stream: Iterable[Request] = trace.requests()
    else:
        from repro.workloads.trace import merge_by_time

        stream = merge_by_time([trace.app_requests(app) for app in chosen])
    server.replay(stream)
    return server, server.stats


def hit_rates_by_app(stats: StatsRegistry, apps: Sequence[str]) -> Dict[str, float]:
    return {app: stats.app_hit_rate(app) for app in apps}


def miss_reduction(base_hit_rate: float, new_hit_rate: float) -> float:
    """Fraction of the baseline's misses eliminated (can be negative)."""
    base_misses = 1.0 - base_hit_rate
    if base_misses <= 0:
        return 0.0
    return (new_hit_rate - base_hit_rate) / base_misses


# ---------------------------------------------------------------------------
# Profiling and solver planning
# ---------------------------------------------------------------------------


def classify(request: Request) -> int:
    """Slab class of one request (shared with the engines)."""
    item = CacheItem(
        key=request.key,
        value_size=request.value_size,
        key_size=request.key_size,
    )
    return GEOMETRY.class_for_size(item.total_size)


def profile_app_classes(
    requests: Union[Iterable[Request], CompiledTrace],
    estimator: str = "exact",
) -> Tuple[Dict[int, HitRateCurve], Dict[int, int]]:
    """Per-slab-class hit-rate curves (size axis: items) and GET counts.

    ``requests`` may be a plain request iterable or a
    :class:`CompiledTrace` (whose precomputed slab classes skip the
    per-request :func:`classify` allocation). ``estimator``: ``exact``
    uses Mattson stack distances; ``mimir`` the bucket estimator Dynacache
    really used (coarser, reproducing its estimation error).
    """
    if estimator == "exact":
        make = StackDistanceProfiler
    elif estimator == "mimir":
        make = MimirProfiler
    else:
        raise ConfigurationError(f"unknown estimator {estimator!r}")
    profilers: Dict[int, object] = {}
    frequencies: Dict[int, int] = {}
    if isinstance(requests, CompiledTrace):
        trace = requests
        for key, op, class_index in zip(
            trace.keys, trace.op_codes, trace.slab_classes
        ):
            if op != OP_GET:
                continue
            profiler = profilers.get(class_index)
            if profiler is None:
                profiler = profilers.setdefault(class_index, make())
            profiler.record(key)
            frequencies[class_index] = frequencies.get(class_index, 0) + 1
    else:
        for request in requests:
            if request.op != "get":
                continue
            class_index = classify(request)
            profiler = profilers.get(class_index)
            if profiler is None:
                profiler = profilers.setdefault(class_index, make())
            profiler.record(request.key)
            frequencies[class_index] = frequencies.get(class_index, 0) + 1
    curves = {
        class_index: HitRateCurve.from_stack_distances(profiler.distances)
        for class_index, profiler in profilers.items()
        if len(profiler.distances) >= 2
    }
    return curves, {c: frequencies[c] for c in curves}


def solver_plan_for_app(
    trace: MemcachierTrace,
    app: str,
    estimator: str = "mimir",
    allocator: str = "dynacache",
) -> Dict[int, float]:
    """Run the Dynacache solver on one app's week of requests.

    Returns a byte plan per slab class, summing to the app's reservation.
    """
    if isinstance(trace, CachedTrace):
        app_stream: Union[Iterable[Request], CompiledTrace] = (
            trace.compiled_for(app)
        )
    else:
        app_stream = trace.app_requests(app)
    curves_items, freqs = profile_app_classes(
        app_stream, estimator=estimator
    )
    if not curves_items:
        return {}
    budget = trace.reservations[app]
    curves_bytes = {
        class_index: curve.scale_sizes(
            GEOMETRY.chunk_size(class_index), unit="bytes"
        )
        for class_index, curve in curves_items.items()
    }
    granularity = max(
        GEOMETRY.chunk_size(class_index) for class_index in curves_bytes
    )
    granularity = min(granularity, budget / max(1, len(curves_bytes)))
    granularity = max(granularity, 64.0)
    if allocator == "dynacache":
        solver = DynacacheSolver(granularity=granularity)
    elif allocator == "lookahead":
        solver = LookAheadAllocator(granularity=granularity)
    else:
        raise ConfigurationError(f"unknown allocator {allocator!r}")
    plan = solver.allocate(curves_bytes, freqs, budget)
    return dict(plan.allocations)
