"""Shared experiment harness.

Since the Scenario API redesign this module is a thin layer over
:mod:`repro.sim`: the engine factory, trace loading, profiling and the
replay helper all dispatch through the scheme/workload registries, and
``replay_apps`` is a compatibility wrapper around
:func:`repro.sim.replay_on_trace`. What remains here is the experiment
bookkeeping itself: :class:`ExperimentResult` rendering/serialization and
miss-reduction arithmetic.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cache.server import CacheServer
from repro.cache.stats import StatsRegistry
from repro.sim import (
    BENCH_SCALE,
    FULL_SCALE,
    GEOMETRY,
    CachedTrace,
    Scenario,
    classify,
    load_workload,
    make_engine,
    miss_reduction,
    profile_app_classes,
    replay_on_trace,
    scaled_cliff_kwargs,
    solver_plan_for_app,
)

__all__ = [
    "BENCH_SCALE",
    "CachedTrace",
    "ExperimentResult",
    "FULL_SCALE",
    "GEOMETRY",
    "classify",
    "hit_rates_by_app",
    "load_trace",
    "make_engine",
    "miss_reduction",
    "profile_app_classes",
    "replay_apps",
    "scaled_cliff_kwargs",
    "solver_plan_for_app",
]


def load_trace(
    scale: float = FULL_SCALE,
    seed: int = 0,
    apps: Optional[List[int]] = None,
    total_requests: Optional[int] = None,
) -> CachedTrace:
    """Build (or fetch from cache) a compiled synthetic Memcachier trace."""
    return load_workload(
        "memcachier",
        scale=scale,
        seed=seed,
        apps=apps,
        total_requests=total_requests,
    )


@dataclass
class ExperimentResult:
    """A rendered experiment: headers + rows + provenance notes."""

    experiment_id: str
    title: str
    headers: List[str]
    rows: List[List[object]] = field(default_factory=list)
    notes: str = ""
    paper_reference: str = ""

    def render(self) -> str:
        """Plain-text aligned table, like the paper's tables."""
        table = [self.headers] + [
            [_format_cell(cell) for cell in row] for row in self.rows
        ]
        widths = [
            max(len(str(row[col])) for row in table)
            for col in range(len(self.headers))
        ]
        lines = [f"== {self.experiment_id}: {self.title} =="]
        if self.paper_reference:
            lines.append(f"(paper: {self.paper_reference})")
        header = "  ".join(
            str(cell).ljust(widths[i])
            for i, cell in enumerate(self.headers)
        )
        lines.append(header)
        lines.append("-" * len(header))
        for row in table[1:]:
            lines.append(
                "  ".join(
                    str(cell).ljust(widths[i]) for i, cell in enumerate(row)
                )
            )
        if self.notes:
            lines.append(f"notes: {self.notes}")
        return "\n".join(lines)

    def to_json(self) -> str:
        return json.dumps(
            {
                "experiment_id": self.experiment_id,
                "title": self.title,
                "headers": self.headers,
                "rows": self.rows,
                "notes": self.notes,
                "paper_reference": self.paper_reference,
            },
            indent=2,
            default=str,
        )

    def save(self, directory: Path) -> Path:
        directory.mkdir(parents=True, exist_ok=True)
        path = directory / f"{self.experiment_id}.json"
        path.write_text(self.to_json(), encoding="utf-8")
        return path


def _format_cell(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.3f}"
    return str(cell)


# ---------------------------------------------------------------------------
# Replay helpers
# ---------------------------------------------------------------------------


def replay_apps(
    trace,
    scheme: str,
    apps: Optional[Sequence[str]] = None,
    plans: Optional[Dict[str, Dict[int, float]]] = None,
    budgets: Optional[Dict[str, float]] = None,
    policy: str = "lru",
    seed: int = 0,
    observer=None,
    **engine_overrides,
) -> Tuple[CacheServer, StatsRegistry]:
    """Replay an already-loaded trace with one engine scheme per app.

    Each application runs under its own engine with its own reservation
    (the Memcachier model). ``plans`` supplies per-app solver plans for
    the ``planned`` scheme; ``budgets`` overrides reservations and may
    be partial -- unlisted apps fall back to ``trace.reservations``.
    """
    scenario = Scenario(
        scheme=scheme,
        policy=policy,
        scale=trace.scale,
        seed=seed,
        apps=list(apps) if apps is not None else None,
        budgets=dict(budgets) if budgets is not None else None,
        plans=plans,
        engine_overrides=engine_overrides,
    )
    server, stats, _elapsed = replay_on_trace(scenario, trace, observer=observer)
    return server, stats


def hit_rates_by_app(stats: StatsRegistry, apps: Sequence[str]) -> Dict[str, float]:
    return {app: stats.app_hit_rate(app) for app in apps}
