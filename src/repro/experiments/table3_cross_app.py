"""Table 3: cross-application memory optimization (top-5 apps).

The Dynacache solver applied *across* applications sharing a server:
profile each app's byte-granularity hit-rate curve (byte-weighted stack
distances over its whole request stream), solve Eq. 1 over apps with the
combined reservation as the budget, re-run with the re-balanced
reservations. Paper shape: the over-provisioned giant (application 1)
donates memory to the starved application 2, whose hit rate jumps
(27.5% -> 38.6%) while the donor barely moves.
"""

from __future__ import annotations

from typing import Dict

from repro.allocation.dynacache import DynacacheSolver
from repro.experiments.common import ExperimentResult
from repro.profiling.hrc import HitRateCurve
from repro.profiling.stack_distance import StackDistanceProfiler
from repro.sim import FULL_SCALE, Scenario, load_workload, run_scenario

APPS = (1, 2, 3, 4, 5)


def _app_byte_curves(trace) -> Dict[str, HitRateCurve]:
    """Byte-weighted stack-distance curve per application."""
    curves = {}
    for app in trace.app_names:
        profiler = StackDistanceProfiler()
        gets = 0
        for request in trace.app_requests(app):
            if request.op != "get":
                continue
            gets += 1
            profiler.record(
                request.key,
                weight=float(request.key_size + request.value_size),
            )
        if gets >= 2:
            curves[app] = HitRateCurve.from_stack_distances(
                profiler.distances, unit="bytes"
            )
    return curves


def run(scale: float = FULL_SCALE, seed: int = 0) -> ExperimentResult:
    trace = load_workload(
        "memcachier", scale=scale, seed=seed, apps=list(APPS)
    )
    names = trace.app_names
    total_memory = sum(trace.reservations[app] for app in names)

    base = Scenario(
        workload="memcachier",
        workload_params={"apps": list(APPS)},
        scale=scale,
        seed=seed,
        scheme="default",
    )
    original = run_scenario(base)
    curves = _app_byte_curves(trace)
    frequencies = {
        app: sum(
            1 for r in trace.app_requests(app) if r.op == "get"
        )
        for app in names
    }
    solver = DynacacheSolver(granularity=max(4096.0, total_memory / 512))
    plan = solver.allocate(curves, frequencies, total_memory)
    new_budgets = {
        app: max(64 * 1024, plan.allocations.get(app, 0.0))
        for app in names
    }
    solved = run_scenario(base.replace(budgets=new_budgets))

    result = ExperimentResult(
        experiment_id="tab3",
        title="Cross-application optimization (top 5 apps)",
        headers=[
            "app",
            "orig_mem_pct",
            "solver_mem_pct",
            "orig_hit_rate",
            "solver_hit_rate",
        ],
        paper_reference="Table 3",
    )
    for app in names:
        result.rows.append(
            [
                app,
                trace.reservations[app] / total_memory * 100.0,
                new_budgets[app] / total_memory * 100.0,
                original.hit_rates[app],
                solved.hit_rates[app],
            ]
        )
    result.notes = (
        "expected shape: memory flows from over-provisioned to starved "
        "applications; the starved app's hit rate rises sharply"
    )
    return result
