"""Figure 9: hit rate over time while Cliffhanger scales a cliff.

Application 19's slab class 2 is pinned inside its performance cliff
(same protocol as Table 4); under the combined algorithm the windowed hit
rate should climb from its stuck level toward the concave hull and
stabilize (the paper shows ~70% rising to ~99.7% over about 30 minutes
of trace time; our synthetic cliff starts lower and converges over a
larger fraction of the compressed week).
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult
from repro.experiments.table4_combined import pinned_plan
from repro.sim import (
    FULL_SCALE,
    Scenario,
    build_server,
    classify,
    load_workload,
)

APP = "app19"
SLAB_CLASS = 2
WINDOWS = 30


def run(scale: float = FULL_SCALE, seed: int = 0) -> ExperimentResult:
    trace = load_workload("memcachier", scale=scale, seed=seed, apps=[19])
    plan = pinned_plan(trace, APP)
    budget = sum(plan.values())
    scenario = Scenario(
        scheme="cliffhanger",
        workload="memcachier",
        workload_params={"apps": [19]},
        scale=scale,
        seed=seed,
        budgets={APP: budget},
    )
    server = build_server(scenario, trace)

    samples = []  # (window_end, hits, gets)
    window = {"hits": 0, "gets": 0}

    def observer(request, outcome):
        if request.op != "get" or classify(request) != SLAB_CLASS:
            return
        window["gets"] += 1
        window["hits"] += 1 if outcome.hit else 0

    server.add_observer(observer)
    requests = list(trace.app_requests(APP))
    if not requests:
        raise RuntimeError("empty trace")
    span = requests[-1].time - requests[0].time
    width = span / WINDOWS
    boundary = requests[0].time + width
    for request in requests:
        while request.time >= boundary:
            samples.append((boundary, window["hits"], window["gets"]))
            window["hits"] = window["gets"] = 0
            boundary += width
        server.process(request)
    samples.append((boundary, window["hits"], window["gets"]))

    result = ExperimentResult(
        experiment_id="fig9",
        title=f"Hit rate over time, {APP} slab class {SLAB_CLASS}",
        headers=["window_end_s", "gets", "window_hit_rate"],
        paper_reference="Figure 9",
    )
    for end, hits, gets in samples:
        result.rows.append([int(end), gets, hits / gets if gets else 0.0])
    active = [row for row in result.rows if row[1] > 0]
    if len(active) >= 6:
        early = [row[2] for row in active[:3]]
        # The paper's Figure 9 covers a stable mid-week stretch (hours
        # 48-53); our synthetic app19 has a deliberate class-3 burst in
        # the last quarter (section 5.4 behaviour), so convergence is
        # judged on the stable window before it.
        stable = [
            row[2]
            for row in active[
                int(len(active) * 0.45): int(len(active) * 0.7)
            ]
        ]
        post_burst = [row[2] for row in active[-3:]]
        result.notes = (
            f"early mean {sum(early)/len(early):.3f} -> stable "
            f"(pre-burst) mean {sum(stable)/max(1, len(stable)):.3f} -> "
            f"post-burst mean {sum(post_burst)/len(post_burst):.3f}; "
            f"expected: climb while the pointers find the cliff (paper: "
            f"~0.70 -> ~0.997), then hill climbing trades memory to the "
            f"bursting class"
        )
    return result
