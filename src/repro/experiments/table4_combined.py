"""Table 4: hill climbing and cliff scaling compose (Application 19).

The paper pins Application 19's queues at 8000 items -- inside the
performance cliffs of both slab classes -- and compares default,
cliff-scaling-only, hill-climbing-only and the combined algorithm. We
reproduce the protocol: profile each class's exact hit-rate curve, pin
the default allocation at the midpoint of each class's cliff (a static
plan), and give every adaptive engine the same total budget.

Expected shape: cliff scaling lifts each pinned class toward its concave
hull; hill climbing re-balances memory when the class-3 burst arrives
(section 5.4); the combined algorithm is at least as good as either
("the algorithms have a cumulative hit rate benefit").
"""

from __future__ import annotations

from typing import Dict

from repro.experiments.common import ExperimentResult
from repro.sim import (
    FULL_SCALE,
    GEOMETRY,
    Scenario,
    load_workload,
    profile_app_classes,
    run_scenario,
)

APP = "app19"
#: (engine scheme, table column). The "default" column is the pinned
#: static plan (fixed per-class LRU queues, like the paper's 8000-item
#: queues); the adaptive schemes get the same total budget.
SCHEMES = (
    ("planned", "default"),
    ("cliff-only", "cliff scaling"),
    ("hill-only", "hill climbing"),
    ("cliffhanger", "combined"),
)


def pinned_plan(trace, app: str) -> Dict[int, float]:
    """Byte capacities pinning each cliff class mid-cliff.

    Classes without a detected cliff get the size achieving ~90% of
    their plateau (they are not the experiment's subject).
    """
    curves, _ = profile_app_classes(trace.compiled_for(app))
    plan: Dict[int, float] = {}
    for class_index, curve in curves.items():
        chunk = GEOMETRY.chunk_size(class_index)
        anchors = None
        cliffs = curve.cliffs(tolerance=0.02)
        if cliffs:
            anchors = max(cliffs, key=lambda ab: ab[1] - ab[0])
        if anchors:
            left, right = anchors
            items = left + 0.5 * (right - left)
        else:
            target = 0.9 * float(curve.hit_rates[-1])
            candidates = curve.sizes[curve.hit_rates >= target]
            items = float(candidates[0]) if len(candidates) else curve.max_size
        plan[class_index] = items * chunk
    return plan


def run(
    scale: float = FULL_SCALE,
    seed: int = 0,
) -> ExperimentResult:
    trace = load_workload("memcachier", scale=scale, seed=seed, apps=[19])
    plan = pinned_plan(trace, APP)
    total_budget = sum(plan.values())
    base = Scenario(
        workload="memcachier",
        workload_params={"apps": [19]},
        scale=scale,
        seed=seed,
        budgets={APP: total_budget},
    )
    per_scheme: Dict[str, object] = {}
    for scheme, _label in SCHEMES:
        result = run_scenario(
            base.replace(
                scheme=scheme,
                plans={APP: plan} if scheme == "planned" else None,
            ),
            keep_server=True,
        )
        per_scheme[scheme] = result.stats

    classes = sorted(plan)
    result = ExperimentResult(
        experiment_id="tab4",
        title=f"Combined algorithm ablation, {APP} (queues pinned in-cliff)",
        headers=["slab_class", "pinned_items"]
        + [label for _, label in SCHEMES],
        paper_reference="Table 4",
    )
    for class_index in classes:
        row = [
            class_index,
            int(plan[class_index] / GEOMETRY.chunk_size(class_index)),
        ]
        for scheme, _label in SCHEMES:
            counters = per_scheme[scheme].class_counters_for(APP)
            counter = counters.get(class_index)
            row.append(counter.hit_rate() if counter else 0.0)
        result.rows.append(row)
    total_row = ["total", int(total_budget)]
    for scheme, _label in SCHEMES:
        total_row.append(per_scheme[scheme].app_hit_rate(APP))
    result.rows.append(total_row)
    result.notes = (
        "expected ordering on the total row: default < cliff scaling, "
        "default < hill climbing, combined highest (paper: 37.3% / "
        "45.5% / 70.3% / 72.1%)"
    )
    return result
