"""Online cross-shard rebalancing vs. the static even split.

Beyond the paper: section 4.3 stops coordination at the server boundary,
so a cluster's per-shard budgets stay frozen at ``total/N`` forever. This
experiment replays a flash-crowd workload over a deliberately uneven ring
(few virtual nodes, so consistent hashing hands some shards a larger
slice of the keyspace) and compares three allocations:

* ``static``  -- the frozen even split (PR 3 behaviour);
* ``shadow``  -- epoch-driven budget stealing toward the shard with the
  most shadow hits (the paper's gradient signal, aggregated per server);
* ``load``    -- the same stealing toward the busiest shard (byte-blind,
  scheme-agnostic).

Expected: the hot shard's budget grows well past its even share
(``hot_budget_x``) and both online policies beat the static split's
aggregate hit rate -- memory follows demand that a static divide cannot
see.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult, FULL_SCALE
from repro.sim import Scenario, load_workload, miss_reduction, run_scenario

#: Flash-crowd tenants (mirrors the cluster_scaling experiment's pair).
WORKLOAD_PARAMS = {
    "apps": 2,
    "num_keys": 20_000,
    "requests_per_app": 80_000,
    "crowd_fraction": 0.7,
}

#: Few virtual nodes on purpose: the ring then splits the keyspace
#: unevenly, which is exactly the imbalance a static budget split cannot
#: correct and the rebalancer can.
VIRTUAL_NODES = 4

#: Credit per epoch as a fraction of the even per-shard split.
CREDIT_FRACTION = 0.05

#: Epochs per replay (epoch_requests is derived from the trace length so
#: the decision cadence survives trace scaling).
TARGET_EPOCHS = 32


def run(
    scale: float = FULL_SCALE,
    seed: int = 0,
    shards: int = 4,
    scheme: str = "hill",
) -> ExperimentResult:
    trace = load_workload(
        "flash-crowd", scale=scale, seed=seed, **WORKLOAD_PARAMS
    )
    total_requests = sum(trace.requests_per_app.values())
    even_share = sum(trace.reservations.values()) / shards
    epoch_requests = max(50, total_requests // TARGET_EPOCHS)
    credit_bytes = CREDIT_FRACTION * even_share
    base = Scenario(
        scheme=scheme,
        workload="flash-crowd",
        scale=scale,
        seed=seed,
        workload_params=dict(WORKLOAD_PARAMS),
        cluster={"shards": int(shards), "virtual_nodes": VIRTUAL_NODES},
    )
    result = ExperimentResult(
        experiment_id="cluster_rebalance",
        title="Online cross-shard rebalancing under a flash crowd",
        headers=[
            "policy",
            "epoch_requests",
            "hit_rate",
            "miss_reduction",
            "transfers",
            "hot_budget_x",
            "imbalance",
        ],
        paper_reference=(
            "Algorithm 1 lifted to shard granularity; the paper stops at "
            "the single-server boundary (section 4.3)"
        ),
    )
    static = run_scenario(base)
    result.rows.append(
        [
            "static",
            0,
            static.overall_hit_rate,
            0.0,
            0,
            1.0,
            static.cluster_report["imbalance"],
        ]
    )
    for policy in ("shadow", "load"):
        outcome = run_scenario(
            base.replace(
                rebalance={
                    "epoch_requests": int(epoch_requests),
                    "credit_bytes": float(credit_bytes),
                    "policy": policy,
                }
            )
        )
        rebalance = outcome.cluster_report["rebalance"]
        result.rows.append(
            [
                policy,
                int(epoch_requests),
                outcome.overall_hit_rate,
                miss_reduction(
                    static.overall_hit_rate, outcome.overall_hit_rate
                ),
                rebalance["transfers"],
                max(rebalance["shard_budgets"]) / even_share,
                outcome.cluster_report["imbalance"],
            ]
        )
    result.notes = (
        f"scheme {scheme}, {shards} shards, {VIRTUAL_NODES} vnodes (uneven "
        "ring on purpose); hot_budget_x is the largest final shard budget "
        "over the even split; miss_reduction is vs. the static row"
    )
    return result
