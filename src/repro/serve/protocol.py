"""The wire protocol: a minimal memcached-style text dialect, sans-IO.

Commands (a subset of the memcached text protocol, CRLF-terminated)::

    get <key> [<key> ...]
    set <key> <flags> <exptime> <bytes> [noreply]\r\n<data block>
    delete <key> [noreply]
    stats
    quit

Responses follow memcached: ``VALUE <key> <flags> <bytes>`` + data +
``END`` for gets, ``STORED`` / ``DELETED`` / ``NOT_FOUND``,
``STAT <name> <value>`` + ``END`` for stats, and the three error
shapes -- ``ERROR`` (unknown command), ``CLIENT_ERROR <msg>`` (a
malformed request; the connection survives), ``SERVER_ERROR <msg>``
(the server cannot serve it, e.g. ``SERVER_ERROR busy`` when an
overloaded server sheds, or ``object too large for cache``).

The parser is sans-IO -- feed it bytes, pull typed events -- so the
asyncio server, the in-memory transport and the fuzz tests all drive
the exact same code.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

#: Memcached's key limit: at most 250 bytes, no whitespace or control
#: characters.
MAX_KEY_BYTES = 250
#: Largest value accepted on the wire (memcached's classic 1 MB limit).
MAX_VALUE_BYTES = 1 << 20
#: Cap on one command line (a pipelined multi-get of ~250B keys).
MAX_LINE_BYTES = 8192

CRLF = b"\r\n"

ERROR = b"ERROR\r\n"
STORED = b"STORED\r\n"
DELETED = b"DELETED\r\n"
NOT_FOUND = b"NOT_FOUND\r\n"
END = b"END\r\n"
BUSY = b"SERVER_ERROR busy\r\n"


def client_error(message: str) -> bytes:
    return f"CLIENT_ERROR {message}\r\n".encode("ascii")


def server_error(message: str) -> bytes:
    return f"SERVER_ERROR {message}\r\n".encode("ascii")


def encode_value(key: str, flags: int, data: bytes) -> bytes:
    """One ``VALUE`` block of a get response (caller appends ``END``)."""
    return (
        f"VALUE {key} {flags} {len(data)}\r\n".encode("ascii") + data + CRLF
    )


def encode_stats(pairs: List[Tuple[str, object]]) -> bytes:
    lines = [f"STAT {name} {value}\r\n" for name, value in pairs]
    return "".join(lines).encode("ascii") + END


def encode_command(command: "Command") -> bytes:
    """The client side: a :class:`Command` back to wire bytes."""
    suffix = " noreply" if command.noreply else ""
    if command.op == "get":
        return f"get {' '.join(command.keys)}\r\n".encode("ascii")
    if command.op == "set":
        header = (
            f"set {command.keys[0]} {command.flags} 0 "
            f"{len(command.data)}{suffix}\r\n"
        ).encode("ascii")
        return header + command.data + CRLF
    if command.op == "delete":
        return f"delete {command.keys[0]}{suffix}\r\n".encode("ascii")
    if command.op in ("stats", "quit"):
        return f"{command.op}\r\n".encode("ascii")
    raise ValueError(f"cannot encode op {command.op!r}")


@dataclass
class Command:
    """One parsed request.

    ``op`` is ``get``/``set``/``delete``/``stats``/``quit``; ``keys``
    holds one key for set/delete and one-or-more for get; ``data`` is
    the set payload.
    """

    op: str
    keys: List[str] = field(default_factory=list)
    flags: int = 0
    data: bytes = b""
    noreply: bool = False


@dataclass
class ProtocolEvent:
    """What :meth:`ProtocolParser.next_event` hands the server.

    Exactly one of ``command`` / ``response`` is set: a well-formed
    command, or the error bytes to write for a malformed one (the
    parser already resynchronized; keep reading).
    """

    command: Optional[Command] = None
    response: Optional[bytes] = None


def _valid_key(key: str) -> bool:
    if not key or len(key) > MAX_KEY_BYTES:
        return False
    return all(33 <= ord(ch) <= 126 for ch in key)


class ProtocolParser:
    """Incremental parser over a byte stream.

    ``feed`` appends bytes; ``next_event`` returns the next
    :class:`ProtocolEvent`, or None when more bytes are needed.
    Malformed input produces error-response events and resynchronizes
    at the next line, so one bad command never poisons the connection.
    """

    def __init__(self) -> None:
        self._buffer = bytearray()
        #: A ``set`` header waiting for its data block.
        self._pending: Optional[Command] = None
        self._pending_size = 0

    def feed(self, data: bytes) -> None:
        self._buffer.extend(data)

    def next_event(self) -> Optional[ProtocolEvent]:
        if self._pending is not None:
            return self._read_data_block()
        line = self._read_line()
        if line is None:
            return None
        if line == b"":
            # Bare CRLF between commands: memcached answers ERROR.
            return ProtocolEvent(response=ERROR)
        try:
            text = line.decode("ascii")
        except UnicodeDecodeError:
            return ProtocolEvent(response=client_error("malformed request"))
        parts = text.split()
        if not parts:
            return ProtocolEvent(response=ERROR)
        op = parts[0].lower()
        if op == "get" or op == "gets":
            return self._parse_get(parts)
        if op == "set":
            return self._parse_set(parts)
        if op == "delete":
            return self._parse_delete(parts)
        if op == "stats":
            return ProtocolEvent(command=Command(op="stats"))
        if op == "quit":
            return ProtocolEvent(command=Command(op="quit"))
        return ProtocolEvent(response=ERROR)

    # ------------------------------------------------------------------

    def _read_line(self) -> Optional[bytes]:
        index = self._buffer.find(b"\n")
        if index < 0:
            if len(self._buffer) > MAX_LINE_BYTES:
                # Unterminated garbage: drop it rather than buffer
                # without bound; the next line starts clean.
                self._buffer.clear()
                return b"\x00overlong"  # unparseable -> ERROR below
            return None
        line = bytes(self._buffer[:index])
        del self._buffer[: index + 1]
        return line[:-1] if line.endswith(b"\r") else line

    def _parse_get(self, parts: List[str]) -> ProtocolEvent:
        keys = parts[1:]
        if not keys:
            return ProtocolEvent(response=ERROR)
        for key in keys:
            if not _valid_key(key):
                return ProtocolEvent(response=client_error("bad key"))
        return ProtocolEvent(command=Command(op="get", keys=keys))

    def _parse_set(self, parts: List[str]) -> ProtocolEvent:
        noreply = False
        if parts and parts[-1] == "noreply":
            noreply = True
            parts = parts[:-1]
        if len(parts) != 5:
            return ProtocolEvent(
                response=client_error("bad command line format")
            )
        _, key, flags, exptime, nbytes = parts
        if not _valid_key(key):
            return ProtocolEvent(response=client_error("bad key"))
        try:
            flags_value = int(flags)
            int(exptime)  # accepted, ignored (no TTLs yet)
            size = int(nbytes)
        except ValueError:
            return ProtocolEvent(
                response=client_error("bad command line format")
            )
        if size < 0 or size > MAX_VALUE_BYTES:
            return ProtocolEvent(
                response=server_error("object too large for cache")
            )
        self._pending = Command(
            op="set", keys=[key], flags=flags_value, noreply=noreply
        )
        self._pending_size = size
        return self.next_event()

    def _read_data_block(self) -> Optional[ProtocolEvent]:
        needed = self._pending_size + len(CRLF)
        if len(self._buffer) < needed:
            return None
        command = self._pending
        self._pending = None
        data = bytes(self._buffer[: self._pending_size])
        trailer = bytes(self._buffer[self._pending_size : needed])
        del self._buffer[:needed]
        if trailer != CRLF:
            # Resynchronize at the next line.
            index = self._buffer.find(b"\n")
            if index >= 0:
                del self._buffer[: index + 1]
            return ProtocolEvent(response=client_error("bad data chunk"))
        command.data = data
        return ProtocolEvent(command=command)

    def _parse_delete(self, parts: List[str]) -> ProtocolEvent:
        noreply = False
        if parts and parts[-1] == "noreply":
            noreply = True
            parts = parts[:-1]
        if len(parts) != 2:
            return ProtocolEvent(
                response=client_error("bad command line format")
            )
        key = parts[1]
        if not _valid_key(key):
            return ProtocolEvent(response=client_error("bad key"))
        return ProtocolEvent(
            command=Command(op="delete", keys=[key], noreply=noreply)
        )
