"""``python -m repro.serve`` -> the ``repro-serve`` CLI."""

import sys

from repro.serve.cli import main

sys.exit(main())
