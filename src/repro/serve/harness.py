"""The serve harness: config block, one-call runner, report shape.

:class:`ServeConfig` is the serializable shape of a scenario's
``serve`` block; :func:`run_serve` spins up the in-process server
(memory transport or loopback TCP), replays the workload's compiled
trace open-loop through the :class:`~repro.serve.loadgen.LoadGenerator`
and returns a :class:`ServeReport` whose ``to_dict`` payload is exactly
what :func:`repro.cluster.cluster.render_cluster_report` renders as the
``serve`` section.

Chaos serving: when the cluster arrives with a
:class:`~repro.cluster.faults.FaultInjector` attached, the harness arms
it on the **virtual-time axis** -- barrier offsets are counts of
requests processed through :meth:`~repro.cluster.Cluster.process_batch`,
not wall-clock seconds -- so a fixed seed and schedule reproduce the
identical fault timeline regardless of event-loop interleaving. The
report then grows a ``faults`` section: the injector's per-crash
recovery metrics plus a scheduled-index latency timeline (the
p99-during-outage view).
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass
from typing import Any, Dict, Optional

from repro.common.errors import ConfigurationError
from repro.serve.loadgen import (
    ARRIVAL_MODES,
    DEFAULT_TIMELINE_WINDOWS,
    LoadGenerator,
    LoadResult,
    RetryPolicy,
    commands_from_trace,
)
from repro.serve.server import (
    BACKPRESSURE_POLICIES,
    DEFAULT_MAX_BATCH,
    DEFAULT_QUEUE_DEPTH,
    CacheServerProcess,
    MemoryClient,
    TCPClient,
)
from repro.serve.service import CacheService

TRANSPORTS = ("memory", "tcp")

#: Most distinct trace commands prepared up front; the generator cycles.
MAX_PREPARED_COMMANDS = 20_000


@dataclass(frozen=True)
class ServeConfig:
    """The serializable shape of a scenario's ``serve`` block."""

    rate: float = 2_000.0
    duration_s: float = 1.0
    arrivals: str = "poisson"
    backpressure: str = "queue"
    connections: int = 4
    queue_depth: int = DEFAULT_QUEUE_DEPTH
    max_batch: int = DEFAULT_MAX_BATCH
    transport: str = "memory"
    #: Pin the worker to the per-request oracle path (benchmark
    #: baseline); the batch path is the default and the product.
    per_request: bool = False
    #: Server-side graceful degradation: drained commands older than
    #: this are answered ``BUSY`` unexecuted (0 = never expire).
    queue_deadline_s: float = 0.0
    #: Per-connection in-flight cap (0 = unlimited).
    max_inflight: int = 0
    #: Client retry/backoff block (:class:`RetryPolicy` shape); ``None``
    #: means fire-once clients, exactly the pre-retry behavior.
    retry: Optional[Dict[str, Any]] = None

    def __post_init__(self) -> None:
        if self.rate <= 0:
            raise ConfigurationError(f"rate must be > 0, got {self.rate}")
        if self.duration_s <= 0:
            raise ConfigurationError(
                f"duration_s must be > 0, got {self.duration_s}"
            )
        if self.arrivals not in ARRIVAL_MODES:
            raise ConfigurationError(
                f"arrivals must be one of {ARRIVAL_MODES}, "
                f"got {self.arrivals!r}"
            )
        if self.backpressure not in BACKPRESSURE_POLICIES:
            raise ConfigurationError(
                f"backpressure must be one of {BACKPRESSURE_POLICIES}, "
                f"got {self.backpressure!r}"
            )
        if self.connections < 1:
            raise ConfigurationError(
                f"connections must be >= 1, got {self.connections}"
            )
        if self.queue_depth < 1:
            raise ConfigurationError(
                f"queue_depth must be >= 1, got {self.queue_depth}"
            )
        if self.max_batch < 1:
            raise ConfigurationError(
                f"max_batch must be >= 1, got {self.max_batch}"
            )
        if self.transport not in TRANSPORTS:
            raise ConfigurationError(
                f"transport must be one of {TRANSPORTS}, "
                f"got {self.transport!r}"
            )
        if self.queue_deadline_s < 0:
            raise ConfigurationError(
                f"queue_deadline_s must be >= 0, got {self.queue_deadline_s}"
            )
        if self.max_inflight < 0:
            raise ConfigurationError(
                f"max_inflight must be >= 0, got {self.max_inflight}"
            )
        if self.retry is not None:
            # Validate and normalize (defaults filled in) so round-trips
            # and sweep axes over ``serve.retry.*`` are canonical.
            object.__setattr__(
                self, "retry", RetryPolicy.from_dict(self.retry).to_dict()
            )

    def retry_policy(self) -> Optional[RetryPolicy]:
        """The parsed retry block, or ``None`` for fire-once clients."""
        if self.retry is None:
            return None
        policy = RetryPolicy.from_dict(self.retry)
        return policy if policy.enabled else None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "rate": self.rate,
            "duration_s": self.duration_s,
            "arrivals": self.arrivals,
            "backpressure": self.backpressure,
            "connections": self.connections,
            "queue_depth": self.queue_depth,
            "max_batch": self.max_batch,
            "transport": self.transport,
            "per_request": self.per_request,
            "queue_deadline_s": self.queue_deadline_s,
            "max_inflight": self.max_inflight,
            "retry": dict(self.retry) if self.retry is not None else None,
        }

    @classmethod
    def from_dict(cls, payload: Optional[Dict[str, Any]]) -> "ServeConfig":
        if payload is None:
            return cls()
        if not isinstance(payload, dict):
            raise ConfigurationError(
                f"serve block must be a mapping, got {type(payload).__name__}"
            )
        known = {
            "rate", "duration_s", "arrivals", "backpressure",
            "connections", "queue_depth", "max_batch", "transport",
            "per_request", "queue_deadline_s", "max_inflight", "retry",
        }
        unknown = set(payload) - known
        if unknown:
            raise ConfigurationError(
                f"unknown serve fields: {', '.join(sorted(unknown))}"
            )
        return cls(**payload)


@dataclass
class ServeReport:
    """One serve run's measurements, renderer-shaped via ``to_dict``."""

    config: ServeConfig
    result: LoadResult
    queue_depths: Any
    batches: int
    #: Server-side graceful-degradation counters.
    shed_expired: int = 0
    shed_inflight: int = 0
    #: The chaos section: the fault injector's recovery metrics plus the
    #: scheduled-index latency timeline; ``None`` for fault-free runs.
    faults: Optional[Dict[str, Any]] = None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "arrivals": self.config.arrivals,
            "backpressure": self.config.backpressure,
            "connections": self.config.connections,
            "transport": self.config.transport,
            "offered_rate": self.result.offered_rate,
            "achieved_rate": self.result.achieved_rate,
            "duration_s": self.config.duration_s,
            "elapsed_s": self.result.elapsed_s,
            "requests": self.result.issued,
            "completed": self.result.completed,
            "shed": self.result.shed,
            "errors": self.result.errors,
            "timeouts": self.result.timeouts,
            "retries": self.result.retries,
            "hedges": self.result.hedges,
            "shed_expired": self.shed_expired,
            "shed_inflight": self.shed_inflight,
            "retry": (
                dict(self.config.retry)
                if self.config.retry is not None
                else None
            ),
            "latency_ms": self.result.histogram.summary_ms(),
            "queue_depth": {
                "depths": list(self.queue_depths),
                "batches": self.batches,
            },
            "faults": (
                dict(self.faults) if self.faults is not None else None
            ),
        }


def run_serve(
    cluster, compiled, config: ServeConfig, seed: int = 0
) -> ServeReport:
    """Serve ``compiled``'s requests open-loop against ``cluster``.

    Builds the service + server around the cluster, prepares the
    trace's requests as wire commands, runs the generator at the
    configured offered rate, and tears everything down. The cluster
    keeps all state the run produced (counters, rebalance epochs, fault
    records), so callers report on it afterwards exactly like an
    offline replay. A fault injector already attached to the cluster is
    armed on the virtual-time axis for the scheduled request count.
    """
    return asyncio.run(_run_serve(cluster, compiled, config, seed))


async def _run_serve(
    cluster, compiled, config: ServeConfig, seed: int
) -> ServeReport:
    service = CacheService(cluster)
    server = CacheServerProcess(
        service,
        backpressure=config.backpressure,
        queue_depth=config.queue_depth,
        max_batch=config.max_batch,
        per_request=config.per_request,
        queue_deadline_s=config.queue_deadline_s,
        max_inflight=config.max_inflight,
    )
    scheduled = max(1, round(config.rate * config.duration_s))
    prepared = min(MAX_PREPARED_COMMANDS, scheduled)
    work = commands_from_trace(compiled, limit=prepared)
    injector = getattr(cluster, "fault_injector", None)
    generator = LoadGenerator(
        rate=config.rate,
        duration_s=config.duration_s,
        arrivals=config.arrivals,
        seed=seed,
        retry=config.retry_policy(),
        timeline_windows=(
            DEFAULT_TIMELINE_WINDOWS if injector is not None else 0
        ),
    )
    if injector is not None:
        rebalancer = cluster.rebalancer
        epoch = (
            rebalancer.config.epoch_requests if rebalancer is not None else 0
        )
        injector.begin_serving(scheduled, epoch)
    tcp_clients = []
    try:
        if config.transport == "tcp":
            host, port = await server.start_tcp()
            for _ in range(config.connections):
                client = TCPClient()
                await client.connect(host, port)
                tcp_clients.append(client)
            clients = tcp_clients
        else:
            await server.start()
            clients = [
                MemoryClient(server) for _ in range(config.connections)
            ]
        result = await generator.run(clients, work)
    finally:
        for client in tcp_clients:
            await client.close()
        await server.close()
        if injector is not None:
            injector.finish_serving(cluster.object_requests)
    faults_payload = None
    if injector is not None:
        faults_payload = injector.to_dict()
        faults_payload["latency_timeline"] = [
            window.to_dict() for window in result.windows
        ]
    return ServeReport(
        config=config,
        result=result,
        queue_depths=server.metrics.queue_depths,
        batches=server.metrics.batches,
        shed_expired=server.metrics.shed_expired,
        shed_inflight=server.metrics.shed_inflight,
        faults=faults_payload,
    )
