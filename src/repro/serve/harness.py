"""The serve harness: config block, one-call runner, report shape.

:class:`ServeConfig` is the serializable shape of a scenario's
``serve`` block; :func:`run_serve` spins up the in-process server
(memory transport or loopback TCP), replays the workload's compiled
trace open-loop through the :class:`~repro.serve.loadgen.LoadGenerator`
and returns a :class:`ServeReport` whose ``to_dict`` payload is exactly
what :func:`repro.cluster.cluster.render_cluster_report` renders as the
``serve`` section.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass
from typing import Any, Dict, Optional

from repro.common.errors import ConfigurationError
from repro.serve.loadgen import (
    ARRIVAL_MODES,
    LoadGenerator,
    LoadResult,
    commands_from_trace,
)
from repro.serve.server import (
    BACKPRESSURE_POLICIES,
    DEFAULT_MAX_BATCH,
    DEFAULT_QUEUE_DEPTH,
    CacheServerProcess,
    MemoryClient,
    TCPClient,
)
from repro.serve.service import CacheService

TRANSPORTS = ("memory", "tcp")

#: Most distinct trace commands prepared up front; the generator cycles.
MAX_PREPARED_COMMANDS = 20_000


@dataclass(frozen=True)
class ServeConfig:
    """The serializable shape of a scenario's ``serve`` block."""

    rate: float = 2_000.0
    duration_s: float = 1.0
    arrivals: str = "poisson"
    backpressure: str = "queue"
    connections: int = 4
    queue_depth: int = DEFAULT_QUEUE_DEPTH
    max_batch: int = DEFAULT_MAX_BATCH
    transport: str = "memory"
    #: Pin the worker to the per-request oracle path (benchmark
    #: baseline); the batch path is the default and the product.
    per_request: bool = False

    def __post_init__(self) -> None:
        if self.rate <= 0:
            raise ConfigurationError(f"rate must be > 0, got {self.rate}")
        if self.duration_s <= 0:
            raise ConfigurationError(
                f"duration_s must be > 0, got {self.duration_s}"
            )
        if self.arrivals not in ARRIVAL_MODES:
            raise ConfigurationError(
                f"arrivals must be one of {ARRIVAL_MODES}, "
                f"got {self.arrivals!r}"
            )
        if self.backpressure not in BACKPRESSURE_POLICIES:
            raise ConfigurationError(
                f"backpressure must be one of {BACKPRESSURE_POLICIES}, "
                f"got {self.backpressure!r}"
            )
        if self.connections < 1:
            raise ConfigurationError(
                f"connections must be >= 1, got {self.connections}"
            )
        if self.queue_depth < 1:
            raise ConfigurationError(
                f"queue_depth must be >= 1, got {self.queue_depth}"
            )
        if self.max_batch < 1:
            raise ConfigurationError(
                f"max_batch must be >= 1, got {self.max_batch}"
            )
        if self.transport not in TRANSPORTS:
            raise ConfigurationError(
                f"transport must be one of {TRANSPORTS}, "
                f"got {self.transport!r}"
            )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "rate": self.rate,
            "duration_s": self.duration_s,
            "arrivals": self.arrivals,
            "backpressure": self.backpressure,
            "connections": self.connections,
            "queue_depth": self.queue_depth,
            "max_batch": self.max_batch,
            "transport": self.transport,
            "per_request": self.per_request,
        }

    @classmethod
    def from_dict(cls, payload: Optional[Dict[str, Any]]) -> "ServeConfig":
        if payload is None:
            return cls()
        if not isinstance(payload, dict):
            raise ConfigurationError(
                f"serve block must be a mapping, got {type(payload).__name__}"
            )
        known = {
            "rate", "duration_s", "arrivals", "backpressure",
            "connections", "queue_depth", "max_batch", "transport",
            "per_request",
        }
        unknown = set(payload) - known
        if unknown:
            raise ConfigurationError(
                f"unknown serve fields: {', '.join(sorted(unknown))}"
            )
        return cls(**payload)


@dataclass
class ServeReport:
    """One serve run's measurements, renderer-shaped via ``to_dict``."""

    config: ServeConfig
    result: LoadResult
    queue_depths: Any
    batches: int

    def to_dict(self) -> Dict[str, Any]:
        return {
            "arrivals": self.config.arrivals,
            "backpressure": self.config.backpressure,
            "connections": self.config.connections,
            "transport": self.config.transport,
            "offered_rate": self.result.offered_rate,
            "achieved_rate": self.result.achieved_rate,
            "duration_s": self.config.duration_s,
            "elapsed_s": self.result.elapsed_s,
            "requests": self.result.issued,
            "completed": self.result.completed,
            "shed": self.result.shed,
            "errors": self.result.errors,
            "latency_ms": self.result.histogram.summary_ms(),
            "queue_depth": {
                "depths": list(self.queue_depths),
                "batches": self.batches,
            },
        }


def run_serve(
    cluster, compiled, config: ServeConfig, seed: int = 0
) -> ServeReport:
    """Serve ``compiled``'s requests open-loop against ``cluster``.

    Builds the service + server around the cluster, prepares the
    trace's requests as wire commands, runs the generator at the
    configured offered rate, and tears everything down. The cluster
    keeps all state the run produced (counters, rebalance epochs), so
    callers report on it afterwards exactly like an offline replay.
    """
    return asyncio.run(_run_serve(cluster, compiled, config, seed))


async def _run_serve(
    cluster, compiled, config: ServeConfig, seed: int
) -> ServeReport:
    service = CacheService(cluster)
    server = CacheServerProcess(
        service,
        backpressure=config.backpressure,
        queue_depth=config.queue_depth,
        max_batch=config.max_batch,
        per_request=config.per_request,
    )
    prepared = min(
        MAX_PREPARED_COMMANDS,
        max(1, round(config.rate * config.duration_s)),
    )
    work = commands_from_trace(compiled, limit=prepared)
    generator = LoadGenerator(
        rate=config.rate,
        duration_s=config.duration_s,
        arrivals=config.arrivals,
        seed=seed,
    )
    tcp_clients = []
    try:
        if config.transport == "tcp":
            host, port = await server.start_tcp()
            for _ in range(config.connections):
                client = TCPClient()
                await client.connect(host, port)
                tcp_clients.append(client)
            clients = tcp_clients
        else:
            await server.start()
            clients = [
                MemoryClient(server) for _ in range(config.connections)
            ]
        result = await generator.run(clients, work)
    finally:
        for client in tcp_clients:
            await client.close()
        await server.close()
    return ServeReport(
        config=config,
        result=result,
        queue_depths=server.metrics.queue_depths,
        batches=server.metrics.batches,
    )
