"""Live cluster serving: wire protocol, asyncio server, open-loop load.

The simulator's replay paths answer "what would the hit rate have
been"; this package answers "what does it feel like to *serve*": an
asyncio memcached-style server fronting a
:class:`~repro.cluster.Cluster` (pipelined connections, bounded request
queue, shed-vs-queue backpressure) and an open-loop load generator that
reports latency percentiles and achieved-vs-offered throughput. The
server's hot path is :meth:`~repro.cluster.Cluster.process_batch` --
every queue drain executes as one vectorized call.
"""

from repro.serve.harness import ServeConfig, ServeReport, run_serve
from repro.serve.histogram import LatencyHistogram
from repro.serve.loadgen import (
    LoadGenerator,
    LoadResult,
    LoadWindow,
    RetryPolicy,
    commands_from_trace,
)
from repro.serve.protocol import Command, ProtocolParser
from repro.serve.server import CacheServerProcess, MemoryClient, TCPClient
from repro.serve.service import CacheService

__all__ = [
    "CacheServerProcess",
    "CacheService",
    "Command",
    "LatencyHistogram",
    "LoadGenerator",
    "LoadResult",
    "LoadWindow",
    "MemoryClient",
    "ProtocolParser",
    "RetryPolicy",
    "ServeConfig",
    "ServeReport",
    "TCPClient",
    "commands_from_trace",
    "run_serve",
]
