"""``repro-serve``: the live-serving entry point.

Two modes::

    # Measure: spin up the in-process server, drive it open-loop,
    # print the serve report (and the cluster hit rates it produced):
    python -m repro.serve --workload zipf --shards 4 --rate 5000 \
        --duration 1.0 --transport memory

    # Listen: serve a cluster over loopback TCP until interrupted
    # (talk to it with nc/telnet: get/set/delete/stats/quit):
    python -m repro.serve --listen 127.0.0.1:11311 --shards 4

Configuration mistakes exit with status 2 and a one-line message,
matching ``python -m repro.experiments``.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import signal
import sys
from typing import List, Optional

from repro.common.errors import ConfigurationError


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description="Serve a simulated cache cluster over the wire.",
    )
    parser.add_argument("--workload", default="zipf")
    parser.add_argument("--scheme", default="default")
    parser.add_argument("--scale", type=float, default=0.05)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--shards", type=int, default=4)
    parser.add_argument("--replication", type=int, default=1)
    parser.add_argument(
        "--rebalance-epoch",
        type=int,
        default=0,
        metavar="N",
        help="attach a load-policy rebalancer every N requests (0 = off)",
    )
    parser.add_argument("--rate", type=float, default=2_000.0)
    parser.add_argument("--duration", type=float, default=1.0)
    parser.add_argument(
        "--arrivals", choices=("poisson", "fixed"), default="poisson"
    )
    parser.add_argument(
        "--backpressure", choices=("queue", "shed"), default="queue"
    )
    parser.add_argument("--connections", type=int, default=4)
    parser.add_argument("--queue-depth", type=int, default=1024)
    parser.add_argument("--max-batch", type=int, default=256)
    parser.add_argument(
        "--transport", choices=("memory", "tcp"), default="memory"
    )
    parser.add_argument(
        "--per-request",
        action="store_true",
        help="pin the server to the per-request oracle path (baseline)",
    )
    parser.add_argument(
        "--retry-attempts",
        type=int,
        default=1,
        metavar="N",
        help="client attempts per request (1 = fire once, no retries)",
    )
    parser.add_argument(
        "--retry-deadline",
        type=float,
        default=0.0,
        metavar="S",
        help="give up retrying S seconds after the scheduled arrival "
        "(0 = no deadline)",
    )
    parser.add_argument(
        "--hedge-after",
        type=float,
        default=0.0,
        metavar="S",
        help="hedge GETs onto a second connection after S seconds "
        "(0 = off)",
    )
    parser.add_argument(
        "--queue-deadline",
        type=float,
        default=0.0,
        metavar="S",
        help="server sheds queued commands older than S seconds "
        "(0 = never)",
    )
    parser.add_argument(
        "--max-inflight",
        type=int,
        default=0,
        metavar="N",
        help="per-connection in-flight cap; excess answered BUSY "
        "(0 = unlimited)",
    )
    parser.add_argument(
        "--crash",
        action="append",
        default=[],
        metavar="SHARD@OFFSET",
        help="crash SHARD after OFFSET served requests (repeatable)",
    )
    parser.add_argument(
        "--restart",
        action="append",
        default=[],
        metavar="SHARD@OFFSET",
        help="restart SHARD cold after OFFSET served requests "
        "(repeatable)",
    )
    parser.add_argument(
        "--fault-policy",
        choices=("failover", "miss-through"),
        default="failover",
        help="routing for dead shards' keys",
    )
    parser.add_argument(
        "--listen",
        metavar="HOST:PORT",
        default=None,
        help="serve loopback TCP forever instead of running a "
        "measurement (port 0 picks a free port)",
    )
    parser.add_argument(
        "--json", action="store_true", help="emit the report as JSON"
    )
    return parser


def _build_cluster(args):
    from repro.sim import Scenario, load_workload
    from repro.sim.runner import build_cluster

    scenario = Scenario(
        workload=args.workload,
        scheme=args.scheme,
        scale=args.scale,
        seed=args.seed,
        cluster={
            "shards": args.shards,
            "replication": args.replication,
        },
        rebalance=(
            {"epoch_requests": args.rebalance_epoch, "policy": "load"}
            if args.rebalance_epoch
            else None
        ),
    )
    trace = load_workload(
        scenario.workload, scale=scenario.scale, seed=scenario.seed
    )
    cluster = build_cluster(scenario, trace)
    if scenario.rebalance is not None:
        from repro.cluster import RebalanceConfig, Rebalancer

        cluster.attach_rebalancer(
            Rebalancer(
                cluster,
                RebalanceConfig.from_dict(scenario.rebalance),
                seed=scenario.seed,
            )
        )
    return cluster, trace


def _parse_events(args) -> List[dict]:
    events = []
    for kind, specs in (("crash", args.crash), ("restart", args.restart)):
        for spec in specs:
            shard_text, sep, offset_text = spec.partition("@")
            try:
                if not sep:
                    raise ValueError(spec)
                events.append(
                    {
                        "kind": kind,
                        "shard": int(shard_text),
                        "at": int(offset_text),
                    }
                )
            except ValueError:
                raise ConfigurationError(
                    f"--{kind} wants SHARD@OFFSET, got {spec!r}"
                ) from None
    return events


def _attach_faults(args, cluster) -> None:
    events = _parse_events(args)
    if not events:
        return
    from repro.cluster import FaultInjector, FaultSchedule

    schedule = FaultSchedule.from_dict(
        {"events": events, "policy": args.fault_policy}
    )
    schedule.validate_for(args.shards)
    cluster.attach_faults(FaultInjector(cluster, schedule))


def _run_measurement(args) -> int:
    from repro.serve.harness import ServeConfig, run_serve

    cluster, trace = _build_cluster(args)
    _attach_faults(args, cluster)
    retry = None
    if args.retry_attempts > 1 or args.hedge_after > 0:
        retry = {
            "max_attempts": max(1, args.retry_attempts),
            "deadline_s": args.retry_deadline,
            "hedge_after_s": args.hedge_after,
        }
    config = ServeConfig(
        rate=args.rate,
        duration_s=args.duration,
        arrivals=args.arrivals,
        backpressure=args.backpressure,
        connections=args.connections,
        queue_depth=args.queue_depth,
        max_batch=args.max_batch,
        transport=args.transport,
        per_request=args.per_request,
        queue_deadline_s=args.queue_deadline,
        max_inflight=args.max_inflight,
        retry=retry,
    )
    report = run_serve(cluster, trace.compiled, config, seed=args.seed)
    payload = report.to_dict()
    if args.json:
        print(json.dumps(payload, indent=2))
        return 0
    from repro.cluster.cluster import render_cluster_report

    cluster_payload = cluster.report().to_dict()
    cluster_payload["serve"] = payload
    print(f"served {args.workload} on {args.shards} shard(s):")
    for line in render_cluster_report(cluster_payload):
        print(line)
    return 0


def _run_listener(args) -> int:
    from repro.serve.server import CacheServerProcess
    from repro.serve.service import CacheService

    host, _, port_text = args.listen.rpartition(":")
    if not host:
        raise ConfigurationError(
            f"--listen wants HOST:PORT, got {args.listen!r}"
        )
    try:
        port = int(port_text)
    except ValueError:
        raise ConfigurationError(
            f"--listen wants a numeric port, got {port_text!r}"
        )
    cluster, _ = _build_cluster(args)

    async def serve_forever() -> None:
        server = CacheServerProcess(
            CacheService(cluster),
            backpressure=args.backpressure,
            queue_depth=args.queue_depth,
            max_batch=args.max_batch,
            queue_deadline_s=args.queue_deadline,
            max_inflight=args.max_inflight,
        )
        bound_host, bound_port = await server.start_tcp(host, port)
        print(f"serving on {bound_host}:{bound_port} (Ctrl-C stops)")
        sys.stdout.flush()
        stopping = asyncio.Event()
        loop = asyncio.get_running_loop()
        # Graceful shutdown: stop accepting, drain the queue and
        # in-flight connections, then exit 0 -- clients with pipelined
        # requests in the queue still get their responses.
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(signum, stopping.set)
            except (NotImplementedError, RuntimeError):
                # Platforms without loop signal support (or non-main
                # threads in tests) fall back to KeyboardInterrupt.
                break
        try:
            await stopping.wait()
        finally:
            await server.shutdown()
        print("stopped (drained)")

    try:
        asyncio.run(serve_forever())
    except KeyboardInterrupt:
        print("stopped")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        if args.listen is not None:
            return _run_listener(args)
        return _run_measurement(args)
    except ConfigurationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
