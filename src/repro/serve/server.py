"""The asyncio cache server: pipelined connections, one shared queue.

Every connection parses its byte stream with the sans-IO
:class:`~repro.serve.protocol.ProtocolParser` and submits commands into
one bounded server-wide queue. A single worker coroutine drains the
queue -- up to ``max_batch`` commands per wake, across connections --
and executes the whole drain as one
:meth:`~repro.serve.service.CacheService.execute` call, so the server's
hot path is :meth:`~repro.cluster.Cluster.process_batch`, not
per-request routing.

Overload behavior is explicit and configurable:

``backpressure="shed"``
    A full queue answers ``SERVER_ERROR busy`` immediately; the reader
    keeps reading. Open-loop clients see the shed in-band.
``backpressure="queue"``
    A full queue blocks the submitting reader coroutine until a slot
    frees, pushing the backlog into the kernel socket buffers (and from
    there onto the client) -- closed-loop backpressure.

Responses are delivered through per-command futures; each connection
writes its futures back in submission order, so pipelining never
reorders responses. A connection that dies mid-pipeline stops reading
and writing, but its already-queued commands still drain through the
worker -- queue slots are freed by execution, never leaked.
"""

from __future__ import annotations

import asyncio
from typing import List, Optional, Tuple

from repro.common.errors import ConfigurationError
from repro.serve.protocol import (
    BUSY,
    Command,
    ProtocolParser,
    server_error,
)
from repro.serve.service import CacheService

#: Default bound on the shared request queue.
DEFAULT_QUEUE_DEPTH = 1024
#: Most commands one worker wake batches into a single execute call.
DEFAULT_MAX_BATCH = 256

BACKPRESSURE_POLICIES = ("queue", "shed")


class ServerMetrics:
    """Counters the harness reports: shed, totals, queue-depth samples."""

    __slots__ = (
        "requests",
        "shed",
        "shed_expired",
        "shed_inflight",
        "batches",
        "queue_depths",
    )

    def __init__(self) -> None:
        self.requests = 0
        self.shed = 0
        #: Queued commands dropped unexecuted because they outlived the
        #: server's queue deadline before the worker drained them.
        self.shed_expired = 0
        #: Commands rejected because their connection hit the
        #: per-connection in-flight cap.
        self.shed_inflight = 0
        self.batches = 0
        #: Queue depth sampled at each worker wake (commands pending
        #: including the batch about to run) -- the overload timeline.
        self.queue_depths: List[int] = []

    @property
    def queue_depth_high_water(self) -> int:
        return max(self.queue_depths) if self.queue_depths else 0

    def to_dict(self) -> dict:
        return {
            "requests": self.requests,
            "shed": self.shed,
            "shed_expired": self.shed_expired,
            "shed_inflight": self.shed_inflight,
            "batches": self.batches,
            "depths": list(self.queue_depths),
        }


class _Job:
    __slots__ = ("command", "future", "enqueued_at")

    def __init__(
        self,
        command: Command,
        future: "asyncio.Future[bytes]",
        enqueued_at: float = 0.0,
    ):
        self.command = command
        self.future = future
        self.enqueued_at = enqueued_at


class CacheServerProcess:
    """One in-process server: a service, a queue, a worker, N transports.

    Use :meth:`start` (worker only; in-memory clients connect with
    :class:`MemoryClient`) or :meth:`start_tcp` (worker plus a loopback
    TCP listener). :meth:`close` is idempotent.
    """

    def __init__(
        self,
        service: CacheService,
        backpressure: str = "queue",
        queue_depth: int = DEFAULT_QUEUE_DEPTH,
        max_batch: int = DEFAULT_MAX_BATCH,
        per_request: bool = False,
        queue_deadline_s: float = 0.0,
        max_inflight: int = 0,
    ) -> None:
        if backpressure not in BACKPRESSURE_POLICIES:
            raise ConfigurationError(
                f"backpressure must be one of {BACKPRESSURE_POLICIES}, "
                f"got {backpressure!r}"
            )
        if queue_depth < 1:
            raise ConfigurationError("queue_depth must be >= 1")
        if max_batch < 1:
            raise ConfigurationError("max_batch must be >= 1")
        if queue_deadline_s < 0:
            raise ConfigurationError("queue_deadline_s must be >= 0")
        if max_inflight < 0:
            raise ConfigurationError("max_inflight must be >= 0")
        self.service = service
        self.backpressure = backpressure
        self.max_batch = max_batch
        #: Graceful degradation: a drained command older than this is
        #: answered ``BUSY`` without executing -- its client already
        #: gave up, executing it would only delay live requests
        #: (0 = never expire).
        self.queue_deadline_s = queue_deadline_s
        #: Per-connection in-flight cap: commands submitted but not yet
        #: answered; past it the connection is answered ``BUSY`` in-band
        #: so one pipelining client cannot monopolize the queue
        #: (0 = unlimited).
        self.max_inflight = max_inflight
        self.metrics = ServerMetrics()
        # The stats wire command surfaces server counters alongside the
        # cache totals; the service renders them.
        service.server_metrics = self.metrics
        service.server = self
        #: True pins the worker to the per-request oracle path -- the
        #: benchmark's baseline, never the default.
        self.per_request = per_request
        self._queue: "asyncio.Queue[_Job]" = asyncio.Queue(
            maxsize=queue_depth
        )
        self._worker: Optional[asyncio.Task] = None
        self._tcp_server: Optional[asyncio.AbstractServer] = None
        self._connections: set = set()
        self._inflight: dict = {}

    # -- lifecycle -----------------------------------------------------

    async def start(self) -> None:
        if self._worker is None:
            self._worker = asyncio.create_task(self._work_loop())

    async def start_tcp(
        self, host: str = "127.0.0.1", port: int = 0
    ) -> Tuple[str, int]:
        """Listen on loopback; returns the bound ``(host, port)``."""
        await self.start()
        self._tcp_server = await asyncio.start_server(
            self.handle_connection, host, port
        )
        sockname = self._tcp_server.sockets[0].getsockname()
        return sockname[0], sockname[1]

    async def close(self) -> None:
        if self._tcp_server is not None:
            self._tcp_server.close()
            await self._tcp_server.wait_closed()
            self._tcp_server = None
        for task in list(self._connections):
            task.cancel()
        if self._connections:
            await asyncio.gather(*self._connections, return_exceptions=True)
        if self._worker is not None:
            await self._queue.join()
            self._worker.cancel()
            try:
                await self._worker
            except asyncio.CancelledError:
                pass
            self._worker = None

    async def shutdown(self) -> None:
        """Graceful close: stop accepting, answer everything already
        queued, let the connection writers flush, then tear down.

        This is what SIGINT/SIGTERM trigger in ``repro-serve --listen``:
        in-flight pipelines get their responses before the sockets
        close, instead of :meth:`close`'s cancel-first teardown.
        """
        if self._tcp_server is not None:
            self._tcp_server.close()
            await self._tcp_server.wait_closed()
            self._tcp_server = None
        if self._worker is not None:
            await self._queue.join()
        # Resolved futures still sit in per-connection outboxes; yield
        # so the write loops drain them onto the wire before close()
        # cancels the reader tasks out from under them.
        await asyncio.sleep(0)
        await asyncio.sleep(0)
        await self.close()

    # -- submission ----------------------------------------------------

    async def submit(
        self, command: Command, owner: object = None
    ) -> "asyncio.Future[bytes]":
        """Queue one command; the returned future resolves to response
        bytes. Under ``shed`` a full queue resolves it to ``BUSY`` at
        once; under ``queue`` this call blocks until a slot frees.
        ``owner`` identifies the submitting connection for the
        per-connection in-flight cap."""
        loop = asyncio.get_running_loop()
        future: "asyncio.Future[bytes]" = loop.create_future()
        self.metrics.requests += 1
        if (
            self.max_inflight
            and owner is not None
            and self._inflight.get(owner, 0) >= self.max_inflight
        ):
            self.metrics.shed_inflight += 1
            self.metrics.shed += 1
            future.set_result(BUSY)
            return future
        job = _Job(command, future, enqueued_at=loop.time())
        if owner is not None:
            self._inflight[owner] = self._inflight.get(owner, 0) + 1
            future.add_done_callback(
                lambda _, owner=owner: self._release_inflight(owner)
            )
        if self.backpressure == "shed":
            try:
                self._queue.put_nowait(job)
            except asyncio.QueueFull:
                self.metrics.shed += 1
                future.set_result(BUSY)
        else:
            await self._queue.put(job)
        return future

    def _release_inflight(self, owner: object) -> None:
        count = self._inflight.get(owner, 0) - 1
        if count > 0:
            self._inflight[owner] = count
        else:
            self._inflight.pop(owner, None)

    async def _work_loop(self) -> None:
        while True:
            job = await self._queue.get()
            jobs = [job]
            while len(jobs) < self.max_batch:
                try:
                    jobs.append(self._queue.get_nowait())
                except asyncio.QueueEmpty:
                    break
            self.metrics.batches += 1
            self.metrics.queue_depths.append(
                len(jobs) + self._queue.qsize()
            )
            if self.queue_deadline_s > 0:
                jobs = self._shed_expired(jobs)
            if jobs:
                commands = [item.command for item in jobs]
                try:
                    if self.per_request:
                        responses = self.service.execute_per_request(
                            commands
                        )
                    else:
                        responses = self.service.execute(commands)
                except Exception:  # the server must never die mid-batch
                    responses = [server_error("internal error")] * len(jobs)
                for item, response in zip(jobs, responses):
                    if not item.future.done():
                        item.future.set_result(response)
                for _ in jobs:
                    self._queue.task_done()
            # One cooperative yield per batch: get_nowait() above never
            # awaits, so back-to-back full batches would otherwise
            # starve the readers feeding the queue.
            await asyncio.sleep(0)

    def _shed_expired(self, jobs: List[_Job]) -> List[_Job]:
        """Deadline-aware shedding: answer ``BUSY`` for drained commands
        that sat queued past the deadline -- their clients have already
        retried or given up, and executing them would stretch the queue
        for everyone still waiting."""
        cutoff = asyncio.get_running_loop().time() - self.queue_deadline_s
        kept: List[_Job] = []
        for job in jobs:
            if job.enqueued_at < cutoff:
                self.metrics.shed_expired += 1
                self.metrics.shed += 1
                if not job.future.done():
                    job.future.set_result(BUSY)
                self._queue.task_done()
            else:
                kept.append(job)
        return kept

    # -- TCP connection handling ---------------------------------------

    async def handle_connection(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
        try:
            await self._serve_streams(reader, writer)
        finally:
            if task is not None:
                self._connections.discard(task)

    async def _serve_streams(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        parser = ProtocolParser()
        outbox: "asyncio.Queue[Optional[asyncio.Future[bytes]]]" = (
            asyncio.Queue()
        )
        writer_task = asyncio.create_task(self._write_loop(outbox, writer))
        loop = asyncio.get_running_loop()
        owner = object()  # identity for the per-connection in-flight cap
        try:
            quitting = False
            while not quitting:
                try:
                    data = await reader.read(65536)
                except (ConnectionResetError, BrokenPipeError, OSError):
                    break
                if not data:
                    break
                parser.feed(data)
                while True:
                    event = parser.next_event()
                    if event is None:
                        break
                    if event.response is not None:
                        ready: "asyncio.Future[bytes]" = loop.create_future()
                        ready.set_result(event.response)
                        await outbox.put(ready)
                        continue
                    command = event.command
                    if command.op == "quit":
                        quitting = True
                        break
                    future = await self.submit(command, owner=owner)
                    if not command.noreply:
                        await outbox.put(future)
        finally:
            await outbox.put(None)
            try:
                await writer_task
            except asyncio.CancelledError:
                pass

    @staticmethod
    async def _write_loop(
        outbox: "asyncio.Queue[Optional[asyncio.Future[bytes]]]",
        writer: asyncio.StreamWriter,
    ) -> None:
        try:
            while True:
                future = await outbox.get()
                if future is None:
                    break
                data = await future
                if data:
                    writer.write(data)
                    await writer.drain()
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass  # client went away; futures still resolve, nothing leaks
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass


class MemoryClient:
    """A socketless connection: wire bytes in, wire bytes out.

    Runs the exact same parser and queue/worker path as a TCP
    connection -- only the transport is skipped -- so harness runs are
    deterministic and fast while staying protocol-faithful.
    """

    def __init__(self, server: CacheServerProcess) -> None:
        self._server = server
        self._parser = ProtocolParser()

    async def request(self, data: bytes, op: str = "") -> bytes:
        """Send one or more pipelined commands; await all responses.

        ``op`` is accepted for client-interface parity with
        :class:`TCPClient` and ignored -- the parser frames commands
        itself here, no response framing needed."""
        self._parser.feed(data)
        futures: List["asyncio.Future[bytes]"] = []
        loop = asyncio.get_running_loop()
        while True:
            event = self._parser.next_event()
            if event is None:
                break
            if event.response is not None:
                ready: "asyncio.Future[bytes]" = loop.create_future()
                ready.set_result(event.response)
                futures.append(ready)
                continue
            command = event.command
            if command.op == "quit":
                continue  # nothing to close on a memory transport
            future = await self._server.submit(command, owner=self)
            if not command.noreply:
                futures.append(future)
        chunks = [await future for future in futures]
        return b"".join(chunks)


class TCPClient:
    """A pipelining loopback client with in-order response framing.

    Requests write immediately; a reader task frames responses off the
    stream in FIFO order and resolves each request's future, so many
    requests can be in flight on one connection (open-loop load needs
    that).

    Hardened against a dying server: :meth:`connect` bounds the
    connection attempt with ``connect_timeout``, a nonzero
    ``request_timeout`` bounds each response wait, and once the stream
    drops every pending and future :meth:`request` raises a clean
    :class:`ConnectionError` instead of hanging on a response that will
    never arrive.
    """

    def __init__(
        self,
        connect_timeout: float = 5.0,
        request_timeout: float = 0.0,
    ) -> None:
        if connect_timeout <= 0:
            raise ConfigurationError("connect_timeout must be > 0")
        if request_timeout < 0:
            raise ConfigurationError("request_timeout must be >= 0")
        self.connect_timeout = connect_timeout
        self.request_timeout = request_timeout
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None
        self._pending: "asyncio.Queue[Tuple[str, asyncio.Future[bytes]]]" = (
            asyncio.Queue()
        )
        self._reader_task: Optional[asyncio.Task] = None
        self._dead = False

    async def connect(self, host: str, port: int) -> None:
        try:
            self._reader, self._writer = await asyncio.wait_for(
                asyncio.open_connection(host, port), self.connect_timeout
            )
        except asyncio.TimeoutError:
            raise ConnectionError(
                f"connect to {host}:{port} timed out after "
                f"{self.connect_timeout}s"
            ) from None
        self._dead = False
        self._reader_task = asyncio.create_task(self._read_loop())

    async def close(self) -> None:
        self._dead = True
        if self._writer is not None:
            try:
                self._writer.close()
                await self._writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass
        if self._reader_task is not None:
            self._reader_task.cancel()
            try:
                await self._reader_task
            except asyncio.CancelledError:
                pass

    async def request(self, data: bytes, op: str = "get") -> bytes:
        """Send pre-encoded command bytes; await its framed response.

        ``op`` tells the framer what shape to read (``get``/``stats``
        end at ``END``; everything else is one line). One command per
        call; pipelining comes from overlapping calls. Raises
        :class:`ConnectionError` when the connection is gone (the
        server died mid-pipeline) or the response misses a nonzero
        ``request_timeout``.
        """
        if self._writer is None:
            raise RuntimeError("request() before connect()")
        if self._dead or self._writer.is_closing():
            raise ConnectionError("connection lost")
        future: "asyncio.Future[bytes]" = (
            asyncio.get_running_loop().create_future()
        )
        # No await between the liveness check and the enqueue (put on an
        # unbounded queue never suspends): the reader's fail-everything
        # sweep cannot miss this future.
        self._pending.put_nowait((op, future))
        try:
            self._writer.write(data)
            await self._writer.drain()
        except (ConnectionResetError, BrokenPipeError, OSError) as exc:
            self._dead = True
            if not future.done():
                future.set_exception(
                    ConnectionError(f"send failed: {exc or 'closed'}")
                )
        if self.request_timeout > 0:
            try:
                return await asyncio.wait_for(future, self.request_timeout)
            except asyncio.TimeoutError:
                self._dead = True
                raise ConnectionError(
                    f"no response within {self.request_timeout}s"
                ) from None
        return await future

    async def _read_loop(self) -> None:
        if self._reader is None:
            raise RuntimeError("_read_loop() before connect()")
        future: Optional["asyncio.Future[bytes]"] = None
        try:
            while True:
                op, future = await self._pending.get()
                response = await self._read_response(op)
                if not future.done():
                    future.set_result(response)
                future = None
        except (
            asyncio.IncompleteReadError,
            ConnectionResetError,
            BrokenPipeError,
            OSError,
        ):
            # Connection gone: flag the client dead *first* (request()
            # checks before enqueueing), then fail every waiter --
            # including the request whose response was mid-frame, which
            # is already popped off the pending queue -- so in-flight
            # requests unblock with a clean error.
            self._dead = True
            while True:
                if future is not None and not future.done():
                    future.set_exception(
                        ConnectionError("server closed the connection")
                    )
                try:
                    _, future = self._pending.get_nowait()
                except asyncio.QueueEmpty:
                    break

    async def _read_response(self, op: str) -> bytes:
        if self._reader is None:
            raise RuntimeError("_read_response() before connect()")
        out = bytearray()
        multi = op in ("get", "gets", "stats")
        while True:
            line = await self._reader.readuntil(b"\n")
            out += line
            stripped = line.rstrip(b"\r\n")
            if stripped.startswith(b"VALUE "):
                # VALUE <key> <flags> <bytes>: the data block may
                # contain anything, including "END"; read it by size.
                size = int(stripped.split()[3])
                out += await self._reader.readexactly(size + 2)
                continue
            if multi:
                if stripped == b"END" or stripped.startswith(
                    (b"ERROR", b"CLIENT_ERROR", b"SERVER_ERROR")
                ):
                    return bytes(out)
                continue  # STAT lines keep coming
            return bytes(out)
