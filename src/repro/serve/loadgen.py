"""Open-loop load generation with HDR-style latency accounting.

An open-loop generator schedules arrivals from a clock, not from
responses: request ``i`` is issued at its scheduled offset whether or
not earlier requests completed, and its latency is measured **from the
scheduled arrival** -- so queueing delay under overload shows up in the
percentiles instead of being hidden by a slowing client (the
coordinated-omission trap closed-loop benchmarks fall into). Retries
keep that discipline: a request that succeeds on its third attempt
records one latency, measured from the *original* scheduled arrival.

Arrivals are ``poisson`` (exponential gaps, seeded -- the memoryless
process real front-end traffic approximates) or ``fixed`` (equal
spacing -- a stress clock). The request count is ``rate * duration_s``
rounded, deterministic per config, so runs at the same seed replay the
same schedule.

:class:`RetryPolicy` is the client-side fault-tolerance block: capped
exponential backoff with deterministic seeded jitter, a per-request
deadline measured from the scheduled arrival, a retry *budget* (retries
may never exceed ``budget`` x issued requests -- the standard defense
against retry storms amplifying an outage), and optional hedged reads.
Retries are only attempted when the failed attempt provably did not
execute (``SERVER_ERROR busy``, a connection error on a GET): a
``noreply`` SET gets no response, fails nothing, and is therefore never
retried -- the property tests pin that its side effect applies at most
once.
"""

from __future__ import annotations

import asyncio
import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.common.errors import ConfigurationError
from repro.serve.histogram import LatencyHistogram
from repro.serve.protocol import (
    BUSY,
    MAX_VALUE_BYTES,
    Command,
    encode_command,
)

ARRIVAL_MODES = ("poisson", "fixed")

_ERROR_PREFIXES = (b"ERROR", b"CLIENT_ERROR", b"SERVER_ERROR")

#: Default window count for the per-run latency timeline (the
#: p99-during-outage view); each window covers ``issued / windows``
#: scheduled arrivals.
DEFAULT_TIMELINE_WINDOWS = 16


def _payload(key: str, size: int) -> bytes:
    """Deterministic value bytes for a synthesized SET."""
    if size <= 0:
        return b""
    pattern = (key.encode("utf-8", "replace") or b"x") + b"."
    return (pattern * (size // len(pattern) + 1))[:size]


def commands_from_trace(trace, limit: int) -> List[Tuple[bytes, str]]:
    """The first ``limit`` trace requests as ``(wire_bytes, op)`` pairs.

    The generator cycles through these, so a short trace still feeds a
    long run. Values are synthesized to each request's size (clamped to
    the wire's 1 MB cap).
    """
    work: List[Tuple[bytes, str]] = []
    for request in trace.iter_requests():
        if len(work) >= limit:
            break
        if request.op == "set":
            size = min(int(request.value_size), MAX_VALUE_BYTES)
            command = Command(
                op="set", keys=[request.key], data=_payload(request.key, size)
            )
        elif request.op == "delete":
            command = Command(op="delete", keys=[request.key])
        else:
            command = Command(op="get", keys=[request.key])
        work.append((encode_command(command), command.op))
    if not work:
        raise ConfigurationError("trace produced no requests to serve")
    return work


@dataclass(frozen=True)
class RetryPolicy:
    """The serializable shape of a serve block's ``retry`` section.

    Fields:
        max_attempts: Total tries per request (1 = never retry).
        base_backoff_s: First retry's backoff; attempt ``k`` waits
            ``min(max_backoff_s, base * 2^(k-1))``, jittered.
        max_backoff_s: Backoff cap.
        jitter: Fraction of each backoff randomized away (0 = exact
            exponential steps, 1 = anywhere in ``(0, backoff]``). The
            jitter RNG is seeded per request index, so a fixed seed
            reproduces the exact retry timing.
        deadline_s: Per-request deadline measured from the scheduled
            arrival; an attempt is never started past it (0 = none).
            Requests that exhaust it count as ``timeouts``.
        budget: Retry budget: total retries across the run may not
            exceed ``budget x issued`` (prevents retry storms).
        hedge_after_s: For GETs, issue a duplicate read on another
            connection if no response arrived within this delay and
            take the first usable answer (0 = no hedging).
    """

    max_attempts: int = 1
    base_backoff_s: float = 0.002
    max_backoff_s: float = 0.050
    jitter: float = 0.5
    deadline_s: float = 0.0
    budget: float = 0.2
    hedge_after_s: float = 0.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigurationError(
                f"retry max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.base_backoff_s < 0:
            raise ConfigurationError(
                f"retry base_backoff_s must be >= 0, got "
                f"{self.base_backoff_s}"
            )
        if self.max_backoff_s < self.base_backoff_s:
            raise ConfigurationError(
                f"retry max_backoff_s must be >= base_backoff_s, got "
                f"{self.max_backoff_s} < {self.base_backoff_s}"
            )
        if not 0.0 <= self.jitter <= 1.0:
            raise ConfigurationError(
                f"retry jitter must be in [0, 1], got {self.jitter}"
            )
        if self.deadline_s < 0:
            raise ConfigurationError(
                f"retry deadline_s must be >= 0, got {self.deadline_s}"
            )
        if self.budget < 0:
            raise ConfigurationError(
                f"retry budget must be >= 0, got {self.budget}"
            )
        if self.hedge_after_s < 0:
            raise ConfigurationError(
                f"retry hedge_after_s must be >= 0, got {self.hedge_after_s}"
            )

    @property
    def enabled(self) -> bool:
        """Whether the policy changes anything over fire-once clients."""
        return (
            self.max_attempts > 1
            or self.deadline_s > 0
            or self.hedge_after_s > 0
        )

    def backoff_s(self, attempt: int, rng: random.Random) -> float:
        """Backoff before retry ``attempt`` (the first retry is 1)."""
        step = min(
            self.max_backoff_s, self.base_backoff_s * (2 ** (attempt - 1))
        )
        if self.jitter <= 0 or step <= 0:
            return step
        return step * (1.0 - self.jitter * rng.random())

    def to_dict(self) -> Dict[str, Any]:
        return {
            "max_attempts": self.max_attempts,
            "base_backoff_s": self.base_backoff_s,
            "max_backoff_s": self.max_backoff_s,
            "jitter": self.jitter,
            "deadline_s": self.deadline_s,
            "budget": self.budget,
            "hedge_after_s": self.hedge_after_s,
        }

    @classmethod
    def from_dict(cls, payload: Optional[Dict[str, Any]]) -> "RetryPolicy":
        if payload is None:
            return cls()
        if not isinstance(payload, dict):
            raise ConfigurationError(
                f"retry block must be a mapping, got "
                f"{type(payload).__name__}"
            )
        known = {
            "max_attempts", "base_backoff_s", "max_backoff_s", "jitter",
            "deadline_s", "budget", "hedge_after_s",
        }
        unknown = set(payload) - known
        if unknown:
            raise ConfigurationError(
                f"unknown retry fields: {', '.join(sorted(unknown))}"
            )
        try:
            return cls(**{key: payload[key] for key in payload})
        except TypeError as exc:
            raise ConfigurationError(f"bad retry block: {exc}") from None


@dataclass
class LoadWindow:
    """One timeline window: latencies of the requests whose *scheduled*
    index fell in ``[start, stop)`` -- the during-outage percentile
    view, aligned with the fault schedule's virtual-time axis."""

    start: int
    stop: int
    completed: int = 0
    shed: int = 0
    errors: int = 0
    timeouts: int = 0
    histogram: LatencyHistogram = field(default_factory=LatencyHistogram)

    def to_dict(self) -> Dict[str, Any]:
        summary = self.histogram.summary_ms()
        return {
            "start": self.start,
            "stop": self.stop,
            "completed": self.completed,
            "shed": self.shed,
            "errors": self.errors,
            "timeouts": self.timeouts,
            "p50_ms": summary["p50"],
            "p99_ms": summary["p99"],
        }


@dataclass
class LoadResult:
    """What one generator run measured."""

    offered_rate: float
    duration_s: float
    arrivals: str
    issued: int = 0
    completed: int = 0
    shed: int = 0
    errors: int = 0
    #: Requests whose retry deadline expired before any attempt
    #: succeeded (only with a ``deadline_s`` retry policy).
    timeouts: int = 0
    #: Extra attempts beyond each request's first.
    retries: int = 0
    #: Duplicate hedged reads issued.
    hedges: int = 0
    elapsed_s: float = 0.0
    histogram: LatencyHistogram = field(default_factory=LatencyHistogram)
    #: Scheduled-index latency windows (empty when the run is too small
    #: to split, or the caller asked for none).
    windows: List[LoadWindow] = field(default_factory=list)

    @property
    def achieved_rate(self) -> float:
        if self.elapsed_s <= 0:
            return 0.0
        return self.completed / self.elapsed_s


def _swallow(task: "asyncio.Task") -> None:
    """Done callback for abandoned hedge losers: retrieve the result or
    exception so nothing warns at loop shutdown."""
    if not task.cancelled():
        task.exception()


class LoadGenerator:
    """Replays prepared commands open-loop against serve clients."""

    #: Don't sleep for gaps the event loop can't resolve anyway; burst
    #: through due arrivals instead (with periodic yields) so the
    #: generator can actually offer high rates.
    SLEEP_RESOLUTION = 0.0015

    def __init__(
        self,
        rate: float,
        duration_s: float,
        arrivals: str = "poisson",
        seed: int = 0,
        retry: Optional[RetryPolicy] = None,
        timeline_windows: int = 0,
    ) -> None:
        if arrivals not in ARRIVAL_MODES:
            raise ConfigurationError(
                f"arrivals must be one of {ARRIVAL_MODES}, got {arrivals!r}"
            )
        if rate <= 0:
            raise ConfigurationError("rate must be > 0")
        if duration_s <= 0:
            raise ConfigurationError("duration_s must be > 0")
        if timeline_windows < 0:
            raise ConfigurationError("timeline_windows must be >= 0")
        self.rate = float(rate)
        self.duration_s = float(duration_s)
        self.arrivals = arrivals
        self.seed = seed
        self.retry = retry
        self.timeline_windows = timeline_windows

    def offsets(self) -> List[float]:
        """Scheduled arrival offsets (seconds from run start)."""
        count = max(1, round(self.rate * self.duration_s))
        if self.arrivals == "fixed":
            return [index / self.rate for index in range(count)]
        rng = random.Random(self.seed)
        clock = 0.0
        out = []
        for _ in range(count):
            out.append(clock)
            clock += rng.expovariate(self.rate)
        return out

    def _make_windows(self, count: int) -> List[LoadWindow]:
        if self.timeline_windows <= 0 or count < self.timeline_windows:
            return []
        stride = -(-count // self.timeline_windows)  # ceil division
        return [
            LoadWindow(start=start, stop=min(count, start + stride))
            for start in range(0, count, stride)
        ]

    async def run(
        self,
        clients: Sequence,
        work: Sequence[Tuple[bytes, str]],
    ) -> LoadResult:
        """Issue the schedule round-robin across ``clients``, cycling
        through ``work``; collect latency/shed/error counts."""
        result = LoadResult(
            offered_rate=self.rate,
            duration_s=self.duration_s,
            arrivals=self.arrivals,
        )
        loop = asyncio.get_running_loop()
        offsets = self.offsets()
        result.windows = self._make_windows(len(offsets))
        stride = (
            result.windows[0].stop - result.windows[0].start
            if result.windows
            else 0
        )
        start = loop.time()
        tasks = []
        for index, offset in enumerate(offsets):
            target = start + offset
            delay = target - loop.time()
            if delay > self.SLEEP_RESOLUTION:
                await asyncio.sleep(delay)
            elif index % 64 == 0:
                # Let in-flight tasks and the server worker run even
                # when the schedule says "now"; open-loop still means
                # arrivals never wait for responses.
                await asyncio.sleep(0)
            data, op = work[index % len(work)]
            client = clients[index % len(clients)]
            window = (
                result.windows[index // stride] if stride else None
            )
            result.issued += 1
            tasks.append(
                asyncio.create_task(
                    self._issue(
                        clients, client, data, op, index, target, result,
                        window,
                    )
                )
            )
        if tasks:
            await asyncio.gather(*tasks)
        result.elapsed_s = loop.time() - start
        return result

    # -- one scheduled request, with retries ---------------------------

    async def _issue(
        self, clients, client, data, op, index, target, result, window
    ) -> None:
        loop = asyncio.get_running_loop()
        policy = self.retry
        rng: Optional[random.Random] = None
        attempt = 0
        response: Optional[bytes] = None
        while True:
            attempt += 1
            try:
                response = await self._attempt(
                    clients, client, data, op, index, result
                )
            except (
                asyncio.TimeoutError,
                ConnectionResetError,
                BrokenPipeError,
                OSError,
            ):
                response = None
            if response is not None and self._usable(response):
                latency = loop.time() - target
                result.completed += 1
                result.histogram.record(latency)
                if window is not None:
                    window.completed += 1
                    window.histogram.record(latency)
                return
            if not self._may_retry(policy, op, attempt, response, result):
                break
            backoff = 0.0
            if policy.max_attempts > 1:
                if rng is None:
                    rng = random.Random((self.seed << 20) ^ index)
                backoff = policy.backoff_s(attempt, rng)
            if policy.deadline_s > 0:
                remaining = (target + policy.deadline_s) - loop.time()
                if remaining <= backoff:
                    result.timeouts += 1
                    if window is not None:
                        window.timeouts += 1
                    return
            result.retries += 1
            if backoff > 0:
                await asyncio.sleep(backoff)
        if response == BUSY:
            # Shed requests are counted, not timed: their "latency" is
            # the rejection, and mixing it in would flatter the tail.
            result.shed += 1
            if window is not None:
                window.shed += 1
        else:
            result.errors += 1
            if window is not None:
                window.errors += 1

    @staticmethod
    def _usable(response: bytes) -> bool:
        return response != BUSY and not response.startswith(_ERROR_PREFIXES)

    @staticmethod
    def _may_retry(policy, op, attempt, response, result) -> bool:
        """Whether this failed attempt earns another try.

        Only failures that provably did not execute are retried for
        mutating ops: ``SERVER_ERROR busy`` means the queue rejected the
        command outright. GETs additionally retry on connection errors
        (idempotent). A ``noreply`` SET produces no response and no
        failure, so it never reaches here -- retries cannot duplicate
        its side effect. The retry budget caps total retries at
        ``budget x issued`` to keep an outage from amplifying itself.
        """
        if policy is None or attempt >= policy.max_attempts:
            return False
        if response is None:
            if op not in ("get", "gets", "stats"):
                return False  # non-idempotent and possibly executed
        elif response != BUSY:
            return False  # CLIENT_ERROR/ERROR: retrying cannot help
        return result.retries < policy.budget * max(1, result.issued)

    async def _attempt(
        self, clients, client, data, op, index, result
    ) -> bytes:
        policy = self.retry
        if (
            policy is None
            or policy.hedge_after_s <= 0
            or op != "get"
            or len(clients) < 2
        ):
            return await client.request(data, op)
        primary = asyncio.ensure_future(client.request(data, op))
        try:
            return await asyncio.wait_for(
                asyncio.shield(primary), policy.hedge_after_s
            )
        except asyncio.TimeoutError:
            pass  # primary still in flight: hedge it
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass  # primary failed fast: the hedge is the fallback
        result.hedges += 1
        backup = clients[(index + 1) % len(clients)]
        hedge = asyncio.ensure_future(backup.request(data, op))
        return await self._first_usable(primary, hedge)

    async def _first_usable(self, primary, hedge) -> bytes:
        """The first usable response of the two racing reads; the loser
        is abandoned (its future still resolves -- nothing leaks)."""
        pending = {primary, hedge}
        fallback: Optional[bytes] = None
        failure: Optional[BaseException] = None
        while pending:
            done, pending = await asyncio.wait(
                pending, return_when=asyncio.FIRST_COMPLETED
            )
            for task in done:
                exc = task.exception()
                if exc is not None:
                    failure = exc
                    continue
                response = task.result()
                if self._usable(response):
                    for loser in pending:
                        loser.add_done_callback(_swallow)
                    return response
                fallback = response
        if fallback is not None or failure is None:
            return fallback if fallback is not None else BUSY
        raise failure
