"""Open-loop load generation with HDR-style latency accounting.

An open-loop generator schedules arrivals from a clock, not from
responses: request ``i`` is issued at its scheduled offset whether or
not earlier requests completed, and its latency is measured **from the
scheduled arrival** -- so queueing delay under overload shows up in the
percentiles instead of being hidden by a slowing client (the
coordinated-omission trap closed-loop benchmarks fall into).

Arrivals are ``poisson`` (exponential gaps, seeded -- the memoryless
process real front-end traffic approximates) or ``fixed`` (equal
spacing -- a stress clock). The request count is ``rate * duration_s``
rounded, deterministic per config, so runs at the same seed replay the
same schedule.
"""

from __future__ import annotations

import asyncio
import random
from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

from repro.common.errors import ConfigurationError
from repro.serve.histogram import LatencyHistogram
from repro.serve.protocol import (
    BUSY,
    MAX_VALUE_BYTES,
    Command,
    encode_command,
)

ARRIVAL_MODES = ("poisson", "fixed")

_ERROR_PREFIXES = (b"ERROR", b"CLIENT_ERROR", b"SERVER_ERROR")


def _payload(key: str, size: int) -> bytes:
    """Deterministic value bytes for a synthesized SET."""
    if size <= 0:
        return b""
    pattern = (key.encode("utf-8", "replace") or b"x") + b"."
    return (pattern * (size // len(pattern) + 1))[:size]


def commands_from_trace(trace, limit: int) -> List[Tuple[bytes, str]]:
    """The first ``limit`` trace requests as ``(wire_bytes, op)`` pairs.

    The generator cycles through these, so a short trace still feeds a
    long run. Values are synthesized to each request's size (clamped to
    the wire's 1 MB cap).
    """
    work: List[Tuple[bytes, str]] = []
    for request in trace.iter_requests():
        if len(work) >= limit:
            break
        if request.op == "set":
            size = min(int(request.value_size), MAX_VALUE_BYTES)
            command = Command(
                op="set", keys=[request.key], data=_payload(request.key, size)
            )
        elif request.op == "delete":
            command = Command(op="delete", keys=[request.key])
        else:
            command = Command(op="get", keys=[request.key])
        work.append((encode_command(command), command.op))
    if not work:
        raise ConfigurationError("trace produced no requests to serve")
    return work


@dataclass
class LoadResult:
    """What one generator run measured."""

    offered_rate: float
    duration_s: float
    arrivals: str
    issued: int = 0
    completed: int = 0
    shed: int = 0
    errors: int = 0
    elapsed_s: float = 0.0
    histogram: LatencyHistogram = field(default_factory=LatencyHistogram)

    @property
    def achieved_rate(self) -> float:
        if self.elapsed_s <= 0:
            return 0.0
        return self.completed / self.elapsed_s


class LoadGenerator:
    """Replays prepared commands open-loop against serve clients."""

    #: Don't sleep for gaps the event loop can't resolve anyway; burst
    #: through due arrivals instead (with periodic yields) so the
    #: generator can actually offer high rates.
    SLEEP_RESOLUTION = 0.0015

    def __init__(
        self,
        rate: float,
        duration_s: float,
        arrivals: str = "poisson",
        seed: int = 0,
    ) -> None:
        if arrivals not in ARRIVAL_MODES:
            raise ConfigurationError(
                f"arrivals must be one of {ARRIVAL_MODES}, got {arrivals!r}"
            )
        if rate <= 0:
            raise ConfigurationError("rate must be > 0")
        if duration_s <= 0:
            raise ConfigurationError("duration_s must be > 0")
        self.rate = float(rate)
        self.duration_s = float(duration_s)
        self.arrivals = arrivals
        self.seed = seed

    def offsets(self) -> List[float]:
        """Scheduled arrival offsets (seconds from run start)."""
        count = max(1, round(self.rate * self.duration_s))
        if self.arrivals == "fixed":
            return [index / self.rate for index in range(count)]
        rng = random.Random(self.seed)
        clock = 0.0
        out = []
        for _ in range(count):
            out.append(clock)
            clock += rng.expovariate(self.rate)
        return out

    async def run(
        self,
        clients: Sequence,
        work: Sequence[Tuple[bytes, str]],
    ) -> LoadResult:
        """Issue the schedule round-robin across ``clients``, cycling
        through ``work``; collect latency/shed/error counts."""
        result = LoadResult(
            offered_rate=self.rate,
            duration_s=self.duration_s,
            arrivals=self.arrivals,
        )
        loop = asyncio.get_running_loop()
        offsets = self.offsets()
        start = loop.time()
        tasks = []
        for index, offset in enumerate(offsets):
            target = start + offset
            delay = target - loop.time()
            if delay > self.SLEEP_RESOLUTION:
                await asyncio.sleep(delay)
            elif index % 64 == 0:
                # Let in-flight tasks and the server worker run even
                # when the schedule says "now"; open-loop still means
                # arrivals never wait for responses.
                await asyncio.sleep(0)
            data, op = work[index % len(work)]
            client = clients[index % len(clients)]
            result.issued += 1
            tasks.append(
                asyncio.create_task(
                    self._issue(client, data, op, target, result)
                )
            )
        if tasks:
            await asyncio.gather(*tasks)
        result.elapsed_s = loop.time() - start
        return result

    @staticmethod
    async def _issue(client, data, op, target, result) -> None:
        loop = asyncio.get_running_loop()
        try:
            response = await client.request(data, op)
        except (ConnectionResetError, BrokenPipeError, OSError):
            result.errors += 1
            return
        latency = loop.time() - target
        if response == BUSY:
            # Shed requests are counted, not timed: their "latency" is
            # the rejection, and mixing it in would flatter the tail.
            result.shed += 1
        elif response.startswith(_ERROR_PREFIXES):
            result.errors += 1
        else:
            result.completed += 1
            result.histogram.record(latency)
