"""Protocol commands -> cluster requests: the serving data plane.

A :class:`CacheService` owns the translation between wire commands and
the simulator's object API. Its hot path is :meth:`execute`: every
command of a drained queue batch -- across connections -- flattens into
one :meth:`repro.cluster.Cluster.process_batch` call, so the server
rides the vectorized routing plan instead of hashing per request.
:meth:`execute_per_request` keeps the per-request oracle reachable (the
benchmark gate compares the two; the batch path must win >= 2x).

The simulator models sizes, not payloads, so the service keeps a small
real value store on the side: SETs remember their bytes, GETs serve
them back on a physical hit, and keys the engines filled on a GET miss
(the trace-replay convention) serve a deterministic synthesized payload
of the remembered size. A GET whose engine outcome is a miss returns no
VALUE block even though the engine filled the key -- wire semantics
stay memcached's.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.cache.stats import OP_CODES, OUTCOME_HIT
from repro.common.constants import ITEM_OVERHEAD_BYTES
from repro.common.errors import CacheError, ConfigurationError
from repro.serve.protocol import (
    DELETED,
    END,
    NOT_FOUND,
    STORED,
    Command,
    encode_stats,
    encode_value,
    server_error,
)

#: Engine fill size for GETs of keys never SET through the wire.
DEFAULT_VALUE_SIZE = 100


def _synthesize(key: str, size: int) -> bytes:
    """A deterministic payload for engine-resident keys with no stored
    bytes (filled on a GET miss): the key repeated to ``size``."""
    if size <= 0:
        return b""
    pattern = (key.encode("utf-8", "replace") or b"x") + b"."
    repeats = size // len(pattern) + 1
    return (pattern * repeats)[:size]


class CacheService:
    """Executes parsed commands against a :class:`~repro.cluster.Cluster`.

    ``app_of_key`` routes each key to a tenant: by default the key's
    ``app:`` prefix when it names a registered app (the synthetic
    workloads' key shape), else ``default_app`` -- which is registered
    on demand if the cluster does not know it yet.
    """

    def __init__(
        self,
        cluster,
        default_app: str = "serve",
        default_value_size: int = DEFAULT_VALUE_SIZE,
        default_budget_bytes: float = 16 * (1 << 20),
    ) -> None:
        self.cluster = cluster
        self.default_app = default_app
        self.default_value_size = default_value_size
        self.default_budget_bytes = default_budget_bytes
        self._apps = set(cluster.servers[0].engines)
        #: key -> (flags, payload or None-for-synthesized, value_size)
        self._values: Dict[str, Tuple[int, Optional[bytes], int]] = {}
        #: Set by :class:`~repro.serve.server.CacheServerProcess` so the
        #: ``stats`` wire command can surface server counters (shed,
        #: queue-depth high water) next to the cache totals.
        self.server_metrics = None
        self.server = None

    # ------------------------------------------------------------------

    def app_of_key(self, key: str) -> str:
        prefix, _, rest = key.partition(":")
        if rest and prefix in self._apps:
            return prefix
        if self.default_app not in self._apps:
            # Registered lazily: trace-driven serving (every key carries
            # a registered app prefix) never creates the catch-all app,
            # so its budget cannot distort per-tenant accounting or soak
            # up rebalance credits.
            from repro.cache.engines import FirstComeFirstServeEngine

            geometry = self.cluster.geometry
            self.cluster.add_app(
                self.default_app,
                self.default_budget_bytes,
                lambda shard, share: FirstComeFirstServeEngine(
                    self.default_app, share, geometry
                ),
            )
            self._apps.add(self.default_app)
        return self.default_app

    def _rows(
        self, commands: Sequence[Command]
    ) -> Tuple[
        List[str], List[int], List[int], List[str], List[int],
        Dict[int, bytes],
    ]:
        """Flatten commands into parallel request columns (one row per
        key; a multi-get contributes one row per key). ``preset`` maps
        command indices answered without touching the cluster -- e.g. a
        SET whose item exceeds the largest slab chunk, which must not
        poison the commands batched alongside it."""
        keys: List[str] = []
        ops: List[int] = []
        sizes: List[int] = []
        apps: List[str] = []
        owners: List[int] = []  # row -> command index
        preset: Dict[int, bytes] = {}
        largest_chunk = self.cluster.geometry.chunk_sizes[-1]
        for index, command in enumerate(commands):
            if command.op == "set":
                key = command.keys[0]
                total = len(key) + len(command.data) + ITEM_OVERHEAD_BYTES
                if total > largest_chunk:
                    preset[index] = server_error("object too large for cache")
                    continue
                keys.append(key)
                ops.append(OP_CODES["set"])
                sizes.append(len(command.data))
                apps.append(self.app_of_key(key))
                owners.append(index)
            elif command.op == "get":
                for key in command.keys:
                    keys.append(key)
                    ops.append(OP_CODES["get"])
                    sizes.append(self._fill_size(key))
                    apps.append(self.app_of_key(key))
                    owners.append(index)
            elif command.op == "delete":
                key = command.keys[0]
                keys.append(key)
                ops.append(OP_CODES["delete"])
                sizes.append(self._fill_size(key))
                apps.append(self.app_of_key(key))
                owners.append(index)
        return keys, ops, sizes, apps, owners, preset

    def _fill_size(self, key: str) -> int:
        remembered = self._values.get(key)
        return remembered[2] if remembered else self.default_value_size

    # ------------------------------------------------------------------

    def execute(self, commands: Sequence[Command]) -> List[bytes]:
        """One response per command; data-plane rows ride a single
        :meth:`~repro.cluster.Cluster.process_batch` call."""
        keys, ops, sizes, apps, owners, preset = self._rows(commands)
        if keys:
            try:
                codes = self.cluster.process_batch(keys, ops, sizes, apps)
            except (CacheError, ConfigurationError) as exc:
                failure = server_error(str(exc))
                return [
                    failure if command.op in ("get", "set", "delete")
                    else self._control(command)
                    for command in commands
                ]
        else:
            codes = []
        return self._render(commands, keys, ops, owners, codes, preset)

    def execute_per_request(self, commands: Sequence[Command]) -> List[bytes]:
        """The per-request oracle: same responses, one
        :meth:`~repro.cluster.Cluster.process` call per row."""
        from repro.workloads.trace import Request

        keys, ops, sizes, apps, owners, preset = self._rows(commands)
        op_names = ("get", "set", "delete")
        codes: List[int] = []
        try:
            for key, op, size, app in zip(keys, ops, sizes, apps):
                outcome = self.cluster.process(
                    Request(
                        time=0.0,
                        app=app,
                        key=key,
                        op=op_names[op],
                        value_size=size,
                    )
                )
                codes.append(OUTCOME_HIT if outcome.hit else 0)
        except (CacheError, ConfigurationError) as exc:
            failure = server_error(str(exc))
            return [
                failure if command.op in ("get", "set", "delete")
                else self._control(command)
                for command in commands
            ]
        return self._render(commands, keys, ops, owners, codes, preset)

    # ------------------------------------------------------------------

    def _render(
        self,
        commands: Sequence[Command],
        keys: List[str],
        ops: List[int],
        owners: List[int],
        codes,
        preset: Dict[int, bytes],
    ) -> List[bytes]:
        responses: List[bytearray] = [bytearray() for _ in commands]
        for row, (key, code) in enumerate(zip(keys, codes)):
            command = commands[owners[row]]
            out = responses[owners[row]]
            hit = bool(int(code) & OUTCOME_HIT)
            if command.op == "set":
                self._values[key] = (
                    command.flags,
                    command.data,
                    len(command.data),
                )
                out += STORED
            elif command.op == "get":
                if hit:
                    flags, payload, size = self._values.get(
                        key, (0, None, self.default_value_size)
                    )
                    if payload is None:
                        payload = _synthesize(key, size)
                    out += encode_value(key, flags, payload)
            elif command.op == "delete":
                self._values.pop(key, None)
                out += DELETED if hit else NOT_FOUND
        rendered: List[bytes] = []
        for index, (command, out) in enumerate(zip(commands, responses)):
            if index in preset:
                rendered.append(preset[index])
            elif command.op == "get":
                out += END
                rendered.append(bytes(out))
            elif command.op in ("set", "delete"):
                rendered.append(bytes(out))
            else:
                rendered.append(self._control(command))
        return rendered

    def _control(self, command: Command) -> bytes:
        if command.op == "stats":
            return encode_stats(self.stats_pairs())
        return b""  # quit: the connection layer closes

    def stats_pairs(self) -> List[Tuple[str, object]]:
        stats = self.cluster.aggregate_stats()
        total = stats.total
        pairs: List[Tuple[str, object]] = [
            ("cmd_get", total.gets),
            ("cmd_set", total.sets),
            ("get_hits", total.get_hits),
            ("get_misses", total.get_misses),
            ("hit_rate", f"{total.hit_rate():.4f}"),
            ("evictions", total.evictions),
            ("shards", len(self.cluster.servers)),
            ("live_shards", sum(1 for f in self.cluster.live_mask() if f)),
            ("dead_requests", total.dead_requests),
            ("curr_items_bytes", int(self.cluster.memory_in_use())),
        ]
        metrics = self.server_metrics
        if metrics is not None:
            pairs.extend(
                [
                    ("server_requests", metrics.requests),
                    ("server_shed", metrics.shed),
                    ("server_shed_expired", metrics.shed_expired),
                    ("server_shed_inflight", metrics.shed_inflight),
                    ("server_batches", metrics.batches),
                    (
                        "queue_depth_high_water",
                        metrics.queue_depth_high_water,
                    ),
                ]
            )
        return pairs
