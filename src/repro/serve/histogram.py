"""HDR-style log-bucketed latency histograms.

Recording a latency is O(1) and allocation-free after warm-up: the
bucket index is a log of the value, so buckets are geometrically spaced
and relative error is bounded by the bucket growth factor (~9% at the
default 8 buckets per octave) across the whole dynamic range -- exactly
the property tail percentiles need. Counts, sum, min and max are exact.
"""

from __future__ import annotations

import math
from typing import Dict, List, Tuple

#: Latencies are clamped into [FLOOR, CEILING) seconds before bucketing.
FLOOR = 1e-6
CEILING = 100.0
#: Buckets per octave (power of two); 8 bounds relative error to 2^(1/8).
SUBBUCKETS = 8

_LOG_GROWTH = math.log(2.0) / SUBBUCKETS
_NUM_BUCKETS = int(math.log(CEILING / FLOOR) / _LOG_GROWTH) + 2


class LatencyHistogram:
    """Log-bucketed latency recorder with percentile queries."""

    __slots__ = ("_counts", "count", "total", "min", "max")

    def __init__(self) -> None:
        self._counts = [0] * _NUM_BUCKETS
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = 0.0

    def record(self, seconds: float) -> None:
        value = max(float(seconds), 0.0)
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        self._counts[self._bucket(value)] += 1

    @staticmethod
    def _bucket(value: float) -> int:
        if value <= FLOOR:
            return 0
        index = int(math.log(value / FLOOR) / _LOG_GROWTH) + 1
        return min(index, _NUM_BUCKETS - 1)

    def merge(self, other: "LatencyHistogram") -> None:
        for i, count in enumerate(other._counts):
            self._counts[i] += count
        self.count += other.count
        self.total += other.total
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)

    # ------------------------------------------------------------------

    def percentile(self, quantile: float) -> float:
        """The latency at ``quantile`` in [0, 1] (0.0 when empty).

        Reported as the bucket's upper edge, clamped to the exact
        observed max -- so percentiles never exceed the true maximum
        and the relative error stays within one bucket's growth.
        """
        if self.count == 0:
            return 0.0
        if not 0.0 <= quantile <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {quantile}")
        target = quantile * self.count
        seen = 0
        for index, bucket_count in enumerate(self._counts):
            seen += bucket_count
            if seen >= target and bucket_count:
                if index == _NUM_BUCKETS - 1:
                    # Overflow bucket (>= CEILING): its edge would
                    # underestimate, the exact max is strictly better.
                    return self.max
                upper = FLOOR * math.exp(index * _LOG_GROWTH)
                return min(upper, self.max)
        return self.max

    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def summary_ms(self) -> Dict[str, float]:
        """The standard report block, in milliseconds."""
        return {
            "p50": self.percentile(0.50) * 1e3,
            "p95": self.percentile(0.95) * 1e3,
            "p99": self.percentile(0.99) * 1e3,
            "p999": self.percentile(0.999) * 1e3,
            "mean": self.mean() * 1e3,
            "max": (self.max if self.count else 0.0) * 1e3,
        }

    def nonzero_buckets(self) -> List[Tuple[float, int]]:
        """``(upper_edge_seconds, count)`` rows, for debugging/plots."""
        return [
            (FLOOR * math.exp(index * _LOG_GROWTH), count)
            for index, count in enumerate(self._counts)
            if count
        ]
