"""Section 5.3 bench: credit-size / shadow-size sensitivity sweep."""


def test_sensitivity_sweep(run_bench):
    result = run_bench("sensitivity", scale=0.02)
    assert len(result.rows) >= 12
    # All configurations produce sane hit rates; the paper's 1-4KB
    # credits should be competitive with the best configuration found.
    rates = {(row[0], row[1]): row[3] for row in result.rows[:-2]}
    best = max(rates.values())
    small_credit_best = max(
        rate for (credit, _), rate in rates.items() if credit <= 4096
    )
    assert small_credit_best >= best - 0.08
