"""Table 5 bench (+ section 5.5): eviction-scheme comparison."""


def test_table5_eviction_schemes(run_bench):
    result = run_bench("tab5")
    headers = result.headers
    lru = headers.index("lru")
    arc = headers.index("arc")
    cliffhanger = headers.index("cliffhanger+lru")
    for row in result.rows:
        # ARC gives no improvement on these traces (paper section 5.5).
        assert row[arc] <= row[lru] + 0.03
        # Cliffhanger does not regress vs plain LRU.
        assert row[cliffhanger] >= row[lru] - 0.02
