"""Figure 1 bench: hit-rate curve of Application 3's large slab class."""


def test_fig1_hit_rate_curve(run_bench):
    result = run_bench("fig1")
    rates = [row[1] for row in result.rows]
    # Non-decreasing curve reaching a high plateau (paper: concave).
    assert all(b >= a - 1e-9 for a, b in zip(rates, rates[1:]))
    assert rates[-1] > 0.8
    assert "concave" in result.notes
