"""Raw data-structure throughput: wall-clock ops/sec of the engines.

Not a paper artifact, but the sanity check behind Tables 6-7: the Python
engines' measured relative cost should stay in the same ballpark as the
cost model's prediction.
"""

from repro.cache.engines import FirstComeFirstServeEngine
from repro.cache.slabs import SlabGeometry
from repro.core.engine import CliffhangerEngine, HillClimbEngine
from repro.workloads.facebook import FacebookETCStream

GEO = SlabGeometry.default()
N = 20_000


def _requests():
    stream = FacebookETCStream(app="bench", num_keys=4000, seed=1)
    return list(stream.generate(N, 100.0))


def _replay(engine, requests):
    process = engine.process
    for request in requests:
        process(request)
    return engine


def test_throughput_default_engine(benchmark):
    requests = _requests()
    benchmark.pedantic(
        lambda: _replay(
            FirstComeFirstServeEngine("bench", 2 << 20, GEO), requests
        ),
        iterations=1,
        rounds=3,
    )


def test_throughput_hill_climbing_engine(benchmark):
    requests = _requests()
    benchmark.pedantic(
        lambda: _replay(HillClimbEngine("bench", 2 << 20, GEO), requests),
        iterations=1,
        rounds=3,
    )


def test_throughput_cliffhanger_engine(benchmark):
    requests = _requests()
    benchmark.pedantic(
        lambda: _replay(CliffhangerEngine("bench", 2 << 20, GEO), requests),
        iterations=1,
        rounds=3,
    )


def test_throughput_stack_distance_profiler(benchmark):
    from repro.profiling.stack_distance import StackDistanceProfiler

    keys = [r.key for r in _requests()]

    def profile():
        profiler = StackDistanceProfiler()
        record = profiler.record
        for key in keys:
            record(key)
        return profiler

    benchmark.pedantic(profile, iterations=1, rounds=3)


def _zipf_keys_50k():
    """A 50k-request Zipf stream for the stack-distance micro-benchmark."""
    import numpy as np

    from repro.workloads.zipf import ZipfSampler

    sampler = ZipfSampler(4000, 1.0, rng=np.random.default_rng(42))
    return [f"z{rank}" for rank in sampler.sample(50_000)]


def test_stack_distance_fenwick_50k_zipf(benchmark):
    """O(N log N) profiler on the 50k Zipf stream (compare with the
    naive benchmark below -- the Fenwick profiler should win by orders
    of magnitude)."""
    from repro.profiling.stack_distance import StackDistanceProfiler

    keys = _zipf_keys_50k()

    def profile():
        profiler = StackDistanceProfiler()
        record = profiler.record
        for key in keys:
            record(key)
        return profiler.distances

    distances = benchmark.pedantic(profile, iterations=1, rounds=3)
    assert len(distances) == len(keys)


def test_stack_distance_naive_50k_zipf(benchmark):
    """O(N^2) oracle on the same 50k Zipf stream, plus an equality check
    of the two implementations on a prefix."""
    from repro.profiling.stack_distance import (
        StackDistanceProfiler,
        naive_stack_distances,
    )

    keys = _zipf_keys_50k()
    distances = benchmark.pedantic(
        lambda: naive_stack_distances(keys), iterations=1, rounds=1
    )
    prefix = 5_000
    fast = StackDistanceProfiler().record_all(keys[:prefix])
    assert [
        None if d is None else float(d) for d in distances[:prefix]
    ] == fast
