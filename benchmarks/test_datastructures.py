"""Raw data-structure throughput: wall-clock ops/sec of the engines.

Not a paper artifact, but the sanity check behind Tables 6-7: the Python
engines' measured relative cost should stay in the same ballpark as the
cost model's prediction.
"""

from repro.cache.engines import FirstComeFirstServeEngine
from repro.cache.slabs import SlabGeometry
from repro.core.engine import CliffhangerEngine, HillClimbEngine
from repro.workloads.facebook import FacebookETCStream

GEO = SlabGeometry.default()
N = 20_000


def _requests():
    stream = FacebookETCStream(app="bench", num_keys=4000, seed=1)
    return list(stream.generate(N, 100.0))


def _replay(engine, requests):
    process = engine.process
    for request in requests:
        process(request)
    return engine


def test_throughput_default_engine(benchmark):
    requests = _requests()
    benchmark.pedantic(
        lambda: _replay(
            FirstComeFirstServeEngine("bench", 2 << 20, GEO), requests
        ),
        iterations=1,
        rounds=3,
    )


def test_throughput_hill_climbing_engine(benchmark):
    requests = _requests()
    benchmark.pedantic(
        lambda: _replay(HillClimbEngine("bench", 2 << 20, GEO), requests),
        iterations=1,
        rounds=3,
    )


def test_throughput_cliffhanger_engine(benchmark):
    requests = _requests()
    benchmark.pedantic(
        lambda: _replay(CliffhangerEngine("bench", 2 << 20, GEO), requests),
        iterations=1,
        rounds=3,
    )


def test_throughput_stack_distance_profiler(benchmark):
    from repro.profiling.stack_distance import StackDistanceProfiler

    keys = [r.key for r in _requests()]

    def profile():
        profiler = StackDistanceProfiler()
        record = profiler.record
        for key in keys:
            record(key)
        return profiler

    benchmark.pedantic(profile, iterations=1, rounds=3)
