"""Replay-core throughput benchmark: emits the ``BENCH_replay.json`` artifact.

Measures, at ``BENCH_SCALE``:

* raw compiled-trace replay throughput (requests/sec) of each engine
  scheme through :meth:`CacheServer.replay_compiled`;
* warm-cache wall time of the ``fig1`` and ``tab7`` experiment runners
  (the two benchmarks the fast-replay-core work is gated on).

Numbers are also normalized by a small pure-Python calibration loop so a
checked-in baseline (``benchmarks/BENCH_baseline.json``) can gate
regressions across machines of different speeds: with ``BENCH_ENFORCE=1``
(set in CI) a normalized throughput drop of more than 20% against the
baseline fails the run.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import pytest

from repro.cache.server import CacheServer
from repro.experiments.common import (
    BENCH_SCALE,
    GEOMETRY,
    load_trace,
    make_engine,
)
from repro.experiments.registry import get_runner

ARTIFACT_PATH = Path(__file__).resolve().parent.parent / "BENCH_replay.json"
BASELINE_PATH = Path(__file__).resolve().parent / "BENCH_baseline.json"

ENGINE_SCHEMES = ["default", "lsm", "hill", "cliffhanger"]
RUNNERS = [("fig1", {"scale": BENCH_SCALE}), ("tab7", {"scale": 0.2})]

#: Module-level accumulator; ``test_write_artifact`` (last in file order)
#: serializes it.
RESULTS: dict = {}


def _calibration_ops_per_sec(iterations: int = 200_000) -> float:
    """Machine-speed unit: a fixed dict/int workload, ops per second.

    Dividing measured throughput by this number yields a (roughly)
    machine-independent score, which is what the CI regression gate
    compares. Best of three rounds, like the replay measurements, so
    scheduler noise cannot trip the gate.
    """
    best = 0.0
    for _ in range(3):
        table: dict = {}
        started = time.perf_counter()
        for i in range(iterations):
            key = i & 1023
            table[key] = table.get(key, 0) + 1
        elapsed = time.perf_counter() - started
        best = max(best, iterations / elapsed)
    return best


@pytest.fixture(scope="module")
def bench_trace():
    return load_trace(scale=BENCH_SCALE, seed=0)


@pytest.mark.parametrize("scheme", ENGINE_SCHEMES)
def test_engine_replay_throughput(bench_trace, scheme):
    requests = len(bench_trace.compiled)
    best_elapsed = None
    for _ in range(3):  # best of 3: the gate must not see scheduler noise
        server = CacheServer(GEOMETRY)
        for app in bench_trace.app_names:
            server.add_app(
                make_engine(
                    scheme,
                    app,
                    bench_trace.reservations[app],
                    scale=bench_trace.scale,
                    seed=0,
                )
            )
        started = time.perf_counter()
        server.replay_compiled(bench_trace.compiled)
        elapsed = time.perf_counter() - started
        if best_elapsed is None or elapsed < best_elapsed:
            best_elapsed = elapsed
        assert server.stats.total.gets > 0
    rps = requests / best_elapsed
    RESULTS[f"engine:{scheme}"] = {
        "requests": requests,
        "seconds": best_elapsed,
        "requests_per_sec": rps,
    }
    print(
        f"\n[{scheme}] {requests} requests in {best_elapsed:.3f}s "
        f"= {rps:,.0f} req/s (best of 3)"
    )
    assert rps > 0


@pytest.mark.parametrize("experiment_id,kwargs", RUNNERS)
def test_runner_warm_wall_time(experiment_id, kwargs):
    runner = get_runner(experiment_id)
    runner(seed=0, **kwargs)  # populate trace caches (untimed)
    started = time.perf_counter()
    result = runner(seed=0, **kwargs)
    elapsed = time.perf_counter() - started
    RESULTS[f"runner:{experiment_id}"] = {
        "kwargs": kwargs,
        "warm_seconds": elapsed,
    }
    print(f"\n[{experiment_id}] warm run: {elapsed:.3f}s")
    assert result.rows


def test_write_artifact():
    if not any(key.startswith("engine:") for key in RESULTS):
        pytest.skip("throughput tests were deselected; nothing to write")
    calibration = _calibration_ops_per_sec()
    payload = {
        "bench_scale": BENCH_SCALE,
        "calibration_ops_per_sec": calibration,
        "engines": {
            key.split(":", 1)[1]: dict(
                value,
                normalized_score=value["requests_per_sec"] / calibration,
            )
            for key, value in RESULTS.items()
            if key.startswith("engine:")
        },
        "runners": {
            key.split(":", 1)[1]: value
            for key, value in RESULTS.items()
            if key.startswith("runner:")
        },
    }
    ARTIFACT_PATH.write_text(json.dumps(payload, indent=2), encoding="utf-8")
    print(f"\nwrote {ARTIFACT_PATH}")

    if not BASELINE_PATH.exists():
        return
    baseline = json.loads(BASELINE_PATH.read_text(encoding="utf-8"))
    regressions = []
    for scheme, entry in baseline.get("engines", {}).items():
        current = payload["engines"].get(scheme)
        if current is None:
            continue
        floor = entry["normalized_score"] * 0.8
        if current["normalized_score"] < floor:
            regressions.append(
                f"{scheme}: normalized {current['normalized_score']:.4f} "
                f"< 80% of baseline {entry['normalized_score']:.4f}"
            )
    if regressions:
        message = "replay throughput regressed >20%: " + "; ".join(regressions)
        if os.environ.get("BENCH_ENFORCE"):
            pytest.fail(message)
        else:
            print(f"WARNING: {message}")
