"""Figure 3 bench: the performance cliff of Application 11."""


def test_fig3_cliff_curve(run_bench):
    result = run_bench("fig3")
    assert "cliff regions" in result.notes
    assert "NONE" not in result.notes
    # The hull dominates the raw curve somewhere (a genuine cliff).
    gaps = [row[2] - row[1] for row in result.rows]
    assert max(gaps) > 0.02
