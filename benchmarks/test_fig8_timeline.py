"""Figure 8 bench: per-slab memory over time under hill climbing."""


def test_fig8_memory_timeline(run_bench):
    result = run_bench("fig8")
    assert len(result.rows) >= 10
    slab_columns = result.headers[1:]
    assert len(slab_columns) >= 3  # app05 spreads over several classes
    # Memory actually moves over the week: some series is non-constant.
    moved = False
    for col in range(1, len(result.headers)):
        series = [row[col] for row in result.rows]
        if max(series) - min(series) > 1e-6:
            moved = True
    assert moved
