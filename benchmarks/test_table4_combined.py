"""Table 4 bench: the combined-algorithm ablation on application 19."""


def test_table4_combined_ablation(run_bench):
    result = run_bench("tab4")
    total = next(row for row in result.rows if row[0] == "total")
    default, cliff_only, hill_only, combined = total[2:6]
    # Paper ordering: 37.3% < 45.5% < 70.3% < 72.1%.
    assert cliff_only > default
    assert combined > default
    assert combined >= cliff_only - 0.02
