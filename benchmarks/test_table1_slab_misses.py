"""Table 1 bench: per-slab-class miss shares, applications 4 and 6."""


def test_table1_slab_misses(run_bench):
    result = run_bench("tab1")
    apps = {row[0] for row in result.rows}
    assert apps == {"app04", "app06"}
    # GET shares per app sum to ~100%.
    for app in apps:
        total = sum(row[2] for row in result.rows if row[0] == app)
        assert abs(total - 100.0) < 1.0
