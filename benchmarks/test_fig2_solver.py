"""Figure 2 bench: default vs Dynacache solver across the 20 apps."""


def test_fig2_default_vs_solver(run_bench):
    result = run_bench("fig2")
    assert len(result.rows) == 20
    by_app = {row[0]: row for row in result.rows}
    # Imbalanced applications gain from the solver...
    assert by_app["app06"][4] > 0.02
    # ...and the cliff application 19 is hurt by it (paper: 99.5->74.7).
    assert by_app["app19"][4] < 0.0
