"""Table 7 bench: throughput slowdown vs GET/SET mix."""


def test_table7_throughput_slowdown(run_bench):
    result = run_bench("tab7", scale=0.2)
    assert len(result.rows) == 3
    slowdowns = [row[2] for row in result.rows]
    # Paper: 1.5% / 3% / 3.7% -- small, and growing with SET share.
    assert all(0.0 <= s < 15.0 for s in slowdowns)
    assert slowdowns[-1] >= slowdowns[0] - 0.5
