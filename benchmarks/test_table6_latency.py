"""Table 6 bench: latency overhead in the all-miss worst case."""


def test_table6_latency_overhead(run_bench):
    result = run_bench("tab6", scale=0.2)
    assert len(result.rows) == 4  # 2 algorithms x GET/SET
    for row in result.rows:
        algorithm, op, hit_pct, miss_pct = row
        # Paper regime: low single digits; hits cheaper than misses.
        assert 0.0 <= hit_pct <= miss_pct + 1.0
        assert miss_pct < 15.0
