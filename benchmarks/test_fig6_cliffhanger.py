"""Figure 6 bench: the headline Cliffhanger vs solver vs default table."""


def test_fig6_cliffhanger(run_bench):
    result = run_bench("fig6")
    assert len(result.rows) == 20
    default_mean = sum(r[2] for r in result.rows) / 20
    cliffhanger_mean = sum(r[4] for r in result.rows) / 20
    # Paper: Cliffhanger improves the mean hit rate; at bench scale we
    # require it not to regress and to win on the solver-hostile app 19.
    assert cliffhanger_mean >= default_mean - 0.005
    by_app = {r[0]: r for r in result.rows}
    assert by_app["app19"][4] >= by_app["app19"][3]  # beats the solver
