"""Table 3 bench: cross-application memory optimization."""


def test_table3_cross_app(run_bench):
    result = run_bench("tab3")
    assert len(result.rows) == 5
    # Memory percentages sum to ~100 before and after.
    assert abs(sum(r[1] for r in result.rows) - 100.0) < 1.0
    assert abs(sum(r[2] for r in result.rows) - 100.0) < 2.0
    # The under-provisioned app 2 should gain memory (paper: 4% -> 13%).
    app2 = next(r for r in result.rows if r[0] == "app02")
    assert app2[2] >= app2[1]
