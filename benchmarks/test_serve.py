"""Live-serving benchmark: emits the ``BENCH_serve.json`` artifact.

Two measurements:

* **batch vs per-request** -- the service layer's one-``process_batch``
  -per-queue-drain path against the per-request oracle
  (``execute_per_request``), on the batch sizes the server's worker
  actually drains under pipelined load. This is the unlock the serve
  subsystem rides: under ``BENCH_ENFORCE`` the batch path must be
  >= 2x the oracle at the default drain size.
* **loopback** -- end-to-end served throughput and p99 latency through
  a real asyncio TCP socket (``run_serve`` with the ``tcp``
  transport), overdriven in queue mode so the achieved rate is the
  server's sustainable capacity, not the offered schedule.
* **chaos** -- the drag of arming the fault-injection machinery on a
  run where no fault ever fires: with ``BENCH_ENFORCE`` the armed run
  must keep >= 90% of plain throughput. A real crash+restart run with
  client retries rides along in the artifact, ungated.

Like ``test_cluster_replay``, throughput is normalized by a
pure-Python calibration loop so the checked-in baseline
(``benchmarks/BENCH_serve_baseline.json``) gates regressions across
machines: with ``BENCH_ENFORCE=1`` a normalized drop of more than 20%
fails. Without it the numbers are recorded and warned about only.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import pytest

from repro.cache.slabs import SlabGeometry
from repro.cluster import Cluster, ClusterConfig
from repro.serve import ServeConfig, run_serve
from repro.serve.protocol import Command
from repro.serve.service import CacheService
from repro.sim import load_workload

ARTIFACT_PATH = Path(__file__).resolve().parent.parent / "BENCH_serve.json"
BASELINE_PATH = Path(__file__).resolve().parent / "BENCH_serve_baseline.json"

SHARDS = 4
ROUNDS = 3
#: The worker's default drain size -- the batch the service really sees
#: under pipelined load (``DEFAULT_MAX_BATCH``).
BATCH_SIZE = 256
BATCH_COMMANDS = 20_000

WORKLOAD_PARAMS = {
    "apps": 2,
    "num_keys": 20_000,
    "alpha": 1.1,
    "requests_per_app": 40_000,
    "budget_fraction": 1.0,
}

#: Module-level accumulator; ``test_write_artifact`` serializes it.
RESULTS: dict = {}


def _calibration_ops_per_sec(iterations: int = 200_000) -> float:
    """Machine-speed unit (same fixed loop as ``test_cluster_replay``)."""
    best = 0.0
    for _ in range(3):
        table: dict = {}
        started = time.perf_counter()
        for i in range(iterations):
            key = i & 1023
            table[key] = table.get(key, 0) + 1
        elapsed = time.perf_counter() - started
        best = max(best, iterations / elapsed)
    return best


@pytest.fixture(scope="module")
def workload():
    return load_workload("zipf", scale=1.0, seed=0, **WORKLOAD_PARAMS)


def make_cluster() -> Cluster:
    return Cluster(ClusterConfig(shards=SHARDS), SlabGeometry.default())


def trace_commands(workload, limit: int):
    commands = []
    for request in workload.compiled.iter_requests():
        if len(commands) >= limit:
            break
        if request.op == "set":
            size = max(1, min(int(request.value_size), 16_384))
            commands.append(
                Command(op="set", keys=[request.key], data=b"v" * size)
            )
        else:
            commands.append(Command(op="get", keys=[request.key]))
    return commands


def test_service_batch_vs_per_request(workload):
    commands = trace_commands(workload, BATCH_COMMANDS)
    batches = [
        commands[i : i + BATCH_SIZE]
        for i in range(0, len(commands), BATCH_SIZE)
    ]
    measured = {}
    for mode in ("per_request", "batch"):
        best = None
        for _ in range(ROUNDS):
            service = CacheService(make_cluster())
            execute = (
                service.execute
                if mode == "batch"
                else service.execute_per_request
            )
            started = time.perf_counter()
            for batch in batches:
                execute(batch)
            elapsed = time.perf_counter() - started
            if best is None or elapsed < best:
                best = elapsed
        measured[mode] = len(commands) / best
    speedup = measured["batch"] / measured["per_request"]
    RESULTS["service"] = {
        "shards": SHARDS,
        "batch_size": BATCH_SIZE,
        "commands": len(commands),
        "per_request_commands_per_sec": measured["per_request"],
        "batch_commands_per_sec": measured["batch"],
        "speedup": speedup,
    }
    print(
        f"\n[serve-service] batches of {BATCH_SIZE}: per-request "
        f"{measured['per_request']:,.0f} cmd/s, batch "
        f"{measured['batch']:,.0f} cmd/s = {speedup:.2f}x "
        f"(best of {ROUNDS})"
    )
    assert speedup > 0
    if speedup < 2.0:
        message = (
            f"batched service path only {speedup:.2f}x the per-request "
            "oracle (floor: 2x)"
        )
        if os.environ.get("BENCH_ENFORCE"):
            pytest.fail(message)
        print(f"WARNING: {message}")


def test_loopback_tcp_throughput(workload):
    """Overdrive the TCP server in queue mode; achieved = capacity."""
    config = ServeConfig(
        rate=60_000.0,
        duration_s=0.5,
        arrivals="fixed",
        backpressure="queue",
        connections=4,
        transport="tcp",
    )
    best = None
    for _ in range(ROUNDS):
        report = run_serve(make_cluster(), workload.compiled, config, seed=0)
        result = report.result
        assert result.errors == 0
        assert result.completed == result.issued
        if best is None or result.achieved_rate > best.result.achieved_rate:
            best = report
    summary = best.result.histogram.summary_ms()
    RESULTS["loopback"] = {
        "shards": SHARDS,
        "connections": config.connections,
        "requests": best.result.issued,
        "achieved_requests_per_sec": best.result.achieved_rate,
        "p50_ms": summary["p50"],
        "p99_ms": summary["p99"],
        "mean_batch": (
            sum(best.queue_depths) / len(best.queue_depths)
            if best.queue_depths
            else 0.0
        ),
    }
    print(
        f"\n[serve-loopback] tcp x{config.connections}: achieved "
        f"{best.result.achieved_rate:,.0f} req/s, p50 "
        f"{summary['p50']:.2f} ms, p99 {summary['p99']:.2f} ms "
        f"(best of {ROUNDS})"
    )
    assert best.result.achieved_rate > 0


def test_chaos_overhead(workload):
    """Arming the fault machinery must not tax the no-fault hot path.

    Serves the same fixed-rate run twice in memory transport: once
    plain, once with a :class:`FaultInjector` attached whose only
    events lie past the end of the run -- the barrier bookkeeping and
    per-window latency timeline are live, but no crash ever fires.
    Under ``BENCH_ENFORCE`` the armed run must keep >= 90% of the
    plain run's throughput (the <=10% drag budget). A third, real
    crash+restart run with client retries is recorded for the artifact
    but not gated: its throughput legitimately drops while a shard is
    down.
    """
    from repro.cluster.faults import FaultEvent, FaultInjector, FaultSchedule

    config = ServeConfig(
        rate=300_000.0,
        duration_s=0.2,
        arrivals="fixed",
        backpressure="queue",
        connections=2,
        transport="memory",
    )
    total = int(config.rate * config.duration_s)

    def measure(schedule, retry=None):
        run_config = (
            config
            if retry is None
            else ServeConfig(**dict(config.to_dict(), retry=retry))
        )
        best = None
        for _ in range(ROUNDS):
            cluster = make_cluster()
            if schedule is not None:
                cluster.attach_faults(FaultInjector(cluster, schedule))
            report = run_serve(cluster, workload.compiled, run_config, seed=0)
            rate = report.result.achieved_rate
            if best is None or rate > best:
                best = rate
        return best

    beyond = FaultSchedule(
        events=(
            FaultEvent(kind="crash", shard=1, at=total * 10),
            FaultEvent(kind="restart", shard=1, at=total * 20),
        )
    )
    live = FaultSchedule(
        events=(
            FaultEvent(kind="crash", shard=1, at=total // 2),
            FaultEvent(kind="restart", shard=1, at=(3 * total) // 4),
        )
    )
    plain = measure(None)
    armed = measure(beyond)
    crashed = measure(
        live, retry={"max_attempts": 3, "base_backoff_s": 0.0005}
    )
    drag = armed / plain
    RESULTS["chaos"] = {
        "shards": SHARDS,
        "requests": total,
        "plain_requests_per_sec": plain,
        "armed_requests_per_sec": armed,
        "armed_over_plain": drag,
        "crash_requests_per_sec": crashed,
    }
    print(
        f"\n[serve-chaos] plain {plain:,.0f} req/s, armed {armed:,.0f} "
        f"req/s ({drag:.2f}x), crash+retry {crashed:,.0f} req/s "
        f"(best of {ROUNDS})"
    )
    if drag < 0.9:
        message = (
            f"armed fault machinery drags no-fault serve throughput to "
            f"{drag:.2f}x plain (floor: 0.90x)"
        )
        if os.environ.get("BENCH_ENFORCE"):
            pytest.fail(message)
        print(f"WARNING: {message}")


def test_write_artifact():
    if "service" not in RESULTS:
        pytest.skip("throughput tests were deselected; nothing to write")
    calibration = _calibration_ops_per_sec()
    payload = {
        "workload": dict(WORKLOAD_PARAMS, workload="zipf", seed=0),
        "calibration_ops_per_sec": calibration,
        "service": dict(
            RESULTS["service"],
            normalized_score=(
                RESULTS["service"]["batch_commands_per_sec"] / calibration
            ),
        ),
    }
    if "loopback" in RESULTS:
        payload["loopback"] = dict(
            RESULTS["loopback"],
            normalized_score=(
                RESULTS["loopback"]["achieved_requests_per_sec"]
                / calibration
            ),
        )
    if "chaos" in RESULTS:
        payload["chaos"] = dict(
            RESULTS["chaos"],
            normalized_score=(
                RESULTS["chaos"]["armed_requests_per_sec"] / calibration
            ),
        )
    ARTIFACT_PATH.write_text(json.dumps(payload, indent=2), encoding="utf-8")
    print(
        f"\nwrote {ARTIFACT_PATH}; batch-vs-per-request speedup: "
        f"{RESULTS['service']['speedup']:.2f}x"
    )

    if not BASELINE_PATH.exists():
        return
    enforce = bool(os.environ.get("BENCH_ENFORCE"))
    baseline = json.loads(BASELINE_PATH.read_text(encoding="utf-8"))
    regressions = []
    for name in ("service", "loopback"):
        reference = baseline.get(name, {}).get("normalized_score")
        current = payload.get(name, {}).get("normalized_score")
        if reference is None or current is None:
            continue
        if current < reference * 0.8:
            regressions.append(
                f"{name}: normalized {current:.4f} < 80% of baseline "
                f"{reference:.4f}"
            )
    if regressions:
        message = "serve throughput regressed >20%: " + "; ".join(
            regressions
        )
        if enforce:
            pytest.fail(message)
        else:
            print(f"WARNING: {message}")
