"""Figure 4 bench: Talus partitioning, including the paper's exact
957/7043-item worked example."""


def test_fig4_talus_partitioning(run_bench):
    result = run_bench("fig4")
    paper = next(r for r in result.rows if r[0] == "paper-example")
    assert round(paper[4], 2) == 0.48
    assert abs(paper[5] - 957) < 1
    assert abs(paper[6] - 7043) < 1
    synthetic = [r for r in result.rows if r[0] != "paper-example"]
    if synthetic:  # cliff detected in the synthetic curve
        row = synthetic[0]
        assert row[8] > row[7]  # hull beats raw inside the cliff
