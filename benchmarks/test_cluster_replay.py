"""Cluster-replay benchmark: emits the ``BENCH_cluster.json`` artifact.

Measures the shard-partitioned cluster replay against the legacy
per-request routing loop (``cluster.partitioned_replay: false``, kept as
the bit-exactness oracle) on a 4-shard cluster:

* **static** -- steady-state hot-cache serving: a skewed-Zipf tenant
  pair (working set resident after a warm-up pass) replayed as GETs
  under replication 2, the standard "replicate the hot partition"
  deployment. This is where the per-request routing tax is the largest
  share of the request, and where the partitioned path must be >= 2x
  the legacy loop.
* **rebalance** -- the mixed GET/SET trace with an epoch-driven load
  rebalancer attached, measuring the partitioned epoch-window path.
* **faults** -- the mixed trace with a crash/restart schedule attached,
  measuring the fault-aware window loops plus a no-fault control run
  that gates (under ``BENCH_ENFORCE``) the fault plumbing's drag on the
  fault-free path at 10% of the checked-in baseline.

Both modes replay identical request sequences, so the benchmark also
asserts their aggregate counters match bit for bit. Partitioned rounds
receive a prebuilt routing plan (what a sweep's plan cache delivers);
the one-time plan build cost is recorded separately in the artifact.

Like ``test_replay_core``, throughput is normalized by a pure-Python
calibration loop so the checked-in baseline
(``benchmarks/BENCH_cluster_baseline.json``) can gate regressions across
machines: with ``BENCH_ENFORCE=1`` a normalized drop of more than 20%
fails, as does a static speedup below 2x. Without ``BENCH_ENFORCE`` (for
example on a busy 1-CPU container) the numbers are recorded and warned
about only -- the ``test_sweep.py`` gating pattern.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import pytest

from repro.cluster import (
    Cluster,
    ClusterConfig,
    FaultEvent,
    FaultInjector,
    FaultSchedule,
    RebalanceConfig,
    Rebalancer,
    build_routing_plan,
)
from repro.experiments.common import GEOMETRY, make_engine
from repro.sim import load_workload

ARTIFACT_PATH = Path(__file__).resolve().parent.parent / "BENCH_cluster.json"
BASELINE_PATH = Path(__file__).resolve().parent / "BENCH_cluster_baseline.json"

SHARDS = 4
REPLICATION = 2
ROUNDS = 3

#: Skewed hot-set tenants: enough distinct keys that the legacy loop's
#: lazy per-key ring hashing is a real cost, budgets covering the
#: working set so the timed pass serves from memory.
WORKLOAD_PARAMS = {
    "apps": 2,
    "num_keys": 80_000,
    "alpha": 1.1,
    "requests_per_app": 100_000,
    "budget_fraction": 1.0,
}

#: Module-level accumulator; ``test_write_artifact`` serializes it.
RESULTS: dict = {}


def _calibration_ops_per_sec(iterations: int = 200_000) -> float:
    """Machine-speed unit (same fixed loop as ``test_replay_core``)."""
    best = 0.0
    for _ in range(3):
        table: dict = {}
        started = time.perf_counter()
        for i in range(iterations):
            key = i & 1023
            table[key] = table.get(key, 0) + 1
        elapsed = time.perf_counter() - started
        best = max(best, iterations / elapsed)
    return best


@pytest.fixture(scope="module")
def workload():
    return load_workload("zipf", scale=1.0, seed=0, **WORKLOAD_PARAMS)


def build_cluster(
    workload, partitioned: bool, parallel_workers: int = 0
) -> Cluster:
    cluster = Cluster(
        ClusterConfig(
            shards=SHARDS,
            replication=REPLICATION,
            partitioned_replay=partitioned,
            parallel_workers=parallel_workers,
        ),
        GEOMETRY,
    )
    for app in workload.app_names:
        cluster.add_app(
            app,
            workload.reservations[app],
            lambda shard, share, app=app: make_engine(
                "default", app, share, scale=workload.scale, seed=shard
            ),
        )
    return cluster


def _counter_tuple(counter):
    return (
        counter.get_hits,
        counter.get_misses,
        counter.sets,
        counter.shadow_hits,
        counter.evictions,
    )


def _totals(stats):
    return _counter_tuple(stats.total)


def test_static_replay_partitioned_vs_legacy(workload):
    compiled = workload.compiled
    gets = compiled.with_op("get")
    requests = len(gets)
    measured = {}
    finals = {}
    plan_seconds = 0.0
    for partitioned in (False, True):
        cluster = build_cluster(workload, partitioned)
        mixed_plan = get_plan = None
        if partitioned:
            mixed_plan = build_routing_plan(
                compiled, cluster.ring, cluster.replication
            )
            # Time only the plan the timed rounds replay with, so the
            # artifact reports the true once-per-(trace, ring) cost.
            started = time.perf_counter()
            get_plan = build_routing_plan(
                gets, cluster.ring, cluster.replication
            )
            plan_seconds = time.perf_counter() - started
        # Warm-up: fill the caches with the mixed trace, then stabilize
        # residency with one GET pass; the timed rounds then measure
        # steady-state serving.
        cluster.replay_compiled(compiled, plan=mixed_plan)
        cluster.replay_compiled(gets, plan=get_plan)
        best = None
        for _ in range(ROUNDS):
            started = time.perf_counter()
            stats = cluster.replay_compiled(gets, plan=get_plan)
            elapsed = time.perf_counter() - started
            if best is None or elapsed < best:
                best = elapsed
        measured[partitioned] = requests / best
        finals[partitioned] = _totals(stats)
    # Both modes replayed the identical sequence of requests: parity.
    assert finals[True] == finals[False]
    speedup = measured[True] / measured[False]
    RESULTS["static"] = {
        "shards": SHARDS,
        "replication": REPLICATION,
        "requests": requests,
        "legacy_requests_per_sec": measured[False],
        "partitioned_requests_per_sec": measured[True],
        "speedup": speedup,
        "plan_build_seconds": plan_seconds,
    }
    print(
        f"\n[cluster-static] {SHARDS} shards x{REPLICATION}: legacy "
        f"{measured[False]:,.0f} req/s, partitioned {measured[True]:,.0f} "
        f"req/s = {speedup:.2f}x (plan build {plan_seconds * 1e3:.0f} ms, "
        f"best of {ROUNDS})"
    )
    assert speedup > 0


def test_rebalance_replay_partitioned_vs_legacy(workload):
    compiled = workload.compiled
    requests = len(compiled)
    epoch_requests = max(50, requests // 32)
    measured = {}
    finals = {}
    for partitioned in (False, True):
        best = None
        for _ in range(ROUNDS):
            cluster = build_cluster(workload, partitioned)
            cluster.attach_rebalancer(
                Rebalancer(
                    cluster,
                    RebalanceConfig(
                        epoch_requests=epoch_requests,
                        credit_bytes=65536.0,
                        policy="load",
                    ),
                    seed=0,
                )
            )
            plan = (
                build_routing_plan(
                    compiled, cluster.ring, cluster.replication
                )
                if partitioned
                else None
            )
            started = time.perf_counter()
            stats = cluster.replay_compiled(compiled, plan=plan)
            elapsed = time.perf_counter() - started
            if best is None or elapsed < best:
                best = elapsed
        measured[partitioned] = requests / best
        finals[partitioned] = (
            _totals(stats),
            cluster.rebalancer.transfers,
            cluster.rebalancer.budgets(),
        )
    assert finals[True] == finals[False]  # bit-identical incl. transfers
    speedup = measured[True] / measured[False]
    RESULTS["rebalance"] = {
        "shards": SHARDS,
        "replication": REPLICATION,
        "requests": requests,
        "epoch_requests": epoch_requests,
        "legacy_requests_per_sec": measured[False],
        "partitioned_requests_per_sec": measured[True],
        "speedup": speedup,
    }
    print(
        f"\n[cluster-rebalance] epochs of {epoch_requests}: legacy "
        f"{measured[False]:,.0f} req/s, partitioned {measured[True]:,.0f} "
        f"req/s = {speedup:.2f}x (best of {ROUNDS})"
    )
    assert speedup > 0


def test_faulted_replay_partitioned_vs_legacy(workload):
    """Crash/restart replay throughput, plus the no-fault drag gate.

    The fault-aware loops only engage when an injector is attached, so
    the plain partitioned replay of the identical mixed trace is the
    control: under ``BENCH_ENFORCE`` its normalized throughput must stay
    within 10% of the checked-in baseline (the ``rebalance`` entry is
    the closest prior-PR comparator -- same trace and cluster, plus
    epoch machinery this run does not even pay for).
    """
    compiled = workload.compiled
    requests = len(compiled)
    crash_at = int(requests * 0.35)
    restart_at = int(requests * 0.55)
    schedule = FaultSchedule(
        events=(
            FaultEvent("crash", 1, crash_at),
            FaultEvent("restart", 1, restart_at),
        )
    )
    # Control: no injector, same trace, partitioned path.
    no_fault_best = None
    for _ in range(ROUNDS):
        cluster = build_cluster(workload, True)
        plan = build_routing_plan(
            compiled, cluster.ring, cluster.replication
        )
        started = time.perf_counter()
        cluster.replay_compiled(compiled, plan=plan)
        elapsed = time.perf_counter() - started
        if no_fault_best is None or elapsed < no_fault_best:
            no_fault_best = elapsed
    no_fault_rate = requests / no_fault_best
    # Faulted: both loops replay the schedule; parity includes the
    # fault report (downtime, recovery, timeline), not just counters.
    measured = {}
    finals = {}
    for partitioned in (False, True):
        best = None
        for _ in range(ROUNDS):
            cluster = build_cluster(workload, partitioned)
            injector = FaultInjector(cluster, schedule)
            cluster.attach_faults(injector)
            plan = (
                build_routing_plan(
                    compiled, cluster.ring, cluster.replication
                )
                if partitioned
                else None
            )
            started = time.perf_counter()
            stats = cluster.replay_compiled(compiled, plan=plan)
            elapsed = time.perf_counter() - started
            if best is None or elapsed < best:
                best = elapsed
        measured[partitioned] = requests / best
        finals[partitioned] = (_totals(stats), injector.to_dict())
    assert finals[True] == finals[False]  # bit-identical incl. report
    speedup = measured[True] / measured[False]
    fault_overhead = no_fault_rate / measured[True]
    RESULTS["faults"] = {
        "shards": SHARDS,
        "replication": REPLICATION,
        "requests": requests,
        "crash_at": crash_at,
        "restart_at": restart_at,
        "no_fault_requests_per_sec": no_fault_rate,
        "legacy_requests_per_sec": measured[False],
        "partitioned_requests_per_sec": measured[True],
        "speedup": speedup,
        "no_fault_over_faulted": fault_overhead,
    }
    print(
        f"\n[cluster-faults] crash@{crash_at:,}/restart@{restart_at:,}: "
        f"legacy {measured[False]:,.0f} req/s, partitioned "
        f"{measured[True]:,.0f} req/s = {speedup:.2f}x; no-fault control "
        f"{no_fault_rate:,.0f} req/s ({fault_overhead:.2f}x the faulted "
        f"run, best of {ROUNDS})"
    )
    assert speedup > 0
    if BASELINE_PATH.exists():
        baseline = json.loads(BASELINE_PATH.read_text(encoding="utf-8"))
        reference = (
            baseline.get("replays", {})
            .get("rebalance", {})
            .get("normalized_score")
        )
        if reference is not None:
            normalized = no_fault_rate / _calibration_ops_per_sec()
            message = (
                f"no-fault partitioned replay normalized "
                f"{normalized:.4f} fell below 90% of the baseline "
                f"{reference:.4f}: the fault plumbing is dragging the "
                "fault-free path"
            )
            if normalized < reference * 0.9:
                if os.environ.get("BENCH_ENFORCE"):
                    pytest.fail(message)
                print(f"WARNING: {message}")


PARALLEL_WORKERS = 2


def test_parallel_replay_two_workers(workload):
    """Process-parallel replay vs the serial partitioned loop.

    Parallel replays rebuild worker engines cold, so every round times a
    fresh single replay (the rebalance-bench shape) -- never the warmed
    multi-replay the static bench uses, which the parallel path refuses.
    Parity against the serial loop is asserted unconditionally; the
    speedup gate engages only under ``BENCH_ENFORCE`` on machines with
    at least ``PARALLEL_WORKERS`` CPUs (the 1-CPU container pinning the
    checked-in numbers records IPC overhead instead of speedup, which
    the artifact's ``parallel`` entry tracks as its own floor).
    """
    compiled = workload.compiled
    requests = len(compiled)
    measured = {}
    finals = {}
    for workers in (0, PARALLEL_WORKERS):
        best = None
        for _ in range(ROUNDS):
            cluster = build_cluster(workload, True, parallel_workers=workers)
            plan = build_routing_plan(
                compiled, cluster.ring, cluster.replication
            )
            started = time.perf_counter()
            stats = cluster.replay_compiled(compiled, plan=plan)
            elapsed = time.perf_counter() - started
            if best is None or elapsed < best:
                best = elapsed
        measured[workers] = requests / best
        finals[workers] = (
            _totals(stats),
            [
                {
                    key: _counter_tuple(counter)
                    for key, counter in server.stats.by_app_class.items()
                }
                for server in cluster.servers
            ],
        )
    assert finals[PARALLEL_WORKERS] == finals[0]  # bit-identical
    speedup = measured[PARALLEL_WORKERS] / measured[0]
    cpus = os.cpu_count() or 1
    RESULTS["parallel"] = {
        "shards": SHARDS,
        "replication": REPLICATION,
        "workers": PARALLEL_WORKERS,
        "requests": requests,
        "cpus": cpus,
        "serial_requests_per_sec": measured[0],
        "partitioned_requests_per_sec": measured[PARALLEL_WORKERS],
        "speedup": speedup,
    }
    print(
        f"\n[cluster-parallel] {PARALLEL_WORKERS} workers on {cpus} "
        f"CPU(s): serial {measured[0]:,.0f} req/s, parallel "
        f"{measured[PARALLEL_WORKERS]:,.0f} req/s = {speedup:.2f}x "
        f"(cold replays, best of {ROUNDS})"
    )
    if os.environ.get("BENCH_ENFORCE") and cpus >= PARALLEL_WORKERS:
        assert speedup >= 1.2, (
            f"{PARALLEL_WORKERS}-worker parallel replay speedup "
            f"{speedup:.2f}x < 1.2x on a {cpus}-CPU machine"
        )
    elif cpus >= PARALLEL_WORKERS:
        if speedup < 1.2:
            print(
                f"WARNING: parallel replay speedup {speedup:.2f}x < 1.2x"
            )
    else:
        # One CPU: parallelism cannot pay; parity checked above.
        assert speedup > 0.0


def build_artifact_payload(results: dict, calibration: float) -> dict:
    """The serialized artifact: raw rates plus calibration-normalized
    scores (the cross-machine comparable the baseline gates on)."""
    return {
        "workload": dict(WORKLOAD_PARAMS, workload="zipf", seed=0),
        "calibration_ops_per_sec": calibration,
        "replays": {
            name: dict(
                entry,
                normalized_score=(
                    entry["partitioned_requests_per_sec"] / calibration
                ),
            )
            for name, entry in results.items()
        },
    }


def regression_failures(
    payload: dict,
    baseline: dict,
    static_floor: float = 2.0,
    drop_floor: float = 0.8,
) -> list:
    """The pure half of the benchmark gate: every way ``payload`` fails
    against ``baseline``, as messages (empty list = green).

    Kept free of environment reads and pytest calls so the gate itself
    is testable: a synthetic regression must produce failures whether or
    not ``BENCH_ENFORCE`` is set -- only the *consequence* (fail vs
    warn) is environmental, and ``apply_gate`` owns that.
    """
    failures = []
    static = payload.get("replays", {}).get("static")
    if static is not None and static["speedup"] < static_floor:
        failures.append(
            f"partitioned static replay only {static['speedup']:.2f}x "
            f"the legacy per-request loop (floor: {static_floor:g}x)"
        )
    for name, entry in baseline.get("replays", {}).items():
        current = payload.get("replays", {}).get(name)
        if current is None:
            continue
        floor = entry["normalized_score"] * drop_floor
        if current["normalized_score"] < floor:
            failures.append(
                f"{name}: normalized {current['normalized_score']:.4f} "
                f"< {drop_floor:.0%} of baseline "
                f"{entry['normalized_score']:.4f}"
            )
    return failures


def apply_gate(failures: list, enforce: bool) -> None:
    """Fail under ``BENCH_ENFORCE``, warn otherwise -- the
    ``test_sweep.py`` convention."""
    if not failures:
        return
    message = "cluster replay benchmark gate: " + "; ".join(failures)
    if enforce:
        pytest.fail(message)
    print(f"WARNING: {message}")


def test_gate_fails_on_synthetic_regression():
    """The gate must actually bite: a payload whose rebalance score is
    half the baseline's, and whose static speedup is below the floor,
    fails under enforcement and only warns without it."""
    baseline = {
        "replays": {
            "rebalance": {"normalized_score": 0.05},
            "static": {"normalized_score": 0.07},
        }
    }
    payload = {
        "replays": {
            "static": {"speedup": 1.5, "normalized_score": 0.069},
            "rebalance": {"normalized_score": 0.025},
        }
    }
    failures = regression_failures(payload, baseline)
    assert len(failures) == 2
    assert any("static" in f for f in failures)
    assert any("rebalance" in f for f in failures)
    with pytest.raises(pytest.fail.Exception):
        apply_gate(failures, enforce=True)
    apply_gate(failures, enforce=False)  # warn path: must not raise
    # A payload matching the baseline is green both ways.
    healthy = {
        "replays": {
            "static": {"speedup": 2.5, "normalized_score": 0.07},
            "rebalance": {"normalized_score": 0.05},
        }
    }
    assert regression_failures(healthy, baseline) == []
    apply_gate([], enforce=True)


def test_write_artifact():
    if "static" not in RESULTS:
        pytest.skip("throughput tests were deselected; nothing to write")
    calibration = _calibration_ops_per_sec()
    payload = build_artifact_payload(RESULTS, calibration)
    ARTIFACT_PATH.write_text(json.dumps(payload, indent=2), encoding="utf-8")
    static_speedup = RESULTS["static"]["speedup"]
    print(
        f"\nwrote {ARTIFACT_PATH}; partitioned-vs-legacy speedup: "
        f"{static_speedup:.2f}x static, "
        f"{RESULTS.get('rebalance', {}).get('speedup', 0.0):.2f}x rebalance"
    )
    baseline = (
        json.loads(BASELINE_PATH.read_text(encoding="utf-8"))
        if BASELINE_PATH.exists()
        else {}
    )
    apply_gate(
        regression_failures(payload, baseline),
        enforce=bool(os.environ.get("BENCH_ENFORCE")),
    )
