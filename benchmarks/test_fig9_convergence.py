"""Figure 9 bench: hit rate over time while scaling a cliff."""


def test_fig9_convergence(run_bench):
    result = run_bench("fig9")
    active = [row for row in result.rows if row[1] > 0]
    assert len(active) >= 10
    # The stable window beats the earliest windows (the climb).
    early = sum(r[2] for r in active[:3]) / 3
    mid = active[int(len(active) * 0.45): int(len(active) * 0.7)]
    stable = sum(r[2] for r in mid) / max(1, len(mid))
    assert stable >= early - 0.05
