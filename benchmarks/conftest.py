"""Benchmark harness glue.

Every benchmark wraps one experiment runner from
:mod:`repro.experiments.registry` at a reduced trace scale, times it with
pytest-benchmark, prints the regenerated table (visible with ``-s`` or in
benchmark output capture), and asserts the table's shape-level claims.

Run with::

    pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import pytest

from repro.experiments.common import BENCH_SCALE, ExperimentResult
from repro.experiments.registry import get_runner


def run_experiment_benchmark(
    benchmark, experiment_id: str, scale: float = BENCH_SCALE, **kwargs
) -> ExperimentResult:
    """Time one runner (single round: a full trace replay per call)."""
    runner = get_runner(experiment_id)

    def call() -> ExperimentResult:
        return runner(scale=scale, seed=0, **kwargs)

    result = benchmark.pedantic(call, iterations=1, rounds=1)
    print()
    print(result.render())
    assert result.rows, experiment_id
    return result


@pytest.fixture
def run_bench(benchmark):
    def _run(experiment_id: str, scale: float = BENCH_SCALE, **kwargs):
        return run_experiment_benchmark(
            benchmark, experiment_id, scale=scale, **kwargs
        )

    return _run
