"""Table 2 bench: slab default vs log-structured memory vs solver."""


def test_table2_lsm(run_bench):
    result = run_bench("tab2")
    assert [row[0] for row in result.rows] == ["app03", "app04", "app05"]
    # LSM at 100% utilization should not lose to the slab default on
    # average (paper: it wins, modestly).
    lsm_mean = sum(r[2] for r in result.rows) / 3
    default_mean = sum(r[1] for r in result.rows) / 3
    assert lsm_mean >= default_mean - 0.02
