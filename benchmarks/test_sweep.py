"""Sweep-runner benchmark: emits the ``BENCH_sweep.json`` artifact.

Runs the same 8-scenario grid (4 schemes x 2 budgets on the app19
memcachier trace) serially and on a 4-worker process pool, asserting the
parallel run reproduces the serial results exactly and recording the
wall-clock speedup. The speedup floor (>= 2x with 4 workers) is enforced
only where it can physically exist: ``BENCH_ENFORCE=1`` *and* at least 4
CPUs; a single-core container still verifies determinism and records the
numbers.
"""

from __future__ import annotations

import json
import os
from pathlib import Path


from repro.sim import BENCH_SCALE, Scenario, Sweep

ARTIFACT_PATH = Path(__file__).resolve().parent.parent / "BENCH_sweep.json"

WORKERS = 4

SWEEP = Sweep(
    base=Scenario(
        workload="memcachier",
        scale=BENCH_SCALE,
        seed=0,
        workload_params={"apps": [19]},
    ),
    axes={
        "scheme": ["default", "cliff-only", "hill-only", "cliffhanger"],
        "budgets.app19": [500_000.0, 1_000_000.0],
    },
)


def test_sweep_parallel_speedup():
    grid = SWEEP.scenarios()
    assert len(grid) == 8

    serial = SWEEP.run()  # also warms the on-disk trace cache for workers
    parallel = SWEEP.run(workers=WORKERS)

    # Determinism first: worker processes must not move a single bit.
    assert [r.hit_rates for r in parallel] == [r.hit_rates for r in serial]
    assert [r.scenario.name for r in parallel] == [
        r.scenario.name for r in serial
    ]

    speedup = (
        serial.elapsed_seconds / parallel.elapsed_seconds
        if parallel.elapsed_seconds > 0
        else 0.0
    )
    cpus = os.cpu_count() or 1
    payload = {
        "scenarios": len(grid),
        "workers": WORKERS,
        "cpu_count": cpus,
        "serial_seconds": serial.elapsed_seconds,
        "parallel_seconds": parallel.elapsed_seconds,
        "speedup": speedup,
        "serial_requests_per_sec": serial.requests_per_sec,
        "parallel_requests_per_sec": parallel.requests_per_sec,
        "grid": [
            {
                "name": r.scenario.name,
                "overall_hit_rate": r.overall_hit_rate,
                "requests": r.requests,
            }
            for r in serial
        ],
    }
    ARTIFACT_PATH.write_text(json.dumps(payload, indent=2), encoding="utf-8")
    print(
        f"\n[sweep] {len(grid)} scenarios: serial "
        f"{serial.elapsed_seconds:.2f}s, {WORKERS}-worker "
        f"{parallel.elapsed_seconds:.2f}s = {speedup:.2f}x "
        f"({cpus} CPUs); wrote {ARTIFACT_PATH}"
    )

    if os.environ.get("BENCH_ENFORCE") and cpus >= WORKERS:
        assert speedup >= 2.0, (
            f"4-worker sweep speedup {speedup:.2f}x < 2x on a "
            f"{cpus}-CPU machine"
        )
    elif cpus >= WORKERS:
        if speedup < 2.0:
            print(f"WARNING: sweep speedup {speedup:.2f}x < 2x")
    else:
        # Not enough cores for parallelism to pay; determinism checked above.
        assert speedup > 0.0


def test_sweep_smoke_two_by_two():
    """The CI smoke grid: 2 schemes x 2 budgets, serial, tiny."""
    sweep = Sweep(
        base=SWEEP.base,
        axes={
            "scheme": ["default", "cliffhanger"],
            "budgets.app19": [500_000.0, 1_000_000.0],
        },
    )
    outcome = sweep.run()
    assert len(outcome) == 4
    assert all(r.requests > 0 for r in outcome)
    assert all(0.0 <= r.overall_hit_rate <= 1.0 for r in outcome)
