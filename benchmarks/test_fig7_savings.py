"""Figure 7 bench: miss reduction and memory savings (app subset --
the full 20-app sweep replays the trace dozens of times)."""


def test_fig7_memory_savings(run_bench):
    result = run_bench("fig7", apps=[2, 3, 19])
    assert {row[0] for row in result.rows} == {"app02", "app03", "app19"}
    # Savings are a fraction in [0, 0.75] by construction of the grid.
    for row in result.rows:
        assert 0.0 <= row[3] <= 0.75
