#!/usr/bin/env python3
"""Cross-application hill climbing on a shared server (paper section 3.3).

Three tenants share a server. One is heavily over-provisioned, one is
starved, one is balanced. The cross-application hill climber watches
app-level shadow monitors and drifts the reservations toward the
configuration that equalizes marginal utility -- the incremental version
of the paper's Table 3 optimization.

The workload and the server both come from the Scenario API: the ``zipf``
workload declares the three tenants, ``build_server`` instantiates their
engines, and the climber attaches on top.

    python examples/multi_tenant_rebalancing.py
"""

from repro.core.crossapp import CrossAppHillClimber
from repro.sim import Scenario, build_server, load_workload

MB = 1 << 20

#: Budgets deliberately mismatched to the working sets below.
RESERVATIONS = {"hoarder": 6 * MB, "starved": 1 * MB, "steady": 2 * MB}

SCENARIO = Scenario(
    workload="zipf",
    scheme="default",
    scale=1.0,
    seed=1,
    budgets=dict(RESERVATIONS),
    workload_params={
        "apps": {
            # Tiny working set: most of the hoarder's 6MB is dead weight.
            "hoarder": {"num_keys": 2_000, "alpha": 1.1},
            # Working set far beyond 1MB: every extra byte helps.
            "starved": {"num_keys": 60_000, "alpha": 0.9},
            "steady": {"num_keys": 10_000, "alpha": 1.0},
        },
        "value_size": 200,
        "requests_per_app": 150_000,
    },
)


def main() -> None:
    trace = load_workload(
        SCENARIO.workload,
        scale=SCENARIO.scale,
        seed=SCENARIO.seed,
        **SCENARIO.workload_params,
    )
    server = build_server(SCENARIO, trace)
    climber = CrossAppHillClimber(
        server, credit_bytes=8192, shadow_bytes=1 * MB, seed=3
    ).attach()

    print(f"{'app':<10} {'before MB':>10}")
    for app, budget in RESERVATIONS.items():
        print(f"{app:<10} {budget / MB:>10.2f}")

    stats = server.replay(trace.requests())

    print(f"\n{'app':<10} {'after MB':>10} {'hit rate':>10}")
    for app, budget in climber.budgets().items():
        print(
            f"{app:<10} {budget / MB:>10.2f} "
            f"{stats.app_hit_rate(app):>10.3f}"
        )
    moved = sum(
        abs(climber.budgets()[app] - RESERVATIONS[app])
        for app in RESERVATIONS
    ) / 2
    print(f"\nmemory moved between tenants: {moved / MB:.2f} MB")


if __name__ == "__main__":
    main()
