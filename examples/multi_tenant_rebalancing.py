#!/usr/bin/env python3
"""Cross-application hill climbing on a shared server (paper section 3.3).

Three tenants share a server. One is heavily over-provisioned, one is
starved, one is balanced. The cross-application hill climber watches
app-level shadow monitors and drifts the reservations toward the
configuration that equalizes marginal utility -- the incremental version
of the paper's Table 3 optimization.

    python examples/multi_tenant_rebalancing.py
"""

from repro import CacheServer, SlabGeometry
from repro.cache.engines import FirstComeFirstServeEngine
from repro.core.crossapp import CrossAppHillClimber
from repro.workloads.generators import ZipfStream
from repro.workloads.sizes import FixedSize
from repro.workloads.trace import merge_by_time

MB = 1 << 20


def main() -> None:
    geometry = SlabGeometry.default()
    server = CacheServer(geometry)

    reservations = {"hoarder": 6 * MB, "starved": 1 * MB, "steady": 2 * MB}
    for app, budget in reservations.items():
        server.add_app(FirstComeFirstServeEngine(app, budget, geometry))

    climber = CrossAppHillClimber(
        server, credit_bytes=8192, shadow_bytes=1 * MB, seed=3
    ).attach()

    streams = [
        # Tiny working set: most of the hoarder's 6MB is dead weight.
        ZipfStream("hoarder", 2_000, 1.1, FixedSize(200), seed=1),
        # Working set far beyond 1MB: every extra byte helps.
        ZipfStream("starved", 60_000, 0.9, FixedSize(200), seed=2),
        ZipfStream("steady", 10_000, 1.0, FixedSize(200), seed=3),
    ]
    trace = merge_by_time(
        [stream.generate(150_000, 3600.0) for stream in streams]
    )

    print(f"{'app':<10} {'before MB':>10}")
    for app, budget in reservations.items():
        print(f"{app:<10} {budget / MB:>10.2f}")

    stats = server.replay(trace)

    print(f"\n{'app':<10} {'after MB':>10} {'hit rate':>10}")
    for app, budget in climber.budgets().items():
        print(
            f"{app:<10} {budget / MB:>10.2f} "
            f"{stats.app_hit_rate(app):>10.3f}"
        )
    moved = sum(
        abs(climber.budgets()[app] - reservations[app])
        for app in reservations
    ) / 2
    print(f"\nmemory moved between tenants: {moved / MB:.2f} MB")


if __name__ == "__main__":
    main()
