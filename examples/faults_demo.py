#!/usr/bin/env python3
"""Shard fault injection: crash a hot shard mid-crowd and watch recovery.

A scenario's ``faults`` block schedules deterministic crash/restart
events at request offsets. A crashed shard drops out of the ring: under
the ``failover`` policy its keys reroute to the next live successors
(replicas absorb the load), under ``miss-through`` its requests are
counted as dead-shard misses. A restarted shard comes back *cold* -- the
hit-rate-cliff regime the paper measures -- and the report's ``faults``
section quantifies the damage: downtime, miss cost attributable to the
fault, and time-to-recover (requests until the rolling hit rate is back
within epsilon of the pre-fault window). This demo replays a flash crowd
over a 4-shard ring, kills the busiest shard mid-crowd, and shows:

1. the fault-free baseline;
2. the same replay with a crash/restart under ``failover``;
3. ``miss-through`` on the same schedule (no rerouting, just misses);
4. failover plus online rebalancing -- the dead shard's budget moves to
   the survivors during the outage, and the cluster rides through the
   crash with no net hit-rate loss.

Note that time-to-recover is measured against each run's *own*
pre-fault window: the rebalanced run was running hotter before the
crash, so its recovery bar is higher.

    python examples/faults_demo.py
"""

from repro.sim import Scenario, run_scenario

BASE = Scenario(
    scheme="hill",
    workload="flash-crowd",
    scale=0.1,
    seed=0,
    workload_params={
        "apps": 2,
        "num_keys": 20_000,
        "requests_per_app": 80_000,
        "crowd_fraction": 0.7,
    },
    # Few vnodes: the uneven ring gives the crash a clearly hot target.
    cluster={"shards": 4, "virtual_nodes": 4},
)

# The flash crowd burns over [0.4, 0.6) of the 16,000-request stream;
# the shard dies at 45% and restarts -- cold -- at 50%, mid-crowd. At
# this scale a rolling window is only 125 requests, so the recovery
# epsilon is wider than the 0.02 default to ride out sampling noise.
FAULTS = {
    "events": [
        {"kind": "crash", "shard": 1, "at": 7_200},
        {"kind": "restart", "shard": 1, "at": 8_000},
    ],
    "policy": "failover",
    "recovery_epsilon": 0.07,
}

REBALANCE = {
    "epoch_requests": 500,
    "credit_bytes": 8192.0,
    "policy": "shadow",
}


def describe(name: str, result) -> dict:
    faults = result.cluster_report["faults"]
    crash = faults["crashes"][0]
    recovered = crash["time_to_recover"]
    print(
        f"{name:<22} hit rate {result.overall_hit_rate:.4f}  "
        f"downtime {crash['downtime_requests']:>5}  "
        f"time-to-recover "
        f"{recovered if recovered is not None else 'never':>5}  "
        f"miss cost {crash['miss_cost']:>7.1f}  "
        f"dead requests {faults['dead_requests']:>5}"
    )
    return crash


def main() -> None:
    healthy = run_scenario(BASE)
    print(
        f"{'healthy (no faults)':<22} hit rate "
        f"{healthy.overall_hit_rate:.4f}"
    )

    failover = run_scenario(BASE.replace(faults=FAULTS))
    describe("failover", failover)

    miss_through = run_scenario(
        BASE.replace(faults={**FAULTS, "policy": "miss-through"})
    )
    describe("miss-through", miss_through)

    rebalanced = run_scenario(
        BASE.replace(faults=FAULTS, rebalance=REBALANCE)
    )
    crash = describe("failover + rebalance", rebalanced)
    print(
        f"\nduring the outage the rebalancer lent the survivors "
        f"{crash['budget_moved_bytes'] / 1024:.0f} KB of the dead "
        f"shard's budget (restored at restart)"
    )

    # The cluster-level hit-rate timeline shows the two cliffs: the
    # crash (failover traffic lands on cold survivors) and the cold
    # restart (the hot shard returns empty).
    timeline = failover.cluster_report["faults"]["timeline"]
    print("\nrolling hit rate around the fault (failover, static split):")
    for offset, rate in zip(
        timeline["times"], timeline["series"]["hit_rate"]
    ):
        if 6_000 <= offset <= 12_000:
            bar = "#" * int(rate * 40)
            print(f"{offset:>7.0f}  {rate:.3f}  {bar}")

    assert failover.overall_hit_rate > miss_through.overall_hit_rate
    assert rebalanced.overall_hit_rate > failover.overall_hit_rate


if __name__ == "__main__":
    main()
