#!/usr/bin/env python3
"""Cliff-scaling demo: watch Cliffhanger climb a performance cliff.

Generates a workload whose hit-rate curve has a smooth convex cliff (the
paper's Figure 3 shape), pins a queue *inside* the cliff, and compares:

* plain LRU at that size (stuck: the working set almost never fits);
* a CliffhangerQueue at the same size (Talus-style partitioning driven
  by the shadow-queue pointer search of Algorithms 2+3);
* the theoretical concave hull (what oracle Talus would reach).

    python examples/cliff_scaling_demo.py
"""

from repro.allocation.talus import plan_talus_partition
from repro.cache.policies import make_policy
from repro.core.cliff_scaling import CliffConfig, CliffhangerQueue
from repro.profiling.hrc import HitRateCurve
from repro.profiling.stack_distance import StackDistanceProfiler
from repro.workloads.generators import ReuseDistanceStream
from repro.workloads.sizes import FixedSize

CHUNK = 256
CLIFF_CENTER = 400  # items
REQUESTS = 150_000


def main() -> None:
    stream = ReuseDistanceStream(
        "demo",
        mean_items=CLIFF_CENTER,
        sigma_items=CLIFF_CENTER // 5,
        size_model=FixedSize(100),
        refs_per_key=9,
        seed=7,
    )
    keys = [r.key for r in stream.generate(REQUESTS, 1000.0)]

    # Profile the true hit-rate curve (the operator would not have this;
    # Cliffhanger does not use it -- we print it for perspective).
    profiler = StackDistanceProfiler()
    for key in keys:
        profiler.record(key)
    curve = HitRateCurve.from_stack_distances(profiler.distances)
    cliffs = curve.cliffs(tolerance=0.02)
    print(f"detected cliff regions (items): {[(int(a), int(b)) for a, b in cliffs]}")

    operating_point = int(CLIFF_CENTER * 0.75)  # stuck inside the ramp
    print(f"operating point: {operating_point} items\n")

    # 1. Plain LRU.
    lru = make_policy("lru", operating_point * CHUNK)
    lru_hits = 0
    for key in keys:
        if lru.access(key):
            lru_hits += 1
        else:
            lru.insert(key, CHUNK)

    # 2. Cliffhanger's incremental cliff scaling (no curve knowledge).
    config = CliffConfig(
        chunk_size=CHUNK,
        probe_items=16,
        credit_bytes=8 * CHUNK,
        min_queue_items_for_cliff=100,
    )
    queue = CliffhangerQueue("demo", operating_point * CHUNK, config)
    cliffhanger_hits = 0
    for key in keys:
        if queue.access(key).hit:
            cliffhanger_hits += 1
        else:
            queue.insert(key)

    # 3. Oracle Talus (given the full curve).
    plan = plan_talus_partition(curve, operating_point, tolerance=0.02)

    print(f"plain LRU hit rate:        {lru_hits / REQUESTS:6.3f}")
    print(f"Cliffhanger hit rate:      {cliffhanger_hits / REQUESTS:6.3f}")
    if plan is not None:
        print(f"oracle Talus (hull) rate:  {plan.expected_hit_rate:6.3f}")
        print(
            f"\noracle anchors:      ({plan.left_anchor:.0f}, "
            f"{plan.right_anchor:.0f}) items"
        )
    print(
        f"Cliffhanger pointers: ({queue.left_pointer / CHUNK:.0f}, "
        f"{queue.right_pointer / CHUNK:.0f}) items, "
        f"request ratio {queue.ratio:.2f}, split={queue._split}"
    )


if __name__ == "__main__":
    main()
