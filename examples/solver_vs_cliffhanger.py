#!/usr/bin/env python3
"""The paper's core argument in one script: profile-and-solve vs
incremental shadow-queue optimization.

Replays the synthetic Application 19 (two performance cliffs plus a
concave memory sink) three ways:

* the stock first-come-first-serve allocation,
* the Dynacache solver (Mimir-estimated curves + concave optimization)
  -- which falls off the cliffs exactly as section 3.5 describes,
* Cliffhanger -- no curves, no solver, just shadow queues.

    python examples/solver_vs_cliffhanger.py
"""

from repro.experiments.common import (
    profile_app_classes,
    replay_apps,
    solver_plan_for_app,
)
from repro.workloads.memcachier import build_memcachier_trace

SCALE = 0.05
APP = "app19"
#: The paper's solver needs a large profile to estimate curves well
#: ("for the Dynacache solver to work well, it needs to profile a larger
#: amount of data", section 5.2). At this request volume -- the app's
#: share of the full trace -- the estimated curves flatten below the
#: cliffs and the solver falls off them; give it 2x the data and it
#: recovers. Cliffhanger needs no profile either way.
REQUESTS = 20_000


def main() -> None:
    trace = build_memcachier_trace(
        scale=SCALE, seed=0, apps=[19], total_requests=REQUESTS
    )

    print("profiling per-class hit-rate curves (exact stack distances)...")
    curves, frequencies = profile_app_classes(trace.app_requests(APP))
    for class_index, curve in sorted(curves.items()):
        cliffs = curve.cliffs(tolerance=0.02)
        marker = (
            f"cliff at {[(int(a), int(b)) for a, b in cliffs]}"
            if cliffs
            else "concave"
        )
        print(
            f"  slab class {class_index}: {frequencies[class_index]:>7} "
            f"GETs, plateau {curve.hit_rates[-1]:.2f}, {marker}"
        )

    print("\nreplaying under three allocation schemes...")
    _, default_stats = replay_apps(trace, "default")
    plan = solver_plan_for_app(trace, APP)
    _, solver_stats = replay_apps(trace, "planned", plans={APP: plan})
    _, cliffhanger_stats = replay_apps(trace, "cliffhanger", seed=0)

    rows = [
        ("default (FCFS)", default_stats.app_hit_rate(APP)),
        ("Dynacache solver", solver_stats.app_hit_rate(APP)),
        ("Cliffhanger", cliffhanger_stats.app_hit_rate(APP)),
    ]
    print(f"\n{'scheme':<20} {'hit rate':>8}")
    for name, rate in rows:
        print(f"{name:<20} {rate:>8.3f}")
    print(
        "\npaper shape: the solver loses to the default on this app "
        "(it cannot see past the cliffs); Cliffhanger does not."
    )


if __name__ == "__main__":
    main()
