#!/usr/bin/env python3
"""The paper's core argument in one script: profile-and-solve vs
incremental shadow-queue optimization.

Replays the synthetic Application 19 (two performance cliffs plus a
concave memory sink) three ways, each declared as a :class:`Scenario`:

* the stock first-come-first-serve allocation,
* the Dynacache solver (Mimir-estimated curves + concave optimization)
  -- which falls off the cliffs exactly as section 3.5 describes,
* Cliffhanger -- no curves, no solver, just shadow queues.

    python examples/solver_vs_cliffhanger.py
"""

from repro.sim import (
    Scenario,
    load_workload,
    profile_app_classes,
    run_scenario,
)

SCALE = 0.05
APP = "app19"
#: The paper's solver needs a large profile to estimate curves well
#: ("for the Dynacache solver to work well, it needs to profile a larger
#: amount of data", section 5.2). At this request volume -- the app's
#: share of the full trace -- the estimated curves flatten below the
#: cliffs and the solver falls off them; give it 2x the data and it
#: recovers. Cliffhanger needs no profile either way.
REQUESTS = 20_000

BASE = Scenario(
    workload="memcachier",
    scale=SCALE,
    seed=0,
    workload_params={"apps": [19], "total_requests": REQUESTS},
)


def main() -> None:
    trace = load_workload(
        "memcachier", scale=SCALE, seed=0, apps=[19], total_requests=REQUESTS
    )

    print("profiling per-class hit-rate curves (exact stack distances)...")
    curves, frequencies = profile_app_classes(trace.compiled_for(APP))
    for class_index, curve in sorted(curves.items()):
        cliffs = curve.cliffs(tolerance=0.02)
        marker = (
            f"cliff at {[(int(a), int(b)) for a, b in cliffs]}"
            if cliffs
            else "concave"
        )
        print(
            f"  slab class {class_index}: {frequencies[class_index]:>7} "
            f"GETs, plateau {curve.hit_rates[-1]:.2f}, {marker}"
        )

    print("\nreplaying under three allocation schemes...")
    results = [
        ("default (FCFS)", run_scenario(BASE.replace(scheme="default"))),
        (
            "Dynacache solver",
            run_scenario(BASE.replace(scheme="planned", plans="solver")),
        ),
        ("Cliffhanger", run_scenario(BASE.replace(scheme="cliffhanger"))),
    ]

    print(f"\n{'scheme':<20} {'hit rate':>8}")
    for name, result in results:
        print(f"{name:<20} {result.hit_rates[APP]:>8.3f}")
    print(
        "\npaper shape: the solver loses to the default on this app "
        "(it cannot see past the cliffs); Cliffhanger does not."
    )


if __name__ == "__main__":
    main()
