#!/usr/bin/env python3
"""Cluster-scale simulation: shards, dynamic workloads, hot shards.

A scenario with a ``cluster`` block replays across N cache-server
shards behind consistent hashing -- each shard runs its own engines
with ``budget/N`` bytes, mirroring the paper's no-coordination design
(section 4.3). This demo:

1. shows the parity anchor: a 1-shard cluster reproduces the plain
   single-server result exactly;
2. replays a flash-crowd workload on 4 shards and prints the per-shard
   load report (the crowd's keys pile onto whichever shards own them);
3. sweeps shard counts with a ``cluster.shards`` axis.

Shard budgets stay frozen at ``total/N`` here; see
``examples/rebalance_demo.py`` for the ``rebalance`` block that lets
hot shards steal budget from cold ones online.

    python examples/cluster_demo.py
"""

from repro.sim import Scenario, Sweep, run_scenario

BASE = Scenario(
    workload="flash-crowd",
    scale=0.1,
    seed=0,
    workload_params={
        "apps": 2,
        "num_keys": 8_000,
        "requests_per_app": 40_000,
        "crowd_fraction": 0.8,
        "crowd_keys": 4,
    },
)


def main() -> None:
    # 1. Parity anchor: one shard == the single-server path, exactly.
    plain = run_scenario(BASE)
    one_shard = run_scenario(BASE.replace(cluster={"shards": 1}))
    assert one_shard.hit_rates == plain.hit_rates
    assert one_shard.overall_hit_rate == plain.overall_hit_rate
    print(
        f"1-shard cluster == single server: hit rate "
        f"{one_shard.overall_hit_rate:.4f} (exact match)\n"
    )

    # 2. Four shards under a flash crowd: watch the load report.
    clustered = run_scenario(BASE.replace(cluster={"shards": 4}))
    print(clustered.render())

    # 3. Replicating the hot keys spreads the crowd.
    replicated = run_scenario(
        BASE.replace(cluster={"shards": 4, "replication": 2})
    )
    print()
    print(replicated.render())

    # 4. Shard-count sweep via a dotted axis.
    sweep = Sweep(base=BASE, axes={"cluster.shards": [1, 2, 4, 8]})
    print()
    print(sweep.run().render())


if __name__ == "__main__":
    main()
