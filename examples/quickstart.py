#!/usr/bin/env python3
"""Quickstart: declare a simulation, run it, compare schemes.

The Scenario API describes a whole simulation as data -- workload,
engine scheme, eviction policy, budgets, scale, seed -- and
``run_scenario`` executes it through the compiled-trace fast path.
This script replays two Zipf tenants under the stock allocator and
under Cliffhanger, and prints where the hits (and the memory) moved.
Runs in a few seconds.

    python examples/quickstart.py
"""

from repro.sim import Scenario, run_scenario

#: Two tenants: "shop" has a large key universe (its working set does
#: not fit), "feed" a small, hot one.
BASE = Scenario(
    workload="zipf",
    scale=1.0,
    seed=42,
    workload_params={
        "apps": {
            "shop": {"num_keys": 30_000, "alpha": 1.0, "value_size": 600},
            "feed": {"num_keys": 8_000, "alpha": 1.1, "value_size": 300},
        },
        "requests_per_app": 100_000,
        "budget_fraction": 0.15,
    },
)


def main() -> None:
    default = run_scenario(BASE.replace(scheme="default"))
    cliffhanger = run_scenario(
        BASE.replace(scheme="cliffhanger"), baseline=default, keep_server=True
    )

    print("per-tenant hit rates (default -> cliffhanger)")
    for app in sorted(default.hit_rates):
        print(
            f"  {app}: {default.hit_rates[app]:6.3f} -> "
            f"{cliffhanger.hit_rates[app]:6.3f} "
            f"(miss reduction {cliffhanger.miss_reductions[app]:+.3f})"
        )

    print("\nmemory allocation Cliffhanger converged to (bytes per slab class)")
    for app, engine in cliffhanger.server.engines.items():
        capacities = {
            idx: int(capacity)
            for idx, capacity in engine.capacities().items()
            if capacity > 0
        }
        print(f"  {app}: {capacities}")

    print(
        f"\nreplayed {cliffhanger.requests:,} requests at "
        f"{cliffhanger.requests_per_sec:,.0f} req/s"
    )
    print("\nsame scenario as JSON (feed it to `python -m repro.experiments run`):")
    print(BASE.replace(scheme="cliffhanger").to_json(indent=2))


if __name__ == "__main__":
    main()
