#!/usr/bin/env python3
"""Quickstart: a multi-tenant cache server running Cliffhanger.

Builds a server with two tenants, replays a skewed workload, and prints
per-tenant hit rates plus where Cliffhanger moved the memory. Runs in a
few seconds.

    python examples/quickstart.py
"""

from repro import CacheServer, CliffhangerEngine, Request, SlabGeometry
from repro.workloads.generators import ZipfStream
from repro.workloads.sizes import FixedSize, MixtureSize
from repro.workloads.trace import merge_by_time


def main() -> None:
    geometry = SlabGeometry.default()
    server = CacheServer(geometry)

    # Two tenants with 4 MB reservations each. "shop" stores a mix of
    # small sessions and large rendered fragments; "feed" stores small
    # items only.
    for app in ("shop", "feed"):
        server.add_app(
            CliffhangerEngine(app, 4 << 20, geometry, seed=42)
        )

    shop_sizes = MixtureSize(
        [(0.8, FixedSize(120)), (0.2, FixedSize(6000))]
    )
    shop = ZipfStream(
        "shop", num_keys=30_000, alpha=1.0, size_model=shop_sizes, seed=1
    )
    feed = ZipfStream(
        "feed", num_keys=8_000, alpha=1.1, size_model=FixedSize(300), seed=2
    )

    trace = merge_by_time(
        [shop.generate(120_000, 3600.0), feed.generate(80_000, 3600.0)]
    )
    stats = server.replay(trace)

    print("per-tenant hit rates")
    for app in ("shop", "feed"):
        print(f"  {app}: {stats.app_hit_rate(app):6.3f}")

    print("\nmemory allocation Cliffhanger converged to (bytes per slab class)")
    for app, engine in server.engines.items():
        capacities = {
            idx: int(capacity)
            for idx, capacity in engine.capacities().items()
            if capacity > 0
        }
        print(f"  {app}: {capacities}")

    ops = server.total_ops()
    print(
        f"\nprimitive ops: {ops.total():,} "
        f"(shadow lookups: {ops.shadow_lookups:,}, "
        f"evictions: {ops.evictions:,})"
    )


if __name__ == "__main__":
    main()
