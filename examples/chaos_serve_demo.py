#!/usr/bin/env python3
"""Chaos under live load: crash a shard mid-serve, retry through it.

Combining a scenario's ``serve`` block with a ``faults`` block turns
the offline crash/restart schedule into live chaos: the events fire on
the request-count axis while the asyncio server is taking open-loop
traffic, so the fault timeline is deterministic per seed even though
the wall-clock interleaving is not. The serve report then grows two
things the offline replay cannot measure:

* the client's-eye view of the outage -- retries, timeouts, hedges,
  and a p99-per-window latency timeline aligned with the fault axis;
* the recovery metrics (downtime, miss cost, time-to-recover) of the
  same ``faults`` section the replay path reports.

This demo serves one Zipf stream three ways: fault-free, with a
mid-run crash under ``miss-through`` (dead shard's requests just
miss), and with the same crash under ``failover`` plus a client retry
policy (capped exponential backoff, retry budget). Failover+retry
keeps the hit rate above miss-through, and the latency timeline shows
p99 spiking in the outage windows and recovering after the restart.

    python examples/chaos_serve_demo.py
"""

from repro.sim import Scenario, run_scenario

BASE = Scenario(
    scheme="default",
    workload="zipf",
    scale=0.05,
    seed=0,
    workload_params={"apps": 2, "num_keys": 2_000, "requests_per_app": 20_000},
    cluster={"shards": 4},
)

#: 3000 req/s for 0.4 s schedules 1200 requests; the shard dies at 40%
#: of that stream and comes back -- cold -- at 70%.
SERVE = {"rate": 3_000.0, "duration_s": 0.4, "backpressure": "queue"}

FAULTS = {
    "events": [
        {"kind": "crash", "shard": 1, "at": 480},
        {"kind": "restart", "shard": 1, "at": 840},
    ],
    "policy": "failover",
}

RETRY = {
    "max_attempts": 3,
    "base_backoff_s": 0.001,
    "max_backoff_s": 0.010,
    "budget": 0.5,
}


def serve_section(result) -> dict:
    return result.cluster_report["serve"]


def describe(name: str, payload: dict, hit_rate: float) -> None:
    latency = payload["latency_ms"]
    print(
        f"{name:<20} hit rate {hit_rate:.4f}  p99 {latency['p99']:6.2f} ms"
        f"  retries {payload['retries']:>3}  timeouts "
        f"{payload['timeouts']:>3}  errors {payload['errors']:>3}"
    )


def main() -> None:
    healthy = run_scenario(BASE.replace(serve=dict(SERVE)))
    describe(
        "healthy", serve_section(healthy), healthy.overall_hit_rate
    )

    miss_through = run_scenario(
        BASE.replace(
            serve=dict(SERVE),
            faults={**FAULTS, "policy": "miss-through"},
        )
    )
    describe(
        "miss-through",
        serve_section(miss_through),
        miss_through.overall_hit_rate,
    )
    dead = serve_section(miss_through)["faults"]["dead_requests"]
    print(f"{'':20} ({dead} requests hit the dead shard and missed)")

    chaos = run_scenario(
        BASE.replace(
            serve={**SERVE, "retry": dict(RETRY)},
            faults=dict(FAULTS),
        )
    )
    payload = serve_section(chaos)
    describe("failover + retry", payload, chaos.overall_hit_rate)

    crash = payload["faults"]["crashes"][0]
    recovered = crash["time_to_recover"]
    print(
        f"\ncrash at {crash['crash_at']}, restart at "
        f"{crash['restart_at']}: downtime {crash['downtime_requests']} "
        f"requests, time-to-recover "
        f"{recovered if recovered is not None else 'never'}"
    )

    # p99 per scheduled-index window: the outage spike and the drain.
    print("\np99 per timeline window (scheduled-index axis):")
    for window in payload["faults"]["latency_timeline"]:
        if not window["completed"]:
            continue
        bar = "#" * min(60, int(window["p99_ms"] * 4))
        print(
            f"[{window['start']:>5}, {window['stop']:>5})  "
            f"{window['p99_ms']:7.2f} ms  {bar}"
        )

    assert chaos.overall_hit_rate > miss_through.overall_hit_rate


if __name__ == "__main__":
    main()
