#!/usr/bin/env python3
"""Live serving: the cluster behind a memcached-style asyncio server.

A scenario's ``serve`` block replaces the offline replay with a live
data plane: an asyncio server speaking the memcached text protocol
fronts the shard cluster (pipelined connections, a bounded request
queue, shed-vs-queue backpressure), and an open-loop generator replays
the workload's trace at a target request rate, measuring latency from
each request's *scheduled* arrival -- so overload shows up in the tail
percentiles instead of hiding in a slowing client. The server's hot
path batches every queue drain into one ``Cluster.process_batch`` call,
which the property tests prove bit-identical to per-request processing.

This demo serves a short Zipf stream three ways:

1. comfortably under capacity (queue backpressure, low latency);
2. deliberately overdriven with ``queue`` backpressure -- nothing is
   rejected, so the open-loop backlog lands in p99;
3. the same overdrive with ``shed`` backpressure and a small queue --
   latency stays flat and the overload shows up as SERVER_ERROR busy
   rejections instead.

    python examples/serve_demo.py
"""

from repro.sim import Scenario, run_scenario

BASE = Scenario(
    scheme="default",
    workload="zipf",
    scale=0.05,
    seed=0,
    workload_params={"apps": 2, "num_keys": 2_000, "requests_per_app": 20_000},
    cluster={"shards": 4},
)

POINTS = [
    (
        "under capacity",
        {"rate": 3_000.0, "duration_s": 0.4, "backpressure": "queue"},
    ),
    (
        "overdriven, queue",
        {"rate": 45_000.0, "duration_s": 0.4, "backpressure": "queue"},
    ),
    (
        "overdriven, shed",
        {
            "rate": 45_000.0,
            "duration_s": 0.4,
            "backpressure": "shed",
            "queue_depth": 32,
            "max_batch": 64,
        },
    ),
]


def main() -> None:
    for title, serve in POINTS:
        result = run_scenario(BASE.replace(serve=dict(serve)))
        payload = result.cluster_report["serve"]
        latency = payload["latency_ms"]
        print(f"-- {title} --")
        print(
            f"  offered {payload['offered_rate']:,.0f} req/s, achieved "
            f"{payload['achieved_rate']:,.0f} req/s, shed "
            f"{payload['shed']:,} of {payload['requests']:,}"
        )
        print(
            f"  latency ms: p50 {latency['p50']:.2f}  "
            f"p99 {latency['p99']:.2f}  max {latency['max']:.2f}"
        )
    print(
        "\nOverload is a policy choice: 'queue' keeps every request and "
        "pays in tail latency; 'shed' keeps the tail flat and pays in "
        "rejections."
    )


if __name__ == "__main__":
    main()
