#!/usr/bin/env python3
"""Online cross-shard rebalancing: flash-crowd recovery vs. a static split.

PR 3's clusters froze every shard at ``budget/N`` for the whole replay.
A scenario's ``rebalance`` block lifts the paper's hill climbing to shard
granularity: every ``epoch_requests`` requests, budget credits move from
a random donor shard to the shard showing the most demand (shadow hits or
raw load). This demo replays a flash crowd over a deliberately uneven
4-shard ring and shows:

1. the static split's aggregate hit rate (the baseline);
2. the same replay with online rebalancing -- higher hit rate, and the
   hot shard's budget visibly climbing across epochs;
3. the per-epoch allocation timeline the cluster report records.

    python examples/rebalance_demo.py
"""

from repro.sim import Scenario, miss_reduction, run_scenario

BASE = Scenario(
    scheme="hill",
    workload="flash-crowd",
    scale=0.1,
    seed=0,
    workload_params={
        "apps": 2,
        "num_keys": 20_000,
        "requests_per_app": 80_000,
        "crowd_fraction": 0.7,
    },
    # Few vnodes on purpose: the ring splits the keyspace unevenly, which
    # is exactly what a frozen even budget split cannot correct.
    cluster={"shards": 4, "virtual_nodes": 4},
)

REBALANCE = {
    "epoch_requests": 500,
    "credit_bytes": 8192.0,
    "policy": "shadow",
}


def main() -> None:
    # 1. The frozen even split.
    static = run_scenario(BASE)
    print("== static even split ==")
    print(static.render())

    # 2. Online rebalancing: same trace, same seed, drifting budgets.
    online = run_scenario(BASE.replace(rebalance=REBALANCE))
    print("\n== online rebalancing (shadow policy) ==")
    print(online.render())

    rebalance = online.cluster_report["rebalance"]
    recovered = miss_reduction(
        static.overall_hit_rate, online.overall_hit_rate
    )
    print(
        f"\nflash-crowd recovery: {recovered:.1%} of the static split's "
        f"misses eliminated ({rebalance['transfers']} transfers over "
        f"{rebalance['epochs']} epochs)"
    )

    # 3. The per-epoch allocation timeline (sampled every 8th epoch).
    timeline = rebalance["timeline"]
    budgets = rebalance["shard_budgets"]
    hot = budgets.index(max(budgets))
    print(f"\nepoch  {'  '.join(f'shard{s} (KB)' for s in range(4))}")
    for i, epoch in enumerate(timeline["times"]):
        if i % 8 and i != len(timeline["times"]) - 1:
            continue
        row = "  ".join(
            f"{timeline['series'][f'shard{s}'][i] / 1024:>10.0f}"
            for s in range(4)
        )
        print(f"{epoch:>5.0f}  {row}")
    print(
        f"\nshard {hot} (largest keyspace slice) grew from an even "
        f"{timeline['series'][f'shard{hot}'][0] / 1024:.0f} KB to "
        f"{budgets[hot] / 1024:.0f} KB"
    )
    assert online.overall_hit_rate > static.overall_hit_rate


if __name__ == "__main__":
    main()
