#!/usr/bin/env python3
"""Parameter sweeps: a scheme x budget grid on worker processes.

A ``Sweep`` expands a base scenario against axes (any scenario field,
or dotted paths into nested params) and runs the whole grid -- serially
or across a process pool sharing the on-disk compiled-trace cache.
Results come back in deterministic grid order either way.

    python examples/sweep_demo.py

The same sweep as a JSON spec (see README "Scenario API"):

    python -m repro.experiments sweep examples/sweep_spec.json --workers 4
"""

import os

from repro.sim import Scenario, Sweep

SWEEP = Sweep(
    base=Scenario(
        workload="memcachier",
        scale=0.02,
        seed=0,
        workload_params={"apps": [19]},
    ),
    axes={
        "scheme": ["default", "cliff-only", "hill-only", "cliffhanger"],
        "budgets.app19": [400_000.0, 800_000.0],
    },
)


def main() -> None:
    workers = min(4, os.cpu_count() or 1)
    result = SWEEP.run(workers=workers)
    print(result.render())
    best = max(result.results, key=lambda r: r.overall_hit_rate)
    print(
        f"\nbest grid point: {best.scenario.label()} "
        f"(hit rate {best.overall_hit_rate:.4f})"
    )


if __name__ == "__main__":
    main()
