"""Tests for the Dynacache solver: optimal on concave curves, blind to
cliffs (by design -- it is the paper's failing baseline)."""

import pytest

from repro.allocation.dynacache import DynacacheSolver
from repro.common.errors import AllocationError
from repro.profiling.hrc import HitRateCurve


def concave(points, total=10000):
    return HitRateCurve.from_points(points, total)


class TestValidation:
    def test_bad_granularity(self):
        with pytest.raises(AllocationError):
            DynacacheSolver(granularity=0)

    def test_empty_queues(self):
        with pytest.raises(AllocationError):
            DynacacheSolver(10).allocate({}, {}, 100)

    def test_missing_frequency(self):
        curve = concave([(0, 0.0), (100, 0.9)])
        with pytest.raises(AllocationError):
            DynacacheSolver(10).allocate({"q": curve}, {}, 100)

    def test_infeasible_minimum(self):
        curve = concave([(0, 0.0), (100, 0.9)])
        with pytest.raises(AllocationError):
            DynacacheSolver(10, minimum=200).allocate(
                {"a": curve, "b": curve}, {"a": 1, "b": 1}, 100
            )


class TestConcaveOptimality:
    def test_equal_curves_split_evenly(self):
        curve = concave([(0, 0.0), (50, 0.5), (100, 0.8), (200, 0.9)])
        plan = DynacacheSolver(granularity=10).allocate(
            {"a": curve, "b": curve}, {"a": 100, "b": 100}, 200
        )
        assert plan.allocations["a"] == pytest.approx(
            plan.allocations["b"], abs=10
        )

    def test_hot_queue_wins_memory(self):
        curve = concave([(0, 0.0), (100, 0.5), (200, 0.75), (400, 0.9)])
        plan = DynacacheSolver(granularity=20).allocate(
            {"hot": curve, "cold": curve}, {"hot": 900, "cold": 100}, 400
        )
        assert plan.allocations["hot"] > plan.allocations["cold"]

    def test_weights_bias_allocation(self):
        curve = concave([(0, 0.0), (100, 0.5), (200, 0.75), (400, 0.9)])
        plan = DynacacheSolver(granularity=20).allocate(
            {"a": curve, "b": curve},
            {"a": 100, "b": 100},
            400,
            weights={"a": 10.0},
        )
        assert plan.allocations["a"] > plan.allocations["b"]

    def test_budget_fully_used(self):
        curve = concave([(0, 0.0), (100, 0.9)])
        plan = DynacacheSolver(granularity=10).allocate(
            {"a": curve, "b": curve}, {"a": 1, "b": 1}, 500
        )
        assert plan.total == pytest.approx(500)

    def test_matches_water_filling_on_analytic_curves(self):
        """For h_a with twice the slope of h_b and equal frequency, the
        optimum saturates a first. Greedy must find it."""
        steep = concave([(0, 0.0), (100, 1.0)])
        shallow = concave([(0, 0.0), (200, 1.0)])
        plan = DynacacheSolver(granularity=5).allocate(
            {"steep": steep, "shallow": shallow},
            {"steep": 100, "shallow": 100},
            150,
        )
        assert plan.allocations["steep"] == pytest.approx(100, abs=5)
        assert plan.allocations["shallow"] == pytest.approx(50, abs=5)


class TestCliffBlindness:
    def test_starves_a_cliff_queue(self):
        """A queue whose curve is flat before a cliff gets nothing while
        a concave sink has positive gradient -- the application 19
        failure."""
        cliff = concave(
            [(0, 0.0), (100, 0.0), (190, 0.02), (200, 0.95), (300, 0.96)]
        )
        sink = concave([(0, 0.0), (1000, 0.6)])
        plan = DynacacheSolver(granularity=10).allocate(
            {"cliff": cliff, "sink": sink},
            {"cliff": 500, "sink": 500},
            400,
        )
        # The cliff queue never shows local gradient, so the solver
        # pours the budget into the sink and the cliff starves.
        assert plan.allocations["sink"] > plan.allocations["cliff"]
        assert plan.allocations["cliff"] < 200  # below the cliff top

    def test_leftover_spread_is_proportional(self):
        """Leftover after all curves flatten goes proportionally to
        granted memory, never rescuing an unfunded cliff."""
        flat = concave([(0, 0.0), (10, 0.5), (20, 0.5)])
        cliff = concave([(0, 0.0), (90, 0.0), (100, 0.9)])
        plan = DynacacheSolver(granularity=10).allocate(
            {"flat": flat, "cliff": cliff},
            {"flat": 100, "cliff": 100},
            300,
        )
        assert plan.allocations["cliff"] == pytest.approx(0, abs=1)
