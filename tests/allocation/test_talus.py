"""Tests for Talus partition planning, including the paper's worked
example (Figure 4: 8000 items on a (2000, 13500) cliff -> 957/7043 split
at a 48%/52% request ratio)."""

import pytest
from hypothesis import given, strategies as st

from repro.allocation.talus import (
    TalusPartition,
    compute_ratio,
    plan_talus_partition,
)
from repro.profiling.hrc import HitRateCurve


def cliff_curve():
    sizes = [0, 2000, 4000, 8000, 12000, 13500, 16000]
    rates = [0.0, 0.10, 0.12, 0.20, 0.60, 0.90, 0.92]
    return HitRateCurve(sizes, rates, total_requests=100000)


class TestComputeRatio:
    def test_paper_example(self):
        ratio = compute_ratio(8000, 2000, 13500)
        assert ratio == pytest.approx(5500 / 11500)
        # "split the requests ... using a ratio of 0.48 and 0.52"
        assert round(ratio, 2) == 0.48

    def test_degenerate_returns_half(self):
        assert compute_ratio(100, 100, 100) == 0.5
        assert compute_ratio(100, 100, 200) == 0.5
        assert compute_ratio(100, 50, 100) == 0.5

    @given(
        st.floats(1, 1e6),
        st.floats(0, 0.99),
        st.floats(1.01, 10),
    )
    def test_partition_sizes_sum_to_operating_point(
        self, size, left_frac, right_frac
    ):
        """The Talus identity: L*rho + R*(1-rho) == S whenever
        L < S < R."""
        left, right = size * left_frac, size * right_frac
        ratio = compute_ratio(size, left, right)
        assert left * ratio + right * (1 - ratio) == pytest.approx(
            size, rel=1e-9
        )


class TestPaperExampleEndToEnd:
    def test_957_and_7043_items(self):
        ratio = compute_ratio(8000, 2000, 13500)
        left_physical = 2000 * ratio
        right_physical = 13500 * (1 - ratio)
        assert left_physical == pytest.approx(957, abs=1)
        assert right_physical == pytest.approx(7043, abs=1)


class TestPlanPartition:
    def test_plans_inside_cliff(self):
        plan = plan_talus_partition(cliff_curve(), 8000, tolerance=0.02)
        assert plan is not None
        assert plan.left_anchor < 8000 < plan.right_anchor
        assert plan.left_size + plan.right_size == pytest.approx(8000)
        assert plan.expected_hit_rate > cliff_curve().hit_rate(8000)

    def test_no_plan_outside_cliff(self):
        assert plan_talus_partition(cliff_curve(), 15500) is None

    def test_expected_rate_is_hull_interpolation(self):
        curve = cliff_curve()
        plan = plan_talus_partition(curve, 8000, tolerance=0.02)
        hull = curve.concave_hull()
        assert plan.expected_hit_rate == pytest.approx(
            hull.hit_rate(8000), abs=0.02
        )

    def test_invalid_partition_rejected(self):
        with pytest.raises(Exception):
            TalusPartition(
                size=100,
                left_anchor=200,  # anchor beyond the operating point
                right_anchor=300,
                left_fraction=0.5,
                left_size=50,
                right_size=50,
                expected_hit_rate=0.5,
            )

    def test_size_mismatch_rejected(self):
        with pytest.raises(Exception):
            TalusPartition(
                size=100,
                left_anchor=50,
                right_anchor=150,
                left_fraction=0.5,
                left_size=10,
                right_size=10,
                expected_hit_rate=0.5,
            )
