"""Tests for LookAhead: unlike the greedy solver it strides across
performance cliffs, because it evaluates average utility over every
possible expansion."""

import pytest

from repro.allocation.lookahead import LookAheadAllocator
from repro.common.errors import AllocationError
from repro.profiling.hrc import HitRateCurve


def curve(points, total=10000):
    return HitRateCurve.from_points(points, total)


class TestLookAhead:
    def test_bad_granularity(self):
        with pytest.raises(AllocationError):
            LookAheadAllocator(0)

    def test_crosses_a_cliff(self):
        cliff = curve(
            [(0, 0.0), (100, 0.0), (190, 0.02), (200, 0.95), (300, 0.96)]
        )
        sink = curve([(0, 0.0), (1000, 0.6)])
        plan = LookAheadAllocator(granularity=10).allocate(
            {"cliff": cliff, "sink": sink},
            {"cliff": 500, "sink": 500},
            400,
        )
        # LookAhead sees the big average utility of jumping to 200.
        assert plan.allocations["cliff"] >= 200

    def test_agrees_with_greedy_on_concave(self):
        from repro.allocation.dynacache import DynacacheSolver

        a = curve([(0, 0.0), (100, 0.6), (200, 0.8), (400, 0.9)])
        b = curve([(0, 0.0), (100, 0.3), (200, 0.5), (400, 0.7)])
        curves = {"a": a, "b": b}
        freqs = {"a": 100, "b": 100}
        lookahead = LookAheadAllocator(20).allocate(curves, freqs, 400)
        greedy = DynacacheSolver(20).allocate(curves, freqs, 400)
        assert lookahead.allocations["a"] == pytest.approx(
            greedy.allocations["a"], abs=40
        )

    def test_expected_rate_reported(self):
        a = curve([(0, 0.0), (100, 0.8)])
        plan = LookAheadAllocator(10).allocate({"a": a}, {"a": 10}, 100)
        assert plan.expected_hit_rates["a"] == pytest.approx(0.8)
        assert plan.expected_overall_hit_rate == pytest.approx(0.8)
