"""Tests for the trivial static plans."""

import pytest

from repro.allocation.static import proportional_plan, uniform_plan
from repro.common.errors import AllocationError


class TestUniform:
    def test_even_split(self):
        plan = uniform_plan(["a", "b", "c", "d"], 100)
        assert all(v == 25 for v in plan.values())

    def test_empty_rejected(self):
        with pytest.raises(AllocationError):
            uniform_plan([], 100)

    def test_zero_budget_rejected(self):
        with pytest.raises(AllocationError):
            uniform_plan(["a"], 0)


class TestProportional:
    def test_follows_demand(self):
        plan = proportional_plan({"a": 3, "b": 1}, 100)
        assert plan["a"] == pytest.approx(75)
        assert plan["b"] == pytest.approx(25)

    def test_zero_demand_falls_back_to_uniform(self):
        plan = proportional_plan({"a": 0, "b": 0}, 100)
        assert plan["a"] == plan["b"] == 50

    def test_total_preserved(self):
        plan = proportional_plan({"a": 7, "b": 2, "c": 13}, 123)
        assert sum(plan.values()) == pytest.approx(123)
