"""Smoke and shape tests for every experiment runner at tiny scale.

These are integration tests: each runner must execute end to end,
produce the declared table shape, and (where cheap to check) satisfy the
paper's qualitative claims.
"""

import functools

import pytest

from repro.experiments.common import ExperimentResult
from repro.experiments.registry import REGISTRY, get_runner, list_experiments

TINY = 0.012


@functools.lru_cache(maxsize=None)
def tiny_sensitivity():
    """The slowest runner (a 14-replay sweep): run it once per session,
    shared by the smoke test and the qualitative-claim test."""
    return get_runner("sensitivity")(scale=TINY, seed=0)


@pytest.mark.parametrize("experiment_id", list_experiments())
def test_runner_smoke(experiment_id):
    """Every registered runner executes at tiny scale and returns a
    well-formed :class:`ExperimentResult` -- no exceptions, no skips."""
    runner = get_runner(experiment_id)
    kwargs = {"scale": TINY} if experiment_id not in ("tab6", "tab7") else {
        "scale": 0.15
    }
    if experiment_id == "fig7":
        kwargs["apps"] = [3, 19]
    result = (
        tiny_sensitivity()
        if experiment_id == "sensitivity"
        else runner(seed=0, **kwargs)
    )
    assert isinstance(result, ExperimentResult)
    assert result.experiment_id == experiment_id
    assert result.rows, experiment_id
    assert result.headers, experiment_id
    for row in result.rows:
        assert len(row) == len(result.headers), experiment_id
    rendered = result.render()
    assert result.experiment_id in rendered


def test_registry_covers_every_paper_artifact():
    expected = {
        "fig1", "fig2", "fig3", "fig4", "fig6", "fig7", "fig8", "fig9",
        "tab1", "tab2", "tab3", "tab4", "tab5", "tab6", "tab7",
        "sensitivity", "cluster_scaling", "cluster_rebalance",
        "cluster_faults", "cluster_serve", "serve_chaos",
    }
    assert set(REGISTRY) == expected


def test_unknown_runner_rejected():
    from repro.common.errors import ConfigurationError

    with pytest.raises(ConfigurationError):
        get_runner("fig99")


class TestQualitativeClaims:
    def test_fig4_reproduces_papers_arithmetic(self):
        result = get_runner("fig4")(scale=TINY, seed=0)
        paper_row = next(r for r in result.rows if r[0] == "paper-example")
        assert round(paper_row[4], 2) == 0.48  # request ratio
        assert abs(paper_row[5] - 957) < 1.0  # left physical queue
        assert abs(paper_row[6] - 7043) < 1.0  # right physical queue

    def test_tab4_ablation_ordering(self):
        result = get_runner("tab4")(scale=0.03, seed=0)
        total = next(r for r in result.rows if r[0] == "total")
        default, cliff_only, hill_only, combined = total[2:6]
        assert cliff_only > default
        assert combined > default

    def test_sensitivity_large_credits_degrade(self):
        # Section 5.3: very large credits oscillate; tiny-scale run of
        # the real sweep (this used to be a permanent skip).
        result = tiny_sensitivity()
        by_credit = {}
        for credit, shadow, resize, hit_rate in result.rows:
            if resize:
                by_credit.setdefault(credit, []).append(hit_rate)
        small = max(max(rates) for c, rates in by_credit.items() if c <= 4096)
        huge = max(by_credit[max(by_credit)])
        assert huge < small

    def test_cluster_rebalance_beats_static_split(self):
        result = get_runner("cluster_rebalance")(scale=TINY, seed=0)
        rows = {row[0]: row for row in result.rows}
        static_hit = rows["static"][2]
        for policy in ("shadow", "load"):
            assert rows[policy][2] > static_hit, policy
            assert rows[policy][4] > 0  # transfers actually happened
            assert rows[policy][5] > 1.0  # hot shard above its even share

    def test_cluster_faults_crash_costs_hits_and_recovers(self):
        result = get_runner("cluster_faults")(scale=TINY, seed=0)
        rows = {row[0]: row for row in result.rows}
        healthy_hit = rows["healthy"][1]
        downtime = rows["static"][3]
        assert downtime > 0
        for name in ("static", "rebalance"):
            assert rows[name][1] < healthy_hit, name  # the fault costs hits
            assert rows[name][3] == downtime, name
            # Recovery is finite and cannot precede the restart.
            assert rows[name][4] >= downtime, name
        assert rows["rebalance"][6] > 0  # transfers actually happened
        assert rows["rebalance"][1] >= rows["static"][1]

    def test_fig6_cliffhanger_not_worse_on_average(self):
        result = get_runner("fig6")(scale=0.02, seed=0)
        default_mean = sum(r[2] for r in result.rows) / len(result.rows)
        cliffhanger_mean = sum(r[4] for r in result.rows) / len(result.rows)
        assert cliffhanger_mean >= default_mean - 0.01

    def test_result_json_roundtrip(self, tmp_path):
        result = get_runner("fig1")(scale=TINY, seed=0)
        path = result.save(tmp_path)
        assert path.exists()
        import json

        payload = json.loads(path.read_text())
        assert payload["experiment_id"] == "fig1"


def test_cli_runs_one_experiment(capsys):
    from repro.experiments.cli import main

    assert main(["fig1", "--scale", str(TINY)]) == 0
    out = capsys.readouterr().out
    assert "fig1" in out
    assert "hit_rate" in out
