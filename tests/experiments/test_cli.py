"""CLI contract tests: ``run`` / ``sweep`` / ``--list`` happy paths and
the exit-2 one-line diagnostics on configuration mistakes.

The CLI promises (module docstring of :mod:`repro.experiments.cli`) that
configuration errors -- malformed JSON, unknown scheme/workload/
experiment -- exit with status 2 and a single ``error: ...`` line on
stderr instead of a traceback. Nothing here replays at more than toy
scale.
"""

from __future__ import annotations

import io
import json


from repro.experiments.cli import main

#: A scenario spec small enough for a sub-second replay.
TINY_SCENARIO = {
    "workload": "zipf",
    "scale": 0.1,
    "seed": 0,
    "workload_params": {
        "apps": 1,
        "num_keys": 500,
        "requests_per_app": 3_000,
    },
}

TINY_SWEEP = {
    "base": TINY_SCENARIO,
    "axes": {"scheme": ["default", "hill"]},
}


def one_error_line(capsys):
    captured = capsys.readouterr()
    lines = [line for line in captured.err.splitlines() if line]
    assert len(lines) == 1, captured.err
    assert lines[0].startswith("error: ")
    return lines[0]


# ---------------------------------------------------------------------------
# Happy paths
# ---------------------------------------------------------------------------


def test_list_enumerates_experiments_schemes_and_workloads(capsys):
    assert main(["--list"]) == 0
    out = capsys.readouterr().out
    for heading in (
        "experiments:", "schemes:", "workloads:", "scenario blocks:"
    ):
        assert heading in out
    for entry in ("cluster_rebalance", "cliffhanger", "flash-crowd"):
        assert entry in out
    # New scenario-visible knobs surface in the listing.
    assert "partitioned_replay" in out
    assert "policy (shadow|load)" in out
    assert "faults:" in out
    assert "policy (failover|miss-through)" in out
    assert "recovery_epsilon" in out


def test_list_subcommand_matches_flag(capsys):
    assert main(["list"]) == 0
    assert "experiments:" in capsys.readouterr().out


def test_run_inline_scenario_spec(capsys):
    assert main(["run", json.dumps(TINY_SCENARIO)]) == 0
    out = capsys.readouterr().out
    assert "overall hit rate" in out


def test_run_spec_file_with_out_dir(tmp_path, capsys):
    spec_path = tmp_path / "scenario.json"
    spec_path.write_text(json.dumps(TINY_SCENARIO), encoding="utf-8")
    out_dir = tmp_path / "results"
    assert main(["run", str(spec_path), "--out", str(out_dir)]) == 0
    saved = json.loads((out_dir / "scenario.json").read_text())
    assert saved["scenario"]["workload"] == "zipf"
    assert 0.0 < saved["overall_hit_rate"] < 1.0


def test_run_spec_from_stdin(monkeypatch, capsys):
    monkeypatch.setattr(
        "sys.stdin", io.StringIO(json.dumps(TINY_SCENARIO))
    )
    assert main(["run", "-"]) == 0
    assert "overall hit rate" in capsys.readouterr().out


def test_run_rebalance_scenario_reports_transfers(capsys):
    spec = dict(TINY_SCENARIO)
    spec["scheme"] = "hill"
    spec["cluster"] = {"shards": 2, "virtual_nodes": 4}
    spec["rebalance"] = {"epoch_requests": 300, "credit_bytes": 4096.0}
    assert main(["run", json.dumps(spec)]) == 0
    out = capsys.readouterr().out
    assert "rebalance (shadow)" in out
    assert "shard budgets now" in out


def test_sweep_inline_spec(capsys):
    assert main(["sweep", json.dumps(TINY_SWEEP)]) == 0
    out = capsys.readouterr().out
    assert "2 scenarios" in out
    assert "scheme=default" in out
    assert "scheme=hill" in out


def test_sweep_with_out_dir(tmp_path, capsys):
    out_dir = tmp_path / "results"
    assert (
        main(["sweep", json.dumps(TINY_SWEEP), "--out", str(out_dir)]) == 0
    )
    saved = json.loads((out_dir / "sweep.json").read_text())
    assert len(saved["results"]) == 2


# ---------------------------------------------------------------------------
# Exit-2 diagnostics
# ---------------------------------------------------------------------------


def test_bad_json_spec_exits_2_with_one_line(capsys):
    assert main(["run", "{not json"]) == 2
    assert "invalid JSON spec" in one_error_line(capsys)


def test_unknown_scheme_exits_2(capsys):
    spec = dict(TINY_SCENARIO)
    spec["scheme"] = "does-not-exist"
    assert main(["run", json.dumps(spec)]) == 2
    assert "does-not-exist" in one_error_line(capsys)


def test_unknown_workload_exits_2(capsys):
    spec = dict(TINY_SCENARIO)
    spec["workload"] = "mystery-trace"
    assert main(["run", json.dumps(spec)]) == 2
    assert "mystery-trace" in one_error_line(capsys)


def test_unknown_experiment_id_exits_2(capsys):
    assert main(["run", "fig99"]) == 2
    assert "fig99" in one_error_line(capsys)


def test_unknown_scenario_field_exits_2(capsys):
    spec = dict(TINY_SCENARIO)
    spec["rebalancing"] = {"epoch_requests": 5}  # typo'd field
    assert main(["run", json.dumps(spec)]) == 2
    assert "rebalancing" in one_error_line(capsys)


def test_rebalance_without_cluster_exits_2(capsys):
    spec = dict(TINY_SCENARIO)
    spec["rebalance"] = {"epoch_requests": 100}
    assert main(["run", json.dumps(spec)]) == 2
    assert "cluster" in one_error_line(capsys)


#: A valid faulted cluster spec the malformed variants below mutate.
FAULTED_SCENARIO = {
    **TINY_SCENARIO,
    "cluster": {"shards": 4},
    "faults": {
        "events": [
            {"kind": "crash", "shard": 1, "at": 100},
            {"kind": "restart", "shard": 1, "at": 200},
        ]
    },
}


def test_faulted_scenario_spec_runs(capsys):
    assert main(["run", json.dumps(FAULTED_SCENARIO)]) == 0
    out = capsys.readouterr().out
    assert "faults (failover)" in out
    assert "shard 1 down @ 100" in out


def test_faults_without_cluster_exits_2(capsys):
    spec = dict(FAULTED_SCENARIO)
    del spec["cluster"]
    assert main(["run", json.dumps(spec)]) == 2
    assert "cluster" in one_error_line(capsys)


def test_faults_bad_shard_index_exits_2(capsys):
    spec = dict(FAULTED_SCENARIO)
    spec["faults"] = {"events": [{"kind": "crash", "shard": 9, "at": 100}]}
    assert main(["run", json.dumps(spec)]) == 2
    assert "shard" in one_error_line(capsys)


def test_faults_non_monotonic_offsets_exit_2(capsys):
    spec = dict(FAULTED_SCENARIO)
    spec["faults"] = {
        "events": [
            {"kind": "crash", "shard": 1, "at": 200},
            {"kind": "restart", "shard": 1, "at": 100},
        ]
    }
    assert main(["run", json.dumps(spec)]) == 2
    assert "non-decreasing" in one_error_line(capsys)


def test_faults_restart_before_crash_exits_2(capsys):
    spec = dict(FAULTED_SCENARIO)
    spec["faults"] = {
        "events": [{"kind": "restart", "shard": 1, "at": 100}]
    }
    assert main(["run", json.dumps(spec)]) == 2
    assert "restart" in one_error_line(capsys)


def test_faults_unknown_event_kind_exits_2(capsys):
    spec = dict(FAULTED_SCENARIO)
    spec["faults"] = {
        "events": [{"kind": "explode", "shard": 1, "at": 100}]
    }
    assert main(["run", json.dumps(spec)]) == 2
    assert "explode" in one_error_line(capsys)


def test_faults_unknown_policy_exits_2(capsys):
    spec = dict(FAULTED_SCENARIO)
    spec["faults"] = dict(spec["faults"], policy="ignore")
    assert main(["run", json.dumps(spec)]) == 2
    assert "ignore" in one_error_line(capsys)


#: A serve+faults spec (chaos serving) the malformed variants mutate.
CHAOS_SCENARIO = {
    **FAULTED_SCENARIO,
    "serve": {
        "rate": 4000.0,
        "duration_s": 0.05,
        "arrivals": "fixed",
        "retry": {"max_attempts": 2, "deadline_s": 0.1},
    },
}


def test_chaos_serve_spec_runs(capsys):
    assert main(["run", json.dumps(CHAOS_SCENARIO)]) == 0
    out = capsys.readouterr().out
    assert "serve (" in out
    assert "faults (failover)" in out
    assert "p99 timeline" in out


def test_retry_unknown_field_exits_2(capsys):
    spec = dict(CHAOS_SCENARIO)
    spec["serve"] = dict(
        spec["serve"], retry={"max_attempts": 2, "attempts": 3}
    )
    assert main(["run", json.dumps(spec)]) == 2
    assert "attempts" in one_error_line(capsys)


def test_retry_bad_value_exits_2(capsys):
    spec = dict(CHAOS_SCENARIO)
    spec["serve"] = dict(spec["serve"], retry={"max_attempts": 0})
    assert main(["run", json.dumps(spec)]) == 2
    assert "max_attempts" in one_error_line(capsys)


def test_retry_non_mapping_exits_2(capsys):
    spec = dict(CHAOS_SCENARIO)
    spec["serve"] = dict(spec["serve"], retry=[1, 2])
    assert main(["run", json.dumps(spec)]) == 2
    assert "mapping" in one_error_line(capsys)


def test_serve_bad_degradation_fields_exit_2(capsys):
    spec = dict(CHAOS_SCENARIO)
    spec["serve"] = dict(spec["serve"], queue_deadline_s=-1.0)
    assert main(["run", json.dumps(spec)]) == 2
    assert "queue_deadline_s" in one_error_line(capsys)
    spec["serve"] = dict(CHAOS_SCENARIO["serve"], max_inflight=-2)
    assert main(["run", json.dumps(spec)]) == 2
    assert "max_inflight" in one_error_line(capsys)


def test_bad_sweep_spec_exits_2(capsys):
    sweep = dict(TINY_SWEEP)
    sweep["axis"] = sweep.pop("axes")  # typo'd field
    assert main(["sweep", json.dumps(sweep)]) == 2
    assert "axis" in one_error_line(capsys)
