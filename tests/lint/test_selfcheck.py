"""Self-check: the shipped tree must lint clean.

This is the tier-1 guarantee behind the CI ``repro.lint --strict``
gate: any determinism hazard, packed-bit drift, or stale suppression
introduced into ``src``/``tests``/``benchmarks`` fails this test
locally before it ever reaches CI.
"""

from __future__ import annotations

from pathlib import Path

from repro.lint.cli import DEFAULT_PATHS, run_lint

REPO_ROOT = Path(__file__).resolve().parents[2]


def test_shipped_tree_is_clean():
    report = run_lint(list(DEFAULT_PATHS), root=REPO_ROOT)
    rendered = "\n".join(finding.render() for finding in report.findings)
    assert report.findings == [], f"repro.lint findings:\n{rendered}"
    # Sanity: the walk actually covered the repository, not an empty dir.
    assert report.files_checked > 100
