"""Engine-level behaviour: suppressions, audits, file collection."""

from __future__ import annotations

import pytest

from repro.common.errors import ConfigurationError
from repro.lint import collect_files, rules_by_name, run_rules


def write_module(root, relpath, source):
    target = root / relpath
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(source)
    return target


def lint(root, source, *, relpath="src/repro/util.py", rules=None,
         audit=True):
    write_module(root, relpath, source)
    files = collect_files([root / relpath.split("/")[0]], root, excludes=())
    registry = rules_by_name()
    selected = (
        [registry[name] for name in rules]
        if rules
        else list(registry.values())
    )
    return run_rules(files, selected, audit_suppressions=audit)


# ---------------------------------------------------------------------------
# Inline suppression
# ---------------------------------------------------------------------------


def test_inline_ignore_silences_named_rule(tmp_path):
    report = lint(
        tmp_path,
        "def f(x):\n"
        "    assert x  # repro-lint: ignore[no-assert-in-src]\n",
    )
    assert report.findings == []
    assert report.suppressed == 1


def test_inline_ignore_is_rule_specific(tmp_path):
    # Suppressing a different rule on the same line leaves the assert
    # finding intact and reports the suppression as stale.
    report = lint(
        tmp_path,
        "def f(x):\n"
        "    assert x  # repro-lint: ignore[unused-import]\n",
    )
    rules = sorted(finding.rule for finding in report.findings)
    assert rules == ["no-assert-in-src", "unused-suppression"]


def test_inline_ignore_takes_several_rules(tmp_path):
    report = lint(
        tmp_path,
        "import json  # repro-lint: ignore[unused-import, no-assert-in-src]\n"
        "\n"
        "def f(x):\n"
        "    assert x  # repro-lint: ignore[no-assert-in-src]\n",
    )
    # json suppression works; the no-assert half of line 1 is stale.
    rules = sorted(finding.rule for finding in report.findings)
    assert rules == ["unused-suppression"]
    assert report.suppressed == 2


def test_suppression_syntax_in_docstring_is_not_a_suppression(tmp_path):
    report = lint(
        tmp_path,
        '"""Docs: silence with # repro-lint: ignore[unused-import]."""\n'
        "import json\n",
    )
    assert [finding.rule for finding in report.findings] == ["unused-import"]
    assert report.suppressed == 0


# ---------------------------------------------------------------------------
# File-level suppression
# ---------------------------------------------------------------------------


def test_file_ignore_silences_whole_file(tmp_path):
    report = lint(
        tmp_path,
        "# repro-lint: file-ignore[no-assert-in-src]\n"
        "def f(x):\n"
        "    assert x\n"
        "def g(x):\n"
        "    assert not x\n",
    )
    assert report.findings == []
    assert report.suppressed == 2


def test_stale_file_ignore_is_reported(tmp_path):
    report = lint(
        tmp_path,
        "# repro-lint: file-ignore[determinism]\n"
        "def f():\n"
        "    return 1\n",
    )
    assert [finding.rule for finding in report.findings] == [
        "unused-suppression"
    ]
    assert "determinism" in report.findings[0].message


def test_unknown_rule_in_suppression_is_flagged(tmp_path):
    report = lint(
        tmp_path,
        "def f():\n"
        "    return 1  # repro-lint: ignore[no-such-rule]\n",
    )
    assert [finding.rule for finding in report.findings] == [
        "unused-suppression"
    ]
    assert "no-such-rule" in report.findings[0].message


def test_audit_disabled_when_rule_subset_selected(tmp_path):
    # A stale suppression must not fire when only some rules run: the
    # suppressed rule may simply not have been selected.
    report = lint(
        tmp_path,
        "def f(x):\n"
        "    assert x  # repro-lint: ignore[unused-import]\n",
        rules=["no-assert-in-src"],
        audit=False,
    )
    assert [finding.rule for finding in report.findings] == [
        "no-assert-in-src"
    ]


# ---------------------------------------------------------------------------
# File collection
# ---------------------------------------------------------------------------


def test_collect_files_missing_path_raises(tmp_path):
    with pytest.raises(ConfigurationError):
        collect_files([tmp_path / "nope"], tmp_path, excludes=())


def test_collect_files_syntax_error_raises(tmp_path):
    write_module(tmp_path, "src/bad.py", "def broken(:\n")
    with pytest.raises(ConfigurationError) as excinfo:
        collect_files([tmp_path / "src"], tmp_path, excludes=())
    assert "bad.py" in str(excinfo.value)


def test_collect_files_honours_excludes(tmp_path):
    write_module(tmp_path, "src/keep.py", "X = 1\n")
    write_module(tmp_path, "src/fixtures/drop.py", "def broken(:\n")
    files = collect_files(
        [tmp_path / "src"], tmp_path, excludes=("src/fixtures",)
    )
    assert [ctx.display_path for ctx in files] == ["src/keep.py"]


def test_collect_files_accepts_single_file(tmp_path):
    target = write_module(tmp_path, "src/solo.py", "X = 1\n")
    files = collect_files([target], tmp_path, excludes=())
    assert [ctx.display_path for ctx in files] == ["src/solo.py"]


def test_findings_are_sorted_and_deduplicated(tmp_path):
    report = lint(
        tmp_path,
        "import json\n"
        "import pickle\n"
        "\n"
        "def f(x):\n"
        "    assert x\n",
    )
    rendered = [finding.render() for finding in report.findings]
    assert rendered == sorted(rendered)
    assert len(set(report.findings)) == len(report.findings)
