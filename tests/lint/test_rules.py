"""Per-rule fixture tests: every rule has firing and non-firing cases.

The ``firing`` fixture tree is a miniature repository where each file
violates specific rules; the ``clean`` tree mirrors it with compliant
code. Rules are asserted by (rule, path) pairs so the fixtures stay
readable, plus targeted line checks where the anchor matters.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.lint import collect_files, rules_by_name, run_rules

FIXTURES = Path(__file__).parent / "fixtures"


def lint_tree(tree: str, select=None):
    root = FIXTURES / tree
    files = collect_files([root / "src"], root, excludes=())
    registry = rules_by_name()
    rules = (
        [registry[name] for name in select]
        if select
        else list(registry.values())
    )
    return run_rules(files, rules, audit_suppressions=select is None)


def findings_for(tree: str, rule: str):
    report = lint_tree(tree, select=[rule])
    return [finding for finding in report.findings if finding.rule == rule]


# ---------------------------------------------------------------------------
# The clean tree: every rule, zero findings
# ---------------------------------------------------------------------------


def test_clean_tree_has_no_findings():
    report = lint_tree("clean")
    assert report.findings == []
    assert report.files_checked >= 7


# ---------------------------------------------------------------------------
# determinism
# ---------------------------------------------------------------------------


def test_determinism_fires_on_every_hazard():
    findings = findings_for("firing", "determinism")
    path = "src/repro/cache/nondeterministic.py"
    assert all(finding.path == path for finding in findings)
    messages = "\n".join(finding.message for finding in findings)
    assert "time.time" in messages
    assert "datetime.datetime.now" in messages
    assert "os.urandom" in messages
    assert "random.random" in messages
    assert "random.Random() without an explicit seed" in messages
    assert "numpy.random.default_rng() without an explicit" in messages
    assert "numpy.random.shuffle" in messages
    assert "set literal" in messages
    assert "set(...)" in messages
    assert "frozenset(...)" in messages
    assert len(findings) == 10


def test_determinism_ignores_non_replay_modules(tmp_path):
    # The same hazards outside cache/cluster/workloads/sim are allowed:
    # perfmodel and serve legitimately read wall clocks.
    source = FIXTURES / "firing/src/repro/cache/nondeterministic.py"
    target = tmp_path / "src/repro/perfmodel/clock.py"
    target.parent.mkdir(parents=True)
    target.write_text(source.read_text())
    files = collect_files([tmp_path / "src"], tmp_path, excludes=())
    report = run_rules(
        files, [rules_by_name()["determinism"]], audit_suppressions=False
    )
    assert report.findings == []


# ---------------------------------------------------------------------------
# asyncio hygiene
# ---------------------------------------------------------------------------


def test_async_blocking_call_fires():
    findings = findings_for("firing", "async-blocking-call")
    messages = sorted(finding.message for finding in findings)
    assert len(findings) == 3
    assert any("time.sleep" in message for message in messages)
    assert any("socket.create_connection" in message for message in messages)
    assert any("open()" in message for message in messages)


def test_unawaited_coroutine_fires_for_self_and_module_calls():
    findings = findings_for("firing", "unawaited-coroutine")
    names = sorted(finding.message.split("'")[1] for finding in findings)
    assert names == ["flush", "main"]


def test_deprecated_event_loop_fires():
    findings = findings_for("firing", "deprecated-event-loop")
    assert len(findings) == 1
    assert "get_running_loop" in findings[0].message


# ---------------------------------------------------------------------------
# packed-bit-overlap
# ---------------------------------------------------------------------------


def test_packed_bit_overlap_catches_layout_collisions():
    findings = findings_for("firing", "packed-bit-overlap")
    stats = [
        finding
        for finding in findings
        if finding.path.endswith("cache/stats.py")
    ]
    messages = "\n".join(finding.message for finding in stats)
    assert "not a single flag bit" in messages
    assert "share bits" in messages
    assert "overlaps flag OUTCOME_DEAD" in messages
    assert "raise EVICTED_SHIFT" in messages
    assert len(stats) == 4


def test_packed_bit_overlap_catches_redefinitions():
    findings = findings_for("firing", "packed-bit-overlap")
    redefined = [
        finding
        for finding in findings
        if finding.path.endswith("cluster/redefined_bits.py")
    ]
    assert len(redefined) == 3
    messages = "\n".join(finding.message for finding in redefined)
    assert "re-assigned here" in messages  # imported then clobbered
    assert "import it instead" in messages  # fresh local layout names


# ---------------------------------------------------------------------------
# registry-doc-sync
# ---------------------------------------------------------------------------


def test_registry_doc_sync_fires_both_directions():
    findings = findings_for("firing", "registry-doc-sync")
    assert len(findings) == 2
    by_path = {finding.path: finding.message for finding in findings}
    assert "ghost-scheme" in by_path["src/repro/sim/ghost_scheme.py"]
    assert "retired-scheme" in by_path["src/repro/experiments/cli.py"]


# ---------------------------------------------------------------------------
# scenario-schema-sync
# ---------------------------------------------------------------------------


def test_scenario_schema_sync_fires_on_all_three_drifts():
    findings = findings_for("firing", "scenario-schema-sync")
    assert all(
        finding.path == "src/repro/sim/bad_schema.py" for finding in findings
    )
    messages = "\n".join(finding.message for finding in findings)
    # hash_seed missing from to_dict and from known; virtual_nodes and
    # legacy_salt are emitted/accepted but are not fields.
    assert "missing from to_dict" in messages
    assert "'virtual_nodes'" in messages
    assert "missing from from_dict" in messages
    assert "'legacy_salt'" in messages
    assert len(findings) == 4


# ---------------------------------------------------------------------------
# hygiene rules
# ---------------------------------------------------------------------------


def test_no_assert_in_src_fires():
    findings = findings_for("firing", "no-assert-in-src")
    assert len(findings) == 1
    assert findings[0].path == "src/repro/util.py"
    assert findings[0].line == 8


def test_no_assert_allows_tests(tmp_path):
    target = tmp_path / "tests" / "test_example.py"
    target.parent.mkdir(parents=True)
    target.write_text("def test_one():\n    assert 1 + 1 == 2\n")
    files = collect_files([tmp_path / "tests"], tmp_path, excludes=())
    report = run_rules(
        files, [rules_by_name()["no-assert-in-src"]], audit_suppressions=False
    )
    assert report.findings == []


def test_unused_import_fires_with_origin():
    findings = findings_for("firing", "unused-import")
    assert len(findings) == 1
    assert findings[0].path == "src/repro/util.py"
    assert "'json'" in findings[0].message


@pytest.mark.parametrize(
    "source",
    [
        # __all__ re-export counts as a use.
        'import json\n\n__all__ = ["json"]\n',
        # Quoted forward references inside annotations count as a use.
        "import asyncio\n\n\ndef make(x: \"asyncio.Future[int]\") -> None:\n"
        "    del x\n",
    ],
)
def test_unused_import_negative_cases(tmp_path, source):
    target = tmp_path / "src" / "module.py"
    target.parent.mkdir(parents=True)
    target.write_text(source)
    files = collect_files([tmp_path / "src"], tmp_path, excludes=())
    report = run_rules(
        files, [rules_by_name()["unused-import"]], audit_suppressions=False
    )
    assert report.findings == []


def test_unused_import_skips_package_init(tmp_path):
    target = tmp_path / "src" / "pkg" / "__init__.py"
    target.parent.mkdir(parents=True)
    target.write_text("from pkg.inner import thing\n")
    files = collect_files([tmp_path / "src"], tmp_path, excludes=())
    report = run_rules(
        files, [rules_by_name()["unused-import"]], audit_suppressions=False
    )
    assert report.findings == []


def test_docstring_mention_does_not_mark_import_used(tmp_path):
    target = tmp_path / "src" / "module.py"
    target.parent.mkdir(parents=True)
    target.write_text('"""Talks about random things."""\n\nimport random\n')
    files = collect_files([tmp_path / "src"], tmp_path, excludes=())
    report = run_rules(
        files, [rules_by_name()["unused-import"]], audit_suppressions=False
    )
    assert [finding.rule for finding in report.findings] == ["unused-import"]
