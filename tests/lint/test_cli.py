"""CLI behaviour: exit codes, rule listing, output formats."""

from __future__ import annotations

import json
from pathlib import Path

from repro.lint.cli import main
from repro.lint.rules import rule_summaries

FIXTURES = Path(__file__).parent / "fixtures"

#: Rules ISSUE-level consumers rely on by name.
REQUIRED_RULES = (
    "determinism",
    "async-blocking-call",
    "unawaited-coroutine",
    "deprecated-event-loop",
    "packed-bit-overlap",
    "registry-doc-sync",
    "scenario-schema-sync",
    "no-assert-in-src",
    "unused-import",
)


def run_cli(*argv):
    return main(list(argv))


def test_list_rules_names_every_rule(capsys):
    assert run_cli("--list-rules") == 0
    out = capsys.readouterr().out
    for rule in REQUIRED_RULES:
        assert rule in out
    assert "unused-suppression" in out
    assert "file-ignore[" in out


def test_rule_summaries_cover_required_rules():
    summaries = rule_summaries()
    for rule in REQUIRED_RULES:
        assert rule in summaries
        assert summaries[rule]


def test_clean_tree_exits_zero(capsys):
    code = run_cli("src", "--root", str(FIXTURES / "clean"))
    assert code == 0
    out = capsys.readouterr().out
    assert "0 finding(s)" in out


def test_firing_tree_exits_one_with_tagged_findings(capsys):
    code = run_cli("src", "--root", str(FIXTURES / "firing"))
    assert code == 1
    out = capsys.readouterr().out
    # file:line: [rule] message
    assert "src/repro/cache/nondeterministic.py" in out
    assert "[determinism]" in out
    assert "[packed-bit-overlap]" in out
    assert "[no-assert-in-src]" in out


def test_select_narrows_to_one_rule(capsys):
    code = run_cli(
        "src",
        "--root",
        str(FIXTURES / "firing"),
        "--select",
        "no-assert-in-src",
    )
    assert code == 1
    out = capsys.readouterr().out
    assert "[no-assert-in-src]" in out
    assert "[determinism]" not in out


def test_ignore_drops_rules(capsys):
    code = run_cli(
        "src",
        "--root",
        str(FIXTURES / "firing"),
        "--ignore",
        ",".join(REQUIRED_RULES[:-1]),
    )
    assert code == 1
    out = capsys.readouterr().out
    assert "[determinism]" not in out
    assert "[unused-import]" in out


def test_unknown_rule_exits_two(capsys):
    assert run_cli("src", "--select", "bogus-rule") == 2
    err = capsys.readouterr().err
    assert "unknown rule" in err
    assert "bogus-rule" in err


def test_missing_path_exits_two(capsys):
    assert run_cli("no/such/dir") == 2
    assert "repro-lint:" in capsys.readouterr().err


def test_json_format_is_parseable(capsys):
    code = run_cli(
        "src", "--root", str(FIXTURES / "firing"), "--format", "json"
    )
    assert code == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["files_checked"] >= 8
    rules = {finding["rule"] for finding in payload["findings"]}
    assert "determinism" in rules
    assert all(
        {"path", "line", "rule", "message"} <= set(finding)
        for finding in payload["findings"]
    )


def test_strict_promotes_stale_suppressions(tmp_path, capsys):
    module = tmp_path / "src" / "repro" / "util.py"
    module.parent.mkdir(parents=True)
    module.write_text(
        "def f():\n"
        "    return 1  # repro-lint: ignore[determinism]\n"
    )
    assert run_cli("src", "--root", str(tmp_path)) == 0
    assert "[unused-suppression]" in capsys.readouterr().out
    assert run_cli("src", "--root", str(tmp_path), "--strict") == 1
