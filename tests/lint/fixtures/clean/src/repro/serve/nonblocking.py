"""Fixture: asyncio-hygienic serving code (no findings)."""

import asyncio


class Worker:
    async def flush(self) -> None:
        await asyncio.sleep(0)

    async def run(self) -> None:
        await asyncio.sleep(0.1)
        reader, writer = await asyncio.open_connection("localhost", 11211)
        await self.flush()
        task = asyncio.get_running_loop().create_task(self.flush())
        await task
        writer.close()
        await writer.wait_closed()
        del reader


async def main() -> None:
    worker = Worker()
    await worker.run()


def schedule() -> None:
    asyncio.run(main())
