"""Fixture: registered names that the notes tables document."""

from repro.sim.registries import register_scheme, register_workload


@register_scheme("documented-scheme")
def build_scheme(app, budget_bytes, **context):
    return None


@register_workload("documented-workload")
def build_workload(scale, seed, **params):
    return None
