"""Fixture: serializable dataclass with field/to_dict/from_dict sync."""

from dataclasses import dataclass
from typing import Any, Dict


@dataclass
class SyncedConfig:
    shards: int = 1
    replication: int = 1
    hash_seed: int = 0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "shards": self.shards,
            "replication": self.replication,
            "hash_seed": self.hash_seed,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "SyncedConfig":
        known = {"shards", "replication", "hash_seed"}
        unknown = set(payload) - known
        if unknown:
            raise ValueError(f"unknown fields: {sorted(unknown)}")
        return cls(**payload)
