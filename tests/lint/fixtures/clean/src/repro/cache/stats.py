"""Fixture: a well-formed packed outcome layout (no findings)."""

OUTCOME_HIT = 1
OUTCOME_SHADOW_HIT = 2
CLASS_SHIFT = 2
CLASS_MASK = 0x7F
OUTCOME_DEAD = 1 << 9
EVICTED_SHIFT = 10


def pack(hit: bool, slab_class: int) -> int:
    code = (slab_class + 1) << CLASS_SHIFT
    if hit:
        code |= OUTCOME_HIT
    return code
