"""Fixture: replay-path code that stays reproducible (no findings)."""

import random
import time

import numpy as np


def replay(requests: list, seed: int) -> list:
    rng = random.Random(seed)
    np_rng = np.random.default_rng(seed)
    started = time.perf_counter()
    order = list(requests)
    rng.shuffle(order)
    jitter = np_rng.random()
    elapsed = time.perf_counter() - started
    return [order, jitter, elapsed]


def drain(pending: set) -> list:
    drained = []
    for key in sorted(pending):
        drained.append(key)
    return drained
