"""Fixture: notes tables exactly matching the registrations."""

SCHEME_NOTES = {
    "documented-scheme": "registered and documented",
}

WORKLOAD_NOTES = {
    "documented-workload": "registered and documented",
}


def _print_listing() -> None:
    for name, note in sorted(SCHEME_NOTES.items()):
        print(f"  {name}: {note}")
    for name, note in sorted(WORKLOAD_NOTES.items()):
        print(f"  {name}: {note}")
