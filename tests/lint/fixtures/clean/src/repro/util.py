"""Fixture: hygienic library code (no findings)."""

import math


def check_budget(budget: float) -> float:
    if budget <= 0:
        raise ValueError("budget must be positive")
    return math.sqrt(budget)
