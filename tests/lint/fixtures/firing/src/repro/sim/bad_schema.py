"""Fixture: serializable dataclass whose schema drifted three ways."""

from dataclasses import dataclass
from typing import Any, Dict


@dataclass
class DriftedConfig:
    shards: int = 1
    replication: int = 1
    hash_seed: int = 0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "shards": self.shards,
            "replication": self.replication,
            "virtual_nodes": 64,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "DriftedConfig":
        known = {"shards", "replication", "legacy_salt"}
        unknown = set(payload) - known
        if unknown:
            raise ValueError(f"unknown fields: {sorted(unknown)}")
        return cls(**payload)
