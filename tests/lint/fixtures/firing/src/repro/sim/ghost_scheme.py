"""Fixture: a registered scheme the --list notes table forgot."""

from repro.sim.registries import register_scheme, register_workload


@register_scheme("ghost-scheme")
def build_ghost(app, budget_bytes, **context):
    return None


@register_workload("documented-workload")
def build_documented(scale, seed, **params):
    return None
