"""Fixture: packed outcome layout with every kind of bit collision."""

OUTCOME_HIT = 1
OUTCOME_SHADOW_HIT = 3  # not a single bit, and overlaps OUTCOME_HIT
OUTCOME_DEAD = 1 << 4
CLASS_SHIFT = 4  # class field lands on OUTCOME_DEAD
CLASS_MASK = 0x7
EVICTED_SHIFT = 5  # eviction count overlaps the class field
