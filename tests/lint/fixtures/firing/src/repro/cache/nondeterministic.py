"""Fixture: every determinism hazard the rule must catch."""

import os
import random
import time
from datetime import datetime

import numpy as np


def stamp_requests(requests):
    started = time.time()
    batch_id = datetime.now()
    salt = os.urandom(8)
    jitter = random.random()
    rng = random.Random()
    np_rng = np.random.default_rng()
    noise = np.random.shuffle(requests)
    return started, batch_id, salt, jitter, rng, np_rng, noise


def drain(order: list) -> list:
    drained = []
    for key in {"a", "b"}:
        drained.append(key)
    for key in set(order):
        drained.append(key)
    return [key for key in frozenset(drained)]
