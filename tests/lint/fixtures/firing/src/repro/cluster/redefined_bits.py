"""Fixture: re-defining the packed layout outside cache/stats.py."""

from repro.cache.stats import OUTCOME_DEAD

OUTCOME_LOCAL = 1 << 3
OUTCOME_DEAD = 1 << 6
EVICTED_SHIFT = 12


def tag(code: int) -> int:
    return code | OUTCOME_DEAD
