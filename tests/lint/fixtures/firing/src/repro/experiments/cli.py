"""Fixture: notes tables with a stale entry and a missing one."""

SCHEME_NOTES = {
    "retired-scheme": "documented but no longer registered",
}

WORKLOAD_NOTES = {
    "documented-workload": "registered and documented: no finding",
}


def _print_listing() -> None:
    for name, note in sorted(SCHEME_NOTES.items()):
        print(f"  {name}: {note}")
    for name, note in sorted(WORKLOAD_NOTES.items()):
        print(f"  {name}: {note}")
