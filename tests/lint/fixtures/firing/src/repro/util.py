"""Fixture: library hygiene violations (assert, unused import)."""

import json
import math


def check_budget(budget: float) -> float:
    assert budget > 0, "budget must be positive"
    return math.sqrt(budget)
