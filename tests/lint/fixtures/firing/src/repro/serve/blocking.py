"""Fixture: asyncio hygiene violations in one coroutine-heavy module."""

import asyncio
import socket
import time


class Worker:
    async def flush(self) -> None:
        await asyncio.sleep(0)

    async def run(self) -> None:
        time.sleep(0.1)
        connection = socket.create_connection(("localhost", 11211))
        config = open("settings.json")
        self.flush()
        connection.close()
        config.close()


async def main() -> None:
    loop = asyncio.get_event_loop()
    worker = Worker()
    await worker.run()
    loop.stop()


def schedule() -> None:
    main()
