"""Latency histogram: exact counters, bounded-error percentiles, merge."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.serve.histogram import (
    CEILING,
    FLOOR,
    SUBBUCKETS,
    LatencyHistogram,
)

#: One bucket's growth factor bounds the relative error of percentiles.
GROWTH = 2.0 ** (1.0 / SUBBUCKETS)

#: Within [FLOOR, CEILING): the range where the relative-error bound
#: holds (below the floor everything reports as FLOOR by design).
LATENCIES = st.floats(
    min_value=FLOOR, max_value=50.0, allow_nan=False, allow_infinity=False
)


class TestRecording:
    def test_empty(self):
        hist = LatencyHistogram()
        assert hist.count == 0
        assert hist.percentile(0.99) == 0.0
        assert hist.mean() == 0.0
        summary = hist.summary_ms()
        assert summary["p50"] == 0.0 and summary["max"] == 0.0

    def test_exact_count_total_min_max(self):
        hist = LatencyHistogram()
        for value in (0.001, 0.5, 0.0002, 2.0):
            hist.record(value)
        assert hist.count == 4
        assert hist.total == pytest.approx(2.5012)
        assert hist.min == 0.0002
        assert hist.max == 2.0
        assert hist.mean() == pytest.approx(2.5012 / 4)

    def test_negative_clamped_to_zero(self):
        hist = LatencyHistogram()
        hist.record(-1.0)
        assert hist.min == 0.0
        assert hist.percentile(0.5) == 0.0

    def test_bad_quantile_raises(self):
        hist = LatencyHistogram()
        hist.record(0.01)
        with pytest.raises(ValueError):
            hist.percentile(1.5)
        with pytest.raises(ValueError):
            hist.percentile(-0.1)

    def test_beyond_ceiling_lands_in_last_bucket(self):
        hist = LatencyHistogram()
        hist.record(CEILING * 10)
        assert hist.count == 1
        assert hist.percentile(1.0) == CEILING * 10  # clamped to max


class TestPercentiles:
    @settings(max_examples=50, deadline=None)
    @given(values=st.lists(LATENCIES, min_size=1, max_size=200))
    def test_relative_error_bounded(self, values):
        """Any percentile is within one bucket's growth of some observed
        value, and never exceeds the observed max."""
        hist = LatencyHistogram()
        for value in values:
            hist.record(value)
        for quantile in (0.0, 0.5, 0.95, 0.99, 1.0):
            estimate = hist.percentile(quantile)
            assert estimate <= max(values)
            assert any(
                value <= estimate * (1 + 1e-9)
                and estimate <= value * GROWTH * (1 + 1e-9)
                for value in values
            ) or estimate == max(values)

    @settings(max_examples=50, deadline=None)
    @given(values=st.lists(LATENCIES, min_size=1, max_size=200))
    def test_percentiles_monotonic(self, values):
        hist = LatencyHistogram()
        for value in values:
            hist.record(value)
        quantiles = [0.1, 0.5, 0.9, 0.99, 1.0]
        estimates = [hist.percentile(q) for q in quantiles]
        assert estimates == sorted(estimates)

    def test_single_value_every_percentile(self):
        hist = LatencyHistogram()
        hist.record(0.004)
        for quantile in (0.01, 0.5, 0.999):
            assert hist.percentile(quantile) == pytest.approx(
                0.004, rel=1e-9
            )

    def test_summary_ms_keys_and_scale(self):
        hist = LatencyHistogram()
        hist.record(0.010)
        summary = hist.summary_ms()
        assert set(summary) == {"p50", "p95", "p99", "p999", "mean", "max"}
        assert summary["max"] == pytest.approx(10.0)
        assert summary["p50"] == pytest.approx(10.0, rel=1e-9)
        assert summary["mean"] == pytest.approx(10.0)


class TestMerge:
    @settings(max_examples=30, deadline=None)
    @given(
        left=st.lists(LATENCIES, max_size=80),
        right=st.lists(LATENCIES, max_size=80),
    )
    def test_merge_equals_combined_recording(self, left, right):
        separate = LatencyHistogram()
        for value in left:
            separate.record(value)
        other = LatencyHistogram()
        for value in right:
            other.record(value)
        separate.merge(other)
        combined = LatencyHistogram()
        for value in left + right:
            combined.record(value)
        assert separate.count == combined.count
        assert separate.total == pytest.approx(combined.total)
        assert separate._counts == combined._counts
        if left or right:
            assert separate.max == combined.max
            assert separate.min == combined.min
            for quantile in (0.5, 0.99):
                assert separate.percentile(quantile) == pytest.approx(
                    combined.percentile(quantile)
                )

    def test_nonzero_buckets_cover_all_counts(self):
        hist = LatencyHistogram()
        for value in (0.001, 0.001, 0.1, 3.0):
            hist.record(value)
        buckets = hist.nonzero_buckets()
        assert sum(count for _, count in buckets) == 4
        edges = [edge for edge, _ in buckets]
        assert edges == sorted(edges)
        assert all(edge >= FLOOR * 0.999 for edge in edges)
        assert math.isfinite(edges[-1])
